"""Registry assembly: companies + pair specs + tails, fully expanded.

``default_registry()`` builds the complete ecosystem: the named
companies of ``companies.py``, the ambient HTTP ecosystem, 65 long-tail
ad-tech initiators with per-crawl activity windows, and a pool of
benign SaaS WebSocket receivers. The output is scale-independent —
scaling to a crawl size happens later, in the ecosystem planner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.rng import RngStream
from repro.web.ambient import AmbientSpec, all_ambient_specs
from repro.web.companies import (
    CRAWL_MOODS,
    MAJOR_INITIATORS,
    NON_AA_COMPANIES,
    RECEIVER_COMPANIES,
    RESERVED_PUBLISHERS,
)
from repro.web.model import (
    ALL_CRAWLS,
    FIRST_PARTY,
    Company,
    CrawlMood,
    RegistryValidationError,
    Role,
    SocketPairSpec,
)
from repro.web.pairs import (
    TAIL_INITIATOR_GROUPS,
    TAIL_PLAN,
    TAIL_RECEIVER_QUOTAS,
    all_static_pairs,
)

# Ambient (not pair-calibrated) socket specs: publisher self-hosted
# sockets and benign SaaS sockets. Together these are the non-A&A
# remainder (~32% of sockets, §6 "The Good") and the <10% same-origin
# share (§4.1).
_AMBIENT_SOCKET_SPECS: tuple[SocketPairSpec, ...] = (
    SocketPairSpec(
        pair_id="ambient:self-hosted",
        initiator=FIRST_PARTY,
        receiver=FIRST_PARTY,
        sites=160,
        page_probability=0.55,
        profile="realtime_feed",
        crawls=ALL_CRAWLS,
        rank_zone="flat",
    ),
    SocketPairSpec(
        pair_id="ambient:saas",
        initiator=FIRST_PARTY,
        receiver="TAIL:ambient:POOL",
        sites=520,
        page_probability=0.55,
        profile="realtime_feed",
        crawls=ALL_CRAWLS,
        rank_zone="flat",
    ),
)

_TAIL_PREFIXES = (
    "ad", "track", "pix", "rtb", "bid", "tag", "aud", "yield", "spark",
    "metric", "reach", "vertex", "prime", "delta", "omni", "hyper",
)
_TAIL_SUFFIXES = (
    "pulse", "grid", "mesh", "flow", "nexus", "logic", "vault", "loop",
    "sync", "wave", "forge", "lane", "core", "scope", "mint", "dash",
)
_SAAS_PREFIXES = (
    "stream", "push", "live", "sock", "relay", "signal", "channel",
    "moment", "rapid", "uplink", "fan", "echo", "pipe", "surge",
    "bridge", "swift", "direct", "linkup", "wire", "current",
)
_SAAS_SUFFIXES = (
    "ly", "ify", "hub", "kit", "app", "box", "deck", "bay", "port",
    "line", "works", "labs", "gate", "yard", "field", "dock",
)


def _tail_initiator_names(count: int) -> list[str]:
    names: list[str] = []
    i = 0
    while len(names) < count:
        prefix = _TAIL_PREFIXES[i % len(_TAIL_PREFIXES)]
        suffix = _TAIL_SUFFIXES[(i // len(_TAIL_PREFIXES)) % len(_TAIL_SUFFIXES)]
        tld = ("com", "io", "net")[i % 3]
        names.append(f"{prefix}{suffix}.{tld}")
        i += 1
    return names


def _saas_receiver_names(count: int) -> list[str]:
    names: list[str] = []
    i = 0
    while len(names) < count:
        prefix = _SAAS_PREFIXES[i % len(_SAAS_PREFIXES)]
        suffix = _SAAS_SUFFIXES[(i // len(_SAAS_PREFIXES)) % len(_SAAS_SUFFIXES)]
        tld = ("io", "com", "net")[i % 3]
        names.append(f"{prefix}{suffix}.{tld}")
        i += 1
    return names


def _tail_initiator_company(domain: str, listed_script: bool = False) -> Company:
    """A long-tail ad-tech company: partially listed, hence A&A-labeled.

    With ``listed_script``, the SDK itself is in EasyPrivacy — such
    companies' socket chains are among the ~5% a blocker would have
    caught even without seeing the socket (§4.2).
    """
    rules = [f"||{domain}/px^", f"||{domain}/sync^"]
    if listed_script:
        rules.append(f"||{domain}^$script,third-party")
    return Company(
        key=domain.split(".")[0] + "-" + domain.rsplit(".", 1)[1],
        domain=domain,
        role=Role.AD_NETWORK,
        easyprivacy_rules=tuple(rules),
        blockable_paths=("/px/beacon.gif", "/sync/match"),
        clean_paths=("/sdk/tag.js",),
        http_mix=(("script", 2.0), ("image", 2.0)),
        cookie_probability=0.6,
    )


def _saas_receiver_company(domain: str) -> Company:
    """A benign real-time SaaS endpoint: no rules, never A&A."""
    return Company(
        key="saas-" + domain.replace(".", "-"),
        domain=domain,
        role=Role.REALTIME_INFRA,
        aa_expected=False,
        clean_paths=("/client.js",),
        http_mix=(("script", 1.0),),
        cookie_probability=0.1,
    )


@dataclass
class TailInitiator:
    """One generated long-tail A&A initiator.

    Attributes:
        company: The company record.
        group: Activity-group name (``tailA`` … ``tailN``).
        crawls: Crawls during which it initiates sockets.
    """

    company: Company
    group: str
    crawls: frozenset[int]


@dataclass
class CompanyRegistry:
    """The assembled, validated ecosystem.

    Attributes:
        companies: All companies by key.
        by_domain: All companies by registrable domain.
        socket_specs: Every socket pair spec, tails included, with
            ``TAIL:`` placeholder receivers still symbolic (the planner
            resolves them against ``saas_receiver_domains``).
        ambient_specs: The ambient HTTP ecosystem.
        tail_initiators: Generated long-tail initiators with windows.
        saas_receiver_domains: Pool of benign WS receiver domains.
        cloudfront_truth: cf-host → company key (ground truth the
            labeling stage must rediscover; tests compare against it).
        moods: Per-crawl drift parameters.
        reserved_publishers: Publisher domains that must exist.
    """

    companies: dict[str, Company] = field(default_factory=dict)
    by_domain: dict[str, Company] = field(default_factory=dict)
    socket_specs: list[SocketPairSpec] = field(default_factory=list)
    ambient_specs: list[AmbientSpec] = field(default_factory=list)
    tail_initiators: list[TailInitiator] = field(default_factory=list)
    saas_receiver_domains: list[str] = field(default_factory=list)
    cloudfront_truth: dict[str, str] = field(default_factory=dict)
    moods: tuple[CrawlMood, ...] = CRAWL_MOODS
    reserved_publishers: dict[str, str] = field(default_factory=dict)

    def company(self, key: str) -> Company:
        """Look a company up by key; raises ``KeyError`` when absent."""
        return self.companies[key]

    def expected_aa_domains(self) -> set[str]:
        """Domains the pipeline is *expected* to label A&A (for tests)."""
        return {c.domain for c in self.companies.values() if c.aa_expected}

    def initiator_windows(self) -> dict[str, frozenset[int]]:
        """Company key → crawls in which it initiates sockets (truth)."""
        windows: dict[str, set[int]] = {}
        for spec in self.socket_specs:
            if spec.initiator == FIRST_PARTY:
                continue
            windows.setdefault(spec.initiator, set()).update(spec.crawls)
        return {k: frozenset(v) for k, v in windows.items()}

    def _add_company(self, company: Company) -> None:
        if company.key in self.companies:
            raise RegistryValidationError(f"duplicate company key: {company.key}")
        if company.domain in self.by_domain:
            raise RegistryValidationError(
                f"duplicate company domain: {company.domain}"
            )
        self.companies[company.key] = company
        self.by_domain[company.domain] = company

    def validate(self) -> None:
        """Check internal consistency; raises on any dangling reference."""
        for spec in self.socket_specs:
            for endpoint in (spec.initiator, spec.receiver):
                if endpoint == FIRST_PARTY or endpoint.startswith("TAIL:"):
                    continue
                if endpoint not in self.companies:
                    raise RegistryValidationError(
                        f"spec {spec.pair_id} references unknown company "
                        f"{endpoint!r}"
                    )
            for ancestor in spec.via:
                if ancestor not in self.companies:
                    raise RegistryValidationError(
                        f"spec {spec.pair_id} has unknown via company "
                        f"{ancestor!r}"
                    )
            if not spec.crawls:
                raise RegistryValidationError(
                    f"spec {spec.pair_id} is active in no crawl"
                )
            if not 0.0 < spec.page_probability <= 1.0:
                raise RegistryValidationError(
                    f"spec {spec.pair_id} has bad page_probability"
                )


def _assign_tail_quotas(
    tails: list[TailInitiator],
    registry: CompanyRegistry,
) -> list[SocketPairSpec]:
    """Wire tail initiators to A&A receivers per Table 3 quotas.

    Each receiver must hear from its quota of distinct tail A&A
    initiators within the receiver's own activity window; entities are
    assigned round-robin, at most two receivers per entity.
    """
    receiver_windows: dict[str, frozenset[int]] = {}
    for spec in all_static_pairs():
        if spec.pair_id.startswith("self:"):
            receiver_windows[spec.receiver] = spec.crawls
    specs: list[SocketPairSpec] = []
    load: dict[str, int] = {t.company.key: 0 for t in tails}
    cursor = 0
    for receiver, quota in TAIL_RECEIVER_QUOTAS:
        window = receiver_windows.get(receiver, ALL_CRAWLS)
        assigned = 0
        attempts = 0
        while assigned < quota and attempts < len(tails) * 3:
            tail = tails[cursor % len(tails)]
            cursor += 1
            attempts += 1
            if load[tail.company.key] >= 2:
                continue
            overlap = tail.crawls & window
            if not overlap:
                continue
            load[tail.company.key] += 1
            assigned += 1
            specs.append(
                SocketPairSpec(
                    pair_id=f"tail:{tail.company.key}->{receiver}",
                    initiator=tail.company.key,
                    receiver=receiver,
                    sites=1,
                    page_probability=0.22,
                    profile=_tail_profile_for(receiver),
                    crawls=frozenset(overlap),
                    rank_zone="mixed",
                )
            )
        if assigned < quota:
            raise RegistryValidationError(
                f"could not fill tail quota for receiver {receiver}"
            )
    return specs


def _tail_profile_for(receiver: str) -> str:
    if receiver == "33across":
        return "fingerprint"
    if receiver in ("realtime", "freshrelevance"):
        return "analytics_beacon"
    if receiver in ("lockerdome",):
        return "binary_uplink"
    if receiver in ("hotjar", "inspectlet", "truconversion"):
        return "event_replay"
    if receiver == "disqus":
        return "comments"
    return "chat"


def default_registry(seed: int = 2017) -> CompanyRegistry:
    """Build and validate the full default ecosystem."""
    registry = CompanyRegistry(reserved_publishers=dict(RESERVED_PUBLISHERS))
    for company in RECEIVER_COMPANIES + MAJOR_INITIATORS + NON_AA_COMPANIES:
        registry._add_company(company)
    registry.ambient_specs = all_ambient_specs()
    for spec in registry.ambient_specs:
        registry._add_company(spec.company)

    # Long-tail A&A initiators with their activity windows.
    total_tail = sum(count for _, count, _ in TAIL_INITIATOR_GROUPS)
    names = _tail_initiator_names(total_tail)
    index = 0
    for group, count, crawls in TAIL_INITIATOR_GROUPS:
        for _ in range(count):
            company = _tail_initiator_company(
                names[index], listed_script=(index % 8 == 3)
            )
            index += 1
            registry._add_company(company)
            registry.tail_initiators.append(
                TailInitiator(company=company, group=group, crawls=crawls)
            )

    # Benign SaaS receiver pool.
    registry.saas_receiver_domains = _saas_receiver_names(TAIL_PLAN.tail_receivers)
    for domain in registry.saas_receiver_domains:
        registry._add_company(_saas_receiver_company(domain))

    # Cloudfront ground truth (the labeler must rediscover this).
    for company in registry.companies.values():
        if company.cloudfront_host:
            registry.cloudfront_truth[company.cloudfront_host] = company.key

    # Pair specs: static + ambient + tail quota pairs + tail pool pairs.
    registry.socket_specs = all_static_pairs() + list(_AMBIENT_SOCKET_SPECS)
    registry.socket_specs += _assign_tail_quotas(registry.tail_initiators, registry)
    rng = RngStream(seed, "registry", "tail-pool")
    for tail in registry.tail_initiators:
        # Guarantee the entity initiates in every crawl of its window by
        # also wiring it to an always-on benign pool receiver. A tenth
        # of the tail exfiltrates in an opaque binary framing — the ~1%
        # of sockets whose sent data the paper could not decode.
        draw = rng.random()
        if draw < 0.14:
            profile = "binary_uplink"
        elif draw < 0.55:
            profile = "analytics_beacon"
        else:
            profile = "realtime_feed"
        registry.socket_specs.append(
            SocketPairSpec(
                pair_id=f"tailpool:{tail.company.key}",
                initiator=tail.company.key,
                receiver=f"TAIL:{tail.company.key}:0",
                sites=1,
                page_probability=0.5,
                profile=profile,
                crawls=tail.crawls,
                rank_zone="mixed",
            )
        )
    registry.validate()
    return registry
