"""Ecosystem planner: turn pair specs into concrete site placements.

The planner resolves the registry's scale-independent socket specs into
per-site deployment lists at a chosen crawl scale:

* calibrated multi-site specs scale as ``max(1, round(sites × scale))``;
* reserved specs land on their named publisher domains at every scale;
* single-site fan-out specs (spreads, tails) are *packed* several to a
  site so unique-entity fidelity does not inflate the fraction of
  socket-hosting sites at small scales;
* placement ranks are drawn per rank-zone, giving Figure 3 its shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.rng import RngStream, derive_seed
from repro.web.alexa import UNIVERSE_SIZE, AlexaUniverse, Site
from repro.web.model import FIRST_PARTY, SocketPairSpec
from repro.web.registry import CompanyRegistry

# Deployments packed per site for single-site fan-out specs.
_PACK_PER_SITE = 4

# Anchoring guarantees observation of unique entities with minimal
# socket mass: an anchored deployment fires deterministically on the
# site's homepage — every crawl of its window ("per_crawl": drives the
# per-crawl unique-initiator/receiver counts of Table 1) or exactly
# once in its window ("once": drives the merged unique-receiver and
# quota counts of Tables 2–3). Everything else scales proportionally.
ANCHOR_NONE = ""
ANCHOR_PER_CRAWL = "per_crawl"
ANCHOR_ONCE = "once"

# Expected sockets/crawl below which a spec gets a per-crawl anchor.
_ANCHOR_THRESHOLD = 4.5
_ASSUMED_PAGES = 15

# Rank-zone sampling: (zone, [(weight, lo, hi), ...]).
_ZONE_BINS: dict[str, tuple[tuple[float, int, int], ...]] = {
    "top": ((1.0, 1, 10_000),),
    "mid": ((1.0, 10_001, 100_000),),
    "tail": ((1.0, 100_001, UNIVERSE_SIZE),),
    # Weights follow the crawl sample's rank coverage (dense to ~100K,
    # sparse beyond), so per-bin prevalence reproduces Figure 3: A&A
    # sockets concentrated up top, a knee past 10K, a thin noisy tail.
    "mixed": ((0.24, 1, 10_000), (0.74, 10_001, 100_000),
              (0.02, 100_001, UNIVERSE_SIZE)),
    "flat": ((0.10, 1, 10_000), (0.85, 10_001, 100_000),
             (0.05, 100_001, UNIVERSE_SIZE)),
}

# Fixed ranks for the named publishers of Table 4 — plausible
# mid-popularity standings, except the two genuinely popular ones.
_RESERVED_RANKS: dict[str, int] = {
    "slither.io": 820,
    "sportingindex.com": 5_400,
    "acenterforrecovery.com": 61_300,
    "vatit.com": 83_200,
    "plymouthart.ac.uk": 147_000,
    "welchllp.com": 96_500,
    "biozone.com": 44_800,
    "rubymonk.com": 72_100,
    "getambassador.com": 28_900,
    "simpleheat-demo.com": 238_000,
    "velarocustomer-support.com": 412_000,
}


@dataclass(frozen=True)
class SocketDeployment:
    """One service deployed on one site.

    Attributes:
        deployment_id: Unique id (used for RNG stream derivation).
        initiator_key: Registry key of the initiating company, or ''
            when the publisher's own inline script initiates.
        receiver_key: Registry key of the receiving company ('' for
            benign pool receivers and self-hosted endpoints).
        ws_url: Socket endpoint, or '' when ``ws_pool`` applies.
        ws_pool: Endpoints to draw from per socket.
        via_keys: Company keys of chain ancestors above the initiator.
        profile: Payload profile name.
        page_probability: Per-page-visit activation probability.
        sockets_per_page: Sockets opened per activation.
        crawls: Crawl indices during which this deployment is live.
        user_id_probability: Chance the site identifies the user to
            the service.
    """

    deployment_id: str
    initiator_key: str
    receiver_key: str
    ws_url: str
    ws_pool: tuple[str, ...] = ()
    via_keys: tuple[str, ...] = ()
    profile: str = "chat"
    page_probability: float = 0.5
    sockets_per_page: int = 1
    crawls: frozenset[int] = frozenset({0, 1, 2, 3})
    user_id_probability: float = 0.0
    anchor: str = ANCHOR_NONE
    anchor_crawl: int = -1


@dataclass
class SitePlan:
    """Everything planned for one publisher site."""

    site: Site
    deployments: list[SocketDeployment] = field(default_factory=list)


@dataclass
class EcosystemPlan:
    """The planner's output: site plans plus the sites it placed.

    Attributes:
        site_plans: Publisher domain → plan (only socket-hosting sites
            appear here; every other site just gets ambient traffic).
        placed_sites: Sites the seed list must include.
        saas_pool: Benign SaaS receiver domains actually in use.
    """

    site_plans: dict[str, SitePlan] = field(default_factory=dict)
    placed_sites: list[Site] = field(default_factory=list)
    saas_pool: list[str] = field(default_factory=list)

    def plan_for(self, domain: str) -> SitePlan | None:
        """The site plan for a domain, if it hosts sockets."""
        return self.site_plans.get(domain)


def _draw_rank(zone: str, rng: RngStream) -> int:
    bins = _ZONE_BINS.get(zone, _ZONE_BINS["mixed"])
    if len(bins) == 1:
        _, lo, hi = bins[0]
        return rng.randint(lo, hi)
    weights = [b[0] for b in bins]
    _, lo, hi = rng.weighted_choice(bins, weights)
    return rng.randint(lo, hi)


def _ws_url_for(registry: CompanyRegistry, receiver_key: str,
                rng: RngStream) -> str:
    company = registry.company(receiver_key)
    host = company.resolved_ws_host()
    path = rng.choice(("/socket", "/ws", "/connect", "/live", "/stream"))
    scheme = "wss" if rng.bernoulli(0.85) else "ws"
    return f"{scheme}://{host}{path}"


def _saas_ws_url(domain: str, rng: RngStream) -> str:
    sub = rng.choice(("ws", "rt", "live", "push"))
    return f"wss://{sub}.{domain}/socket"


class EcosystemPlanner:
    """Compiles a registry into an :class:`EcosystemPlan` at a scale."""

    def __init__(self, registry: CompanyRegistry, universe: AlexaUniverse,
                 scale: float = 1.0, seed: int = 2017) -> None:
        if not 0.0 < scale <= 1.0:
            raise ValueError("scale must be in (0, 1]")
        self.registry = registry
        self.universe = universe
        self.scale = scale
        self.seed = seed
        self._rng = RngStream(seed, "planner")
        self._reserved_sites: dict[str, Site] = {}

    # -- public API ---------------------------------------------------------

    def build(self) -> EcosystemPlan:
        """Place every spec; returns the finished plan."""
        plan = EcosystemPlan()
        pool_size = max(40, int(len(self.registry.saas_receiver_domains) * self.scale))
        plan.saas_pool = self.registry.saas_receiver_domains[:pool_size]
        pack_cursors: dict[str, tuple[str, int]] = {}
        for spec in self.registry.socket_specs:
            self._place_spec(spec, plan, pack_cursors)
        plan.placed_sites = sorted(
            (sp.site for sp in plan.site_plans.values()), key=lambda s: s.rank
        )
        return plan

    # -- internals ----------------------------------------------------------

    def _site_for_domain(self, domain: str, category: str | None = None) -> Site:
        site = self._reserved_sites.get(domain)
        if site is None:
            rank = _RESERVED_RANKS.get(
                domain, 20_000 + (derive_seed(0, "reserved-rank", domain) % 180_000)
            )
            site = Site(
                rank=rank,
                domain=domain,
                category=category
                or self.registry.reserved_publishers.get(domain, "Business"),
            )
            self._reserved_sites[domain] = site
        return site

    def _site_at_zone(self, zone: str, rng: RngStream) -> Site:
        return self.universe.site_at(_draw_rank(zone, rng))

    def _n_sites(self, spec: SocketPairSpec) -> int:
        if spec.reserved_sites:
            return len(spec.reserved_sites)
        if spec.sites <= 2:
            return spec.sites
        return max(1, round(spec.sites * self.scale))

    def _pack_key(self, spec: SocketPairSpec) -> str | None:
        """Single-site fan-out specs share sites, keyed by initiator."""
        if spec.reserved_sites or spec.sites > 2:
            return None
        if spec.pair_id.startswith("spread:"):
            return f"spread-sites:{spec.initiator}"
        if spec.pair_id.startswith(("tail:", "tailpool:")):
            # Pack three tail entities' deployments per site.
            bucket = derive_seed(0, "tail-pack", spec.initiator) % 24
            return f"tail-sites:{bucket}"
        return None

    def _place_spec(
        self,
        spec: SocketPairSpec,
        plan: EcosystemPlan,
        pack_cursors: dict[str, tuple[str, int]],
    ) -> None:
        rng = self._rng.child("spec", spec.pair_id)
        sites = self._choose_sites(spec, plan, pack_cursors, rng)
        probability = self._effective_probability(spec, len(sites))
        anchor, anchor_crawl = self._anchoring(spec, len(sites), probability)
        for index, site in enumerate(sites):
            deployment = self._deployment_for(
                spec, site, index, plan, rng, probability, anchor, anchor_crawl
            )
            site_plan = plan.site_plans.get(site.domain)
            if site_plan is None:
                site_plan = SitePlan(site=site)
                plan.site_plans[site.domain] = site_plan
            site_plan.deployments.append(deployment)

    def _choose_sites(
        self,
        spec: SocketPairSpec,
        plan: EcosystemPlan,
        pack_cursors: dict[str, tuple[str, int]],
        rng: RngStream,
    ) -> list[Site]:
        if spec.reserved_sites:
            return [self._site_for_domain(d) for d in spec.reserved_sites]
        pack_key = self._pack_key(spec)
        if pack_key is not None:
            domain, used = pack_cursors.get(pack_key, ("", _PACK_PER_SITE))
            if used >= _PACK_PER_SITE:
                site = self._site_at_zone(spec.rank_zone, rng.child("pack"))
                pack_cursors[pack_key] = (site.domain, 1)
                return [site]
            pack_cursors[pack_key] = (domain, used + 1)
            existing = plan.site_plans[domain]
            return [existing.site]
        count = self._n_sites(spec)
        chosen: list[Site] = []
        seen: set[str] = set()
        draw = rng.child("placement")
        while len(chosen) < count:
            site = self._site_at_zone(spec.rank_zone, draw)
            if site.domain in seen:
                continue
            seen.add(site.domain)
            chosen.append(site)
        return chosen

    def _effective_probability(self, spec: SocketPairSpec, n_sites: int) -> float:
        """Scale a spec's page probability to the crawl scale.

        Multi-site specs scale through their site counts, with the
        rounding residue folded into the probability; fixed-placement
        specs scale entirely through probability. Observation at small
        probabilities is guaranteed by anchoring, not floors.
        """
        prob = spec.page_probability
        if spec.reserved_sites or spec.scale_exempt:
            # Named relationships: the per-site socket rate is itself a
            # result (Table 4's counts), so only site counts scale.
            return prob
        if spec.sites > 2:
            ratio = (spec.sites * self.scale) / n_sites
        else:
            ratio = self.scale
        if ratio >= 1.0:
            return prob
        return prob * ratio

    def _anchoring(
        self, spec: SocketPairSpec, n_sites: int, probability: float
    ) -> tuple[str, int]:
        """Decide a spec's anchor mode and (for "once") its crawl."""
        if spec.pair_id.startswith("tailpool:"):
            return ANCHOR_PER_CRAWL, -1
        if spec.pair_id.startswith(("tail:", "spread:")):
            crawl = self._rng.child("anchor", spec.pair_id).choice(
                sorted(spec.crawls)
            )
            return ANCHOR_ONCE, crawl
        if spec.pair_id.startswith("ambient:"):
            return ANCHOR_NONE, -1
        expected_per_crawl = n_sites * probability * _ASSUMED_PAGES
        if expected_per_crawl < _ANCHOR_THRESHOLD:
            return ANCHOR_PER_CRAWL, -1
        return ANCHOR_NONE, -1

    def _deployment_for(
        self,
        spec: SocketPairSpec,
        site: Site,
        index: int,
        plan: EcosystemPlan,
        rng: RngStream,
        probability: float,
        anchor: str,
        anchor_crawl: int,
    ) -> SocketDeployment:
        receiver_key = ""
        ws_url = ""
        ws_pool: tuple[str, ...] = ()
        receiver = spec.receiver
        if receiver == FIRST_PARTY:
            ws_url = f"wss://live.{site.domain}/socket"
        elif receiver.startswith("TAIL:"):
            parts = receiver.split(":")
            if "POOL" in parts:
                if parts[-1].isdigit():  # e.g. TAIL:slither:POOL:25
                    shard_count = int(parts[-1])
                    ws_pool = tuple(
                        f"wss://gs{i}.{parts[1]}node{i}.io/game"
                        for i in range(1, shard_count + 1)
                    )
                else:  # TAIL:ambient:POOL — one SaaS endpoint per site
                    domain = plan.saas_pool[
                        rng.child("pool", site.domain).randint(
                            0, len(plan.saas_pool) - 1
                        )
                    ]
                    ws_url = _saas_ws_url(domain, rng.child("url", domain))
            else:  # TAIL:<initiator>:<i> — a distinct pool receiver
                offset = derive_seed(0, "tail-offset", parts[1]) % len(plan.saas_pool)
                domain = plan.saas_pool[(offset + int(parts[2])) % len(plan.saas_pool)]
                ws_url = _saas_ws_url(domain, rng.child("url", domain))
        else:
            receiver_key = receiver
            ws_url = _ws_url_for(self.registry, receiver, rng.child("url"))
        initiator_key = "" if spec.initiator == FIRST_PARTY else spec.initiator
        return SocketDeployment(
            deployment_id=f"{spec.pair_id}#{index}",
            initiator_key=initiator_key,
            receiver_key=receiver_key,
            ws_url=ws_url,
            ws_pool=ws_pool,
            via_keys=spec.via,
            profile=spec.profile,
            page_probability=probability,
            sockets_per_page=spec.sockets_per_page,
            crawls=spec.crawls,
            user_id_probability=spec.user_id_probability,
            anchor=anchor,
            anchor_crawl=anchor_crawl,
        )
