"""The company data behind the synthetic web.

Every named initiator, receiver, and pair from Tables 2–4 of the paper
is declared here, together with calibrated deployment parameters chosen
so the *measured* outputs of the pipeline reproduce the paper's shape:

* the per-crawl unique A&A initiator counts (75 / 63 / 19 / 23) follow
  from the activity windows below — eight major ad platforms
  (DoubleClick, Facebook, Google, AddThis, …) and most long-tail ad-tech
  initiators stop initiating after the Chrome 58 patch;
* receiver-side counts (16 / 18 / 15 / 18 unique A&A receivers) follow
  from the per-crawl presence of the minor receivers;
* per-pair socket counts approximate Table 4 at full scale.

Derivations live in the comments next to each constant; the measurement
pipeline never reads this module.
"""

from __future__ import annotations

from repro.web.model import Company, CrawlMood, Role

# ---------------------------------------------------------------------------
# Crawl windows (Table 1 rows). Chrome 58 shipped 2017-04-19.
# ---------------------------------------------------------------------------

CRAWL_MOODS: tuple[CrawlMood, ...] = (
    CrawlMood("Apr 02-05, 2017", "2017-04-02", 57, activity=1.00, ambient_socket_boost=1.00),
    CrawlMood("Apr 11-16, 2017", "2017-04-11", 57, activity=1.13, ambient_socket_boost=1.25),
    CrawlMood("May 07-12, 2017", "2017-05-07", 58, activity=1.00, ambient_socket_boost=1.10),
    CrawlMood("Oct 12-16, 2017", "2017-10-12", 58, activity=1.15, ambient_socket_boost=1.40),
)

# Per-crawl activity windows for the minor A&A receivers, chosen so the
# unique-receiver row of Table 1 comes out 16 / 18 / 15 / 18 by
# measurement (13 receivers are always-on; see CRAWLS_* below).
CRAWLS_VELARO = frozenset({1, 3})
CRAWLS_TRUCONVERSION = frozenset({0, 1, 3})
CRAWLS_SIMPLEHEATMAPS = frozenset({1, 3})
CRAWLS_SESSIONCAM = frozenset({0, 2})
CRAWLS_LIVECHATINC = frozenset({0, 1})
CRAWLS_TAWK = frozenset({1, 3})
CRAWLS_USERREPLAY = frozenset({2, 3})


def _chat(key: str, domain: str, **kw) -> Company:
    defaults = dict(
        role=Role.LIVE_CHAT,
        easyprivacy_rules=(f"||{domain}/track^", f"||{domain}/visitor-sync^"),
        blockable_paths=("/track/beacon.gif", "/visitor-sync/px.gif"),
        clean_paths=("/widget/chat.js", "/widget/chat.css"),
        http_mix=(("script", 3.0), ("image", 1.0), ("xmlhttprequest", 1.0)),
        cookie_probability=0.9,
    )
    defaults.update(kw)
    return Company(key=key, domain=domain, **defaults)


def _replay(key: str, domain: str, **kw) -> Company:
    defaults = dict(
        role=Role.SESSION_REPLAY,
        easyprivacy_rules=(f"||{domain}/collect^", f"||{domain}^$image,third-party"),
        blockable_paths=("/collect/beacon.gif",),
        clean_paths=("/recorder/rec.js",),
        http_mix=(("script", 3.0), ("image", 1.0), ("xmlhttprequest", 2.0)),
        cookie_probability=0.95,
    )
    defaults.update(kw)
    return Company(key=key, domain=domain, **defaults)


def _adtech(key: str, domain: str, role: Role = Role.AD_NETWORK, **kw) -> Company:
    defaults = dict(
        role=role,
        easylist_rules=(f"||{domain}^$third-party",),
        blockable_paths=("/ads/tag.js", "/ads/px.gif", "/bid/request"),
        clean_paths=(),
        http_mix=(("script", 3.0), ("image", 3.0), ("sub_frame", 1.5), ("xmlhttprequest", 0.5)),
        cookie_probability=0.75,
    )
    defaults.update(kw)
    return Company(key=key, domain=domain, **defaults)


# ---------------------------------------------------------------------------
# A&A WebSocket receivers — the 20 unique receiver entities of Table 1,
# column 7, led by the top-15 of Table 3.
# ---------------------------------------------------------------------------

RECEIVER_COMPANIES: tuple[Company, ...] = (
    _chat("intercom", "intercom.io", ws_host="nexus-websocket-a.intercom.io"),
    Company(
        key="33across",
        domain="33across.com",
        role=Role.ANALYTICS,
        easyprivacy_rules=("||33across.com/sync^", "||33across.com^$image,third-party"),
        blockable_paths=("/sync/px.gif",),
        clean_paths=("/tc/tc.js",),
        http_mix=(("script", 2.0), ("image", 3.0)),
        cookie_probability=0.85,
        ws_host="rt.33across.com",
    ),
    _chat("zopim", "zopim.com", ws_host="widget-mediator.zopim.com"),
    Company(
        key="realtime",
        domain="realtime.co",
        role=Role.REALTIME_INFRA,
        easyprivacy_rules=("||realtime.co/metrics^",),
        blockable_paths=("/metrics/px.gif",),
        clean_paths=("/js/ortc.js",),
        http_mix=(("script", 3.0), ("image", 0.5)),
        cookie_probability=0.5,
        ws_host="ortc-node.realtime.co",
    ),
    _chat("smartsupp", "smartsupp.com", ws_host="websocket.smartsupp.com"),
    Company(
        key="feedjit",
        domain="feedjit.com",
        role=Role.ANALYTICS,
        easyprivacy_rules=("||feedjit.com/track^", "||feedjit.com^$image,third-party"),
        blockable_paths=("/track/hit.gif",),
        clean_paths=("/serve/feed.js",),
        http_mix=(("script", 2.0), ("image", 2.0)),
        cookie_probability=0.8,
        ws_host="live.feedjit.com",
    ),
    _replay("inspectlet", "inspectlet.com", ws_host="wss.inspectlet.com"),
    Company(
        key="pusher",
        domain="pusher.com",
        role=Role.REALTIME_INFRA,
        easyprivacy_rules=("||pusher.com/stats^",),
        blockable_paths=("/stats/collect",),
        clean_paths=("/pusher.min.js",),
        http_mix=(("script", 3.0), ("xmlhttprequest", 1.0)),
        cookie_probability=0.4,
        ws_host="ws.pusher.com",
        script_host="js.pusher.com",
    ),
    Company(
        key="disqus",
        domain="disqus.com",
        role=Role.COMMENTS,
        easylist_rules=("||disqus.com/ads^",),
        easyprivacy_rules=("||disqus.com/event^",),
        blockable_paths=("/event/track.gif", "/ads/sponsored.js"),
        clean_paths=("/embed/comments.js", "/embed/thread.css"),
        http_mix=(("script", 3.0), ("sub_frame", 1.5), ("image", 1.0), ("xmlhttprequest", 1.5)),
        cookie_probability=0.9,
        ws_host="realtime.services.disqus.com",
    ),
    _replay("hotjar", "hotjar.com", ws_host="ws.hotjar.com", script_host="static.hotjar.com"),
    Company(
        key="freshrelevance",
        domain="freshrelevance.com",
        role=Role.ANALYTICS,
        easyprivacy_rules=("||freshrelevance.com/collect^",),
        blockable_paths=("/collect/beacon.gif",),
        clean_paths=("/js/tracker.js",),
        http_mix=(("script", 2.0), ("image", 1.0), ("xmlhttprequest", 1.0)),
        cookie_probability=0.9,
        ws_host="push.freshrelevance.com",
        cloudfront_host="d81mfvml8p5ml.cloudfront.net",
    ),
    Company(
        key="lockerdome",
        domain="lockerdome.com",
        role=Role.AD_NETWORK,
        easylist_rules=("||lockerdome.com/ads^", "||lockerdome.com^$script,third-party"),
        blockable_paths=("/ads/slot.js",),
        clean_paths=(),
        http_mix=(("script", 3.0), ("xmlhttprequest", 1.0)),
        cookie_probability=0.85,
        ws_host="api.lockerdome.com",
        # NB: creatives come from cdn1.lockerdome.com, which no rule
        # covers — the §4.3 circumvention finding.
    ),
    _chat("velaro", "velaro.com", ws_host="live.velaro.com"),
    _replay("truconversion", "truconversion.com", ws_host="rec.truconversion.com"),
    _replay("simpleheatmaps", "simpleheatmaps.com", ws_host="collect.simpleheatmaps.com"),
    _replay(
        "luckyorange",
        "luckyorange.com",
        ws_host="visitors.luckyorange.com",
        cloudfront_host="d10lpsik1i8c69.cloudfront.net",
    ),
    # The four tail receivers completing Table 1's 20 unique A&A receivers.
    _replay("sessioncam", "sessioncam.com", ws_host="ws.sessioncam.com"),
    _chat("livechatinc", "livechatinc.com", ws_host="ws.livechatinc.com"),
    _chat("tawk", "tawk.to", ws_host="ws.tawk.to"),
    _replay("userreplay", "userreplay.net", ws_host="ws.userreplay.net"),
)

# ---------------------------------------------------------------------------
# A&A WebSocket initiators that are not receivers: the major ad platforms
# (bold rows of Table 2) plus two analytics initiators from Table 4.
# All eight majors stopped initiating after the Chrome 58 patch (§4.1).
# ---------------------------------------------------------------------------

MAJOR_INITIATORS: tuple[Company, ...] = (
    _adtech("doubleclick", "doubleclick.net", Role.AD_EXCHANGE,
            script_host="securepubads.doubleclick.net"),
    Company(
        key="facebook",
        domain="facebook.net",
        role=Role.SOCIAL_WIDGET,
        easyprivacy_rules=("||facebook.net/signals^", "||facebook.net/tr^"),
        blockable_paths=("/signals/plugin.js", "/tr/px.gif"),
        clean_paths=("/en_US/sdk.js",),
        http_mix=(("script", 3.0), ("image", 2.0), ("sub_frame", 0.5)),
        cookie_probability=0.95,
        script_host="connect.facebook.net",
    ),
    Company(
        key="google",
        domain="google.com",
        role=Role.AD_NETWORK,
        easyprivacy_rules=("||google.com/pagead^", "||google.com/ads^"),
        blockable_paths=("/pagead/conversion.js", "/ads/measure.gif"),
        clean_paths=("/jsapi/loader.js", "/recaptcha/api.js"),
        http_mix=(("script", 3.0), ("image", 1.5), ("sub_frame", 1.0)),
        cookie_probability=0.9,
        script_host="www.google.com",
    ),
    _adtech("googlesyndication", "googlesyndication.com",
            script_host="pagead2.googlesyndication.com"),
    _adtech("adnxs", "adnxs.com", Role.AD_EXCHANGE, script_host="acdn.adnxs.com"),
    Company(
        key="addthis",
        domain="addthis.com",
        role=Role.SOCIAL_WIDGET,
        easyprivacy_rules=("||addthis.com^$third-party",),
        blockable_paths=("/js/addthis_widget.js", "/red/p.png"),
        clean_paths=(),
        http_mix=(("script", 3.0), ("image", 2.0)),
        cookie_probability=0.9,
        script_host="s7.addthis.com",
    ),
    Company(
        key="sharethis",
        domain="sharethis.com",
        role=Role.SOCIAL_WIDGET,
        easyprivacy_rules=("||sharethis.com^$third-party",),
        blockable_paths=("/button/buttons.js", "/pec/pixel.gif"),
        clean_paths=(),
        http_mix=(("script", 3.0), ("image", 1.0)),
        cookie_probability=0.85,
        script_host="w.sharethis.com",
    ),
    Company(
        key="twitter",
        domain="twitter.com",
        role=Role.SOCIAL_WIDGET,
        easyprivacy_rules=("||twitter.com/i/jot^", "||twitter.com/oct^"),
        blockable_paths=("/i/jot/embeds", "/oct/pixel.gif"),
        clean_paths=("/widgets/widgets.js",),
        http_mix=(("script", 3.0), ("image", 1.0), ("sub_frame", 1.0)),
        cookie_probability=0.9,
        script_host="platform.twitter.com",
    ),
    Company(
        key="webspectator",
        domain="webspectator.com",
        role=Role.ANALYTICS,
        # Only the beacon endpoint is listed — the engagement SDK
        # itself slipped past the lists, which is why webspectator's
        # 1,285 realtime sockets would not have been chain-blocked.
        easyprivacy_rules=("||webspectator.com/track^",),
        blockable_paths=("/track/px.gif",),
        clean_paths=("/gpt/ws.js",),
        http_mix=(("script", 3.0), ("image", 1.0)),
        cookie_probability=0.85,
        script_host="cdn.webspectator.com",
    ),
    _chat("clickdesk", "clickdesk.com", ws_host="ws.clickdesk.com"),
)

# ---------------------------------------------------------------------------
# Non-A&A entities that appear in the initiator tables: CDNs, games,
# sports tickers, publisher platforms.
# ---------------------------------------------------------------------------

NON_AA_COMPANIES: tuple[Company, ...] = (
    Company(
        key="espncdn", domain="espncdn.com", role=Role.SPORTS, aa_expected=False,
        clean_paths=("/scripts/fastcast.js",),
        http_mix=(("script", 3.0), ("image", 2.0)), cookie_probability=0.1,
        script_host="a.espncdn.com", ws_host="fastcast.espncdn.com",
    ),
    Company(
        key="h-cdn", domain="h-cdn.com", role=Role.CDN, aa_expected=False,
        clean_paths=("/static/player.js",),
        http_mix=(("script", 2.0), ("media", 2.0)), cookie_probability=0.05,
        script_host="cdn.h-cdn.com", ws_host="sync.h-cdn.com",
    ),
    Company(
        key="slither", domain="slither.io", role=Role.GAME, aa_expected=False,
        clean_paths=("/s/game.js",),
        http_mix=(("script", 2.0),), cookie_probability=0.05,
        script_host="slither.io", ws_host="s.slither.io",
    ),
    Company(
        key="cloudflare", domain="cloudflare.com", role=Role.CDN, aa_expected=False,
        clean_paths=("/cdn-cgi/rocket-loader.js", "/ajax/libs/jquery.min.js"),
        http_mix=(("script", 3.0), ("stylesheet", 1.0)), cookie_probability=0.2,
        script_host="cdnjs.cloudflare.com", ws_host="ws.cloudflare.com",
        deploy_weight=3.0,
    ),
    Company(
        key="googleapis", domain="googleapis.com", role=Role.CDN, aa_expected=False,
        clean_paths=("/ajax/libs/jquery/3.1.0/jquery.min.js", "/js/client.js"),
        http_mix=(("script", 3.0), ("font", 1.0), ("stylesheet", 1.0)),
        cookie_probability=0.05,
        script_host="ajax.googleapis.com", ws_host="push.googleapis.com",
        deploy_weight=4.0,
    ),
    Company(
        key="cdn77", domain="cdn77.org", role=Role.CDN, aa_expected=False,
        clean_paths=("/static/bundle.js",),
        http_mix=(("script", 2.0), ("stylesheet", 1.0)), cookie_probability=0.05,
        script_host="cdn.cdn77.org", ws_host="ws.cdn77.org",
    ),
    Company(
        key="youtube", domain="youtube.com", role=Role.VIDEO, aa_expected=False,
        clean_paths=("/iframe_api", "/player/player.js"),
        http_mix=(("script", 2.0), ("sub_frame", 3.0), ("image", 1.0)),
        cookie_probability=0.6,
        script_host="www.youtube.com", ws_host="push.youtube.com",
        deploy_weight=2.5,
    ),
    Company(
        key="blogger", domain="blogger.com", role=Role.PUBLISHER_TOOL, aa_expected=False,
        clean_paths=("/static/widgets.js",),
        http_mix=(("script", 2.0), ("image", 1.0)), cookie_probability=0.4,
        script_host="www.blogger.com", ws_host="ws.blogger.com",
    ),
    Company(
        key="sportingindex", domain="sportingindex.com", role=Role.SPORTS,
        aa_expected=False,
        clean_paths=("/js/spread.js",),
        http_mix=(("script", 2.0),), cookie_probability=0.3,
        script_host="www.sportingindex.com", ws_host="push.sportingindex.com",
    ),
)

# Publisher sites named in Table 4 whose own inline scripts open chat
# sockets (the recognizable first parties).
RESERVED_PUBLISHERS: dict[str, str] = {
    # domain -> category used when the site is generated
    "acenterforrecovery.com": "Health",
    "vatit.com": "Business",
    "plymouthart.ac.uk": "Arts",
    "welchllp.com": "Business",
    "biozone.com": "Science",
    "rubymonk.com": "Computers",
    "getambassador.com": "Business",
    "simpleheat-demo.com": "Computers",  # the lone simpleheatmaps customer
    "sportingindex.com": "Sports",
    "slither.io": "Games",
    "velarocustomer-support.com": "Business",
}
