"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``study``   — run the four-crawl study and print every artifact
  (``--trace``/``--metrics-out`` export the observability artifacts;
  ``--faults`` injects a named fault profile; ``--checkpoint``
  journals per-site completion for resume; ``--spool-dir`` journals
  into a durable write-ahead spool instead — crash-safe,
  quota-bounded via ``--spool-quota``).
* ``analyze`` — re-analyze a dataset saved by ``study --dataset-out``
  in one streaming pass, serving unchanged stages from the
  content-addressed artifact cache (``--no-cache`` bypasses it);
  ``--incremental <spool-dir>`` folds only dataset slices whose
  per-stage state is not already cached, using the spool's import
  journal.
* ``spool``   — the write-ahead spool: ``spool status <dir>`` prints
  segments, bytes, and import state; ``spool import <dir> <dataset>``
  drains sealed segments into the dataset (idempotent — re-running
  is a no-op).
* ``obs``     — summarize a trace JSONL written by ``study --trace``
  (``--json`` emits one machine-consumable object, ``--top N`` keeps
  the N heaviest stage rows).
* ``perf``    — the performance observatory over exported traces and
  the benchmark history: ``perf flame <trace>`` (critical-path +
  self-time attribution by span path), ``perf diff <a> <b>``
  (per-path deltas between two traces; byte-identical traces diff
  empty), ``perf check`` (rolling-baseline regression gate over
  ``results/bench/history.jsonl``; exits 5 on a regression).
* ``serve``   — the measurement system as a query service over one
  immutable snapshot (compiled lists per phase, WRB policy, A&A
  labels, cached artifacts): ``serve snapshot`` prints the snapshot
  identity, ``serve queries`` emits a seeded scripted query mix as
  JSONL envelopes, ``serve script`` answers a query stream on N
  worker threads and writes the byte-stable response transcript
  (``--transcript``), ``serve http`` binds the stdlib HTTP frontend
  (``POST /v1/query``, ``GET /v1/snapshot``).
* ``visit``   — load one site in the simulated browser and print its
  inclusion tree and WebSocket traffic.
* ``check``   — evaluate a URL against the synthetic EasyList/EasyPrivacy.
* ``lists``   — dump the synthetic filter lists.
* ``lint``    — static analysis: filter-list defects (incl. WebSocket
  blindspots), webRequest pattern verdicts cross-validated against
  dynamic dispatch, and the repro's own whole-program self-lint
  (determinism, API boundaries, and the FLOW zone contracts, gated by
  the committed ``staticlint-baseline.json``; ``--json`` emits one
  JSON object per finding, ``--flow-cache-dir`` holds the
  content-addressed parse cache).

Global flags: ``--quiet`` suppresses progress lines on stderr;
``--verbose`` adds stage-transition lines. Exit codes: 0 success, 1
contract violation (``lint``), 2 bad invocation or unreadable input,
3 catastrophic degradation — a crawl exhausted its retries on every
page and produced no data, 4 parallel execution failure — a shard
worker died before the study could merge, 5 performance regression —
``perf check`` found a gated metric past tolerance, 6 spool quota
hard breach — the spool is over budget with nothing evictable left
(import or raise ``--spool-quota``), 7 serve error — a scripted
``serve script`` run produced at least one error envelope (see
README.md).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import report as report_mod
from repro.browser import Browser
from repro.cdp import EventBus, SessionRecorder
from repro.cdp.har import save_har
from repro.crawler.persistence import DatasetError, save_dataset
from repro.experiments import (
    DEFAULT_CONFIG,
    FULL_CONFIG,
    SMOKE_CONFIG,
    TINY_CONFIG,
    run_study,
)
from repro.extension.adblocker import AdBlockerExtension
from repro.faults import PROFILES
from repro.inclusion import InclusionTreeBuilder
from repro.net.http import ResourceType
from repro.obs import (
    Obs,
    ObsEvent,
    read_trace,
    render_obs_summary,
    write_metrics,
    write_trace,
)
from repro.parallel import ParallelExecutionError
from repro.web.filterlists import (
    LIST_SCALES,
    build_easylist_text,
    build_easyprivacy_text,
    build_filter_engine,
    generate_filter_list_text,
)
from repro.web.registry import default_registry
from repro.web.server import SyntheticWeb, WebScale

_PRESETS = {"smoke": SMOKE_CONFIG, "tiny": TINY_CONFIG,
            "default": DEFAULT_CONFIG, "full": FULL_CONFIG}


def _progress_sink(verbose: bool):
    """An obs-event sink printing crawl progress to stderr."""

    def sink(event: ObsEvent) -> None:
        attrs = event.attrs
        if event.name == "crawl.progress":
            print(
                f"[crawl {attrs['crawl']} · Chrome {attrs['chrome']}] "
                f"{attrs['sites_done']}/{attrs['sites_total']} sites · "
                f"{attrs['pages']} pages · {attrs['sockets']} sockets seen",
                file=sys.stderr,
            )
        elif verbose and event.name == "stage":
            print(f"[study] stage: {attrs['stage']}", file=sys.stderr)

    return sink


def _study_exit_code(summaries) -> int:
    """0 normally; 3 when some crawl's retries exhausted on every page."""
    for summary in summaries:
        if summary.sites_visited and summary.pages_visited == 0:
            return 3
    return 0


def _render_degradation(summaries) -> str:
    """Per-crawl fault-tolerance counters (only degraded crawls)."""
    lines = []
    for summary in summaries:
        taxonomy = ", ".join(
            f"{kind}={count}" for kind, count in summary.errors.items()
        )
        lines.append(
            f"crawl {summary.config.index}: "
            f"{summary.pages_visited} pages ok, "
            f"{summary.pages_failed} failed, "
            f"{summary.page_retries} retries, "
            f"{summary.sites_quarantined} sites quarantined, "
            f"{summary.sockets_partial} partial sockets"
            + (f"  [{taxonomy}]" if taxonomy else "")
        )
    return "\n".join(lines)


def _cmd_study(args: argparse.Namespace) -> int:
    from repro.spool import SpoolCorruptionError, SpoolQuotaExceeded
    from repro.spool import SpoolDiskFull

    config = _PRESETS[args.preset]
    if args.faults != config.faults:
        config = config.with_faults(args.faults)
    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}",
              file=sys.stderr)
        return 2
    if args.checkpoint and args.spool_dir:
        print("--checkpoint and --spool-dir are exclusive journals; "
              "pick one", file=sys.stderr)
        return 2
    obs = Obs()
    if not args.quiet:
        obs.tracer.add_sink(_progress_sink(args.verbose))
    try:
        result = run_study(config, obs=obs,
                           checkpoint_path=args.checkpoint or None,
                           workers=args.workers,
                           spool_dir=args.spool_dir or None,
                           spool_quota=args.spool_quota)
    except ParallelExecutionError as error:
        print(f"parallel execution failed: {error}", file=sys.stderr)
        return 4
    except (SpoolQuotaExceeded, SpoolDiskFull) as error:
        print(str(error), file=sys.stderr)
        return 6
    except SpoolCorruptionError as error:
        print(f"spool is corrupt: {error}", file=sys.stderr)
        return 2
    print(report_mod.render_table1(result.table1), "\n")
    print("TABLE 2 — top initiators")
    print(report_mod.render_table2(result.table2), "\n")
    print("TABLE 3 — top A&A receivers")
    print(report_mod.render_table3(result.table3), "\n")
    print("TABLE 4 — initiator/receiver pairs")
    print(report_mod.render_table4(result.table4), "\n")
    print("TABLE 5 — content analysis")
    print(report_mod.render_table5(result.table5), "\n")
    print("FIGURE 3 — usage by rank")
    print(report_mod.render_figure3(result.figure3), "\n")
    print(report_mod.render_overall(result.overall), "\n")
    print(report_mod.render_blocking(result.blocking))
    if result.lint is not None:
        print("\nSTATIC LINT — filter lists & webRequest patterns")
        print(report_mod.render_lint(result.lint))
    if any(s.errors or s.pages_failed or s.sites_quarantined
           for s in result.summaries):
        print("\nDEGRADATION — fault tolerance "
              f"(profile: {config.faults})")
        print(_render_degradation(result.summaries))
    if result.obs is not None:
        print("\nOBSERVABILITY — per-stage timing & attribution")
        print(report_mod.render_obs(result.obs))
        if args.trace:
            lines = write_trace(args.trace, result.obs)
            print(f"\ntrace written to {args.trace} ({lines} records)")
        if args.metrics_out:
            write_metrics(args.metrics_out, result.obs)
            print(f"metrics written to {args.metrics_out}")
    if args.dataset_out:
        count = save_dataset(args.dataset_out, result.dataset)
        print(f"dataset written to {args.dataset_out} "
              f"({count} socket records)")
    return _study_exit_code(result.summaries)


def _spool_slices(spool_dir: str, dataset: str):
    """Slices covering the dataset, from the spool's import journal.

    Journal slices cover the spool-imported record ranges; any gaps
    (records predating the journal, e.g. a ``--dataset-out`` file the
    spool later extended) are filled with synthetic ``base:`` slices
    content-addressed the same way, so incremental analysis always
    sees a complete, contiguous tiling of the record region.
    """
    from pathlib import Path

    from repro.analysis import SegmentSlice
    from repro.crawler.persistence import open_dataset
    from repro.spool import ImportState

    state = ImportState.load(Path(spool_dir), Path(dataset))
    reader = open_dataset(dataset)
    slices = []
    cursor = 0
    for entry in state.slices:
        if entry.stop <= entry.start:
            continue
        if entry.start < cursor:
            raise ValueError(
                f"import journal slices overlap at record {entry.start}"
            )
        if entry.start > cursor:
            _, sha = reader.record_range_sha(cursor, entry.start)
            slices.append(SegmentSlice(
                f"base:{cursor}-{entry.start}", cursor, entry.start, sha
            ))
        slices.append(SegmentSlice(
            entry.segment_id, entry.start, entry.stop, entry.lines_sha
        ))
        cursor = entry.stop
    tail, sha = reader.record_range_sha(cursor, None)
    if tail:
        slices.append(SegmentSlice(
            f"base:{cursor}-{cursor + tail}", cursor, cursor + tail, sha
        ))
    return slices


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis import (
        AnalysisEngine,
        DatasetSource,
        StageCache,
        StateCache,
        default_stages,
    )
    from repro.util.serialization import dumps

    try:
        source = DatasetSource.from_file(args.dataset)
    except DatasetError as error:
        print(f"cannot read dataset {args.dataset!r}: {error}",
              file=sys.stderr)
        return 2
    cache = None if args.no_cache else StageCache(args.cache_dir)
    engine = AnalysisEngine(stages=default_stages(), cache=cache)
    if args.incremental:
        try:
            slices = _spool_slices(args.incremental, args.dataset)
        except (OSError, ValueError, KeyError) as error:
            print(f"cannot build slices from spool "
                  f"{args.incremental!r}: {error}", file=sys.stderr)
            return 2
        result = engine.run_incremental(
            source, slices, StateCache(args.cache_dir)
        )
        if not args.quiet:
            print(
                f"segment folds: {result.segments_cached} cached, "
                f"{result.segments_folded} folded",
                file=sys.stderr,
            )
    else:
        result = engine.run(source)
    if args.json:
        payload = {
            "dataset": source.fingerprint(),
            "computed": list(result.computed),
            "cached": list(result.cached),
            "artifacts": {
                stage.name: stage.encode_artifact(result[stage.name])
                for stage in engine.stages
            },
        }
        output = dumps(payload)
    else:
        output = report_mod.render_analysis(result)
    if args.report_out:
        from pathlib import Path

        from repro.util.atomicio import atomic_write

        atomic_write(Path(args.report_out), output + "\n")
        if not args.quiet:
            print(f"report written to {args.report_out}", file=sys.stderr)
    else:
        print(output)
    if cache is not None and not args.quiet:
        print(
            f"analysis cache: {cache.hits} hit(s), "
            f"{cache.misses} recomputed",
            file=sys.stderr,
        )
    return 0


def _cmd_spool_status(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.spool import SpoolCorruptionError, recover_spool
    from repro.spool import ImportState, list_segments

    root = Path(args.spool_dir)
    if not root.is_dir():
        print(f"no spool directory at {root}", file=sys.stderr)
        return 2
    try:
        report = recover_spool(root)
    except SpoolCorruptionError as error:
        print(f"spool is corrupt: {error}", file=sys.stderr)
        return 2
    try:
        state = ImportState.load(root)
    except (OSError, ValueError, KeyError) as error:
        print(f"cannot read import journal: {error}", file=sys.stderr)
        return 2
    imported = state.imported_ids
    segments = list_segments(root)
    total = 0
    fresh = 0
    for info in segments:
        status = "open" if not info.sealed else (
            "imported" if info.segment_id in imported else "sealed"
        )
        if info.sealed and info.segment_id not in imported:
            fresh += 1
        total += info.size
        print(f"{info.segment_id:<24} {status:<9} {info.size:>12} bytes")
    print(f"{len(segments)} segment(s), {total} bytes "
          f"({fresh} sealed awaiting import)")
    if report.torn_records or report.truncated_segments:
        print(f"recovery: truncated {report.truncated_segments} torn "
              f"segment(s) ({report.torn_records} torn record(s))")
    if state.dataset_path is not None:
        print(f"imports into {state.dataset_path} "
              f"({len(imported)} segment(s) imported)")
    return 0


def _cmd_spool_import(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.spool import SpoolCorruptionError, import_spool

    try:
        result = import_spool(Path(args.spool_dir), Path(args.dataset))
    except SpoolCorruptionError as error:
        print(f"spool is corrupt: {error}", file=sys.stderr)
        return 2
    except (OSError, ValueError, KeyError) as error:
        print(f"import failed: {error}", file=sys.stderr)
        return 2
    if result.no_op:
        print("nothing to import (all sealed segments already imported)")
        return 0
    print(f"imported {len(result.imported_segments)} segment(s): "
          f"{result.new_records} new socket records, "
          f"{result.new_sites} sites ({result.deduped_sites} duplicate "
          f"site(s) skipped)")
    print(f"dataset {result.dataset_path}: {result.total_records} records "
          f"(fingerprint {result.fingerprint[:16]})")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from repro.obs import obs_summary_json

    try:
        summary = read_trace(args.trace)
    except (OSError, ValueError, KeyError) as error:
        print(f"cannot read trace {args.trace!r}: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(obs_summary_json(summary, top=args.top),
                         sort_keys=True))
    else:
        print(render_obs_summary(summary, top=args.top))
    return 0


def _read_trace_or_none(path: str):
    from repro.obs import read_trace as _read

    try:
        return _read(path)
    except (OSError, ValueError, KeyError) as error:
        print(f"cannot read trace {path!r}: {error}", file=sys.stderr)
        return None


def _cmd_perf_flame(args: argparse.Namespace) -> int:
    import json

    from repro.obs import build_flame, flame_json, render_flame

    summary = _read_trace_or_none(args.trace)
    if summary is None:
        return 2
    report = build_flame(summary)
    if args.json:
        print(json.dumps(flame_json(report, top=args.top or None),
                         sort_keys=True))
    else:
        print(render_flame(report, top=args.top))
    return 0


def _cmd_perf_diff(args: argparse.Namespace) -> int:
    import json

    from repro.obs import diff_json, diff_traces, render_diff

    summary_a = _read_trace_or_none(args.trace_a)
    summary_b = _read_trace_or_none(args.trace_b)
    if summary_a is None or summary_b is None:
        return 2
    diff = diff_traces(summary_a, summary_b,
                       min_ticks=args.min_ticks, min_pct=args.min_pct,
                       min_count=args.min_count)
    if args.json:
        print(json.dumps(diff_json(diff), sort_keys=True))
    else:
        print(render_diff(diff, top=args.top))
    return 0


def _cmd_perf_check(args: argparse.Namespace) -> int:
    import json

    from repro.obs import check_history, check_json, read_history, render_check

    try:
        records, skipped = read_history(args.history)
    except OSError as error:
        print(f"cannot read history {args.history!r}: {error}",
              file=sys.stderr)
        return 2
    check = check_history(records, window=args.window,
                          tolerance=args.tolerance,
                          min_delta=args.min_delta)
    check.skipped_lines = skipped
    if args.json:
        print(json.dumps(check_json(check), sort_keys=True))
    else:
        print(render_check(check))
    return 0 if check.ok else 5


def _cmd_visit(args: argparse.Namespace) -> int:
    web = SyntheticWeb(scale=WebScale(sample_scale=args.sample_scale,
                                      entity_scale=args.scale))
    if args.domain:
        plan = web.plan.plan_for(args.domain)
        if plan is None:
            try:
                site = web.site(args.domain)
            except KeyError:
                print(f"unknown domain {args.domain!r}; socket-hosting "
                      f"sites include:", file=sys.stderr)
                for domain in list(web.plan.site_plans)[:10]:
                    print(f"  {domain}", file=sys.stderr)
                return 2
        else:
            site = plan.site
    else:
        site = next(iter(web.plan.site_plans.values())).site
    bus = EventBus()
    browser = Browser(version=args.chrome, bus=bus)
    if args.blocker:
        AdBlockerExtension(build_filter_engine(web.registry)).install(
            browser.webrequest
        )
    recorder = SessionRecorder(bus) if args.har else None
    builder = InclusionTreeBuilder()
    builder.attach(bus)
    result = browser.visit(web.blueprint(site, args.page, args.crawl),
                           crawl=args.crawl)
    builder.detach()
    tree = builder.result()
    print(f"{tree.root.url}  (Chrome {args.chrome}, crawl {args.crawl}"
          f"{', blocker on' if args.blocker else ''})")
    print(f"requests={result.requests} blocked={result.blocked_requests} "
          f"sockets={result.sockets_opened} "
          f"sockets_blocked={result.sockets_blocked}")
    for node in tree.all_nodes():
        indent = "  " * node.depth()
        marker = {"document": "□", "resource": "·", "websocket": "⇄"}
        print(f"{indent}{marker[node.kind.value]} {node.url}")
    for ws in tree.websockets:
        print(f"\n⇄ {ws.url}")
        for frame in ws.websocket.frames[: args.frames]:
            print(f"  {'→' if frame.sent else '←'} {frame.payload[:100]}")
    if recorder is not None:
        path = save_har(args.har, recorder.events)
        print(f"\nHAR written to {path}")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    engine = build_filter_engine(
        default_registry(), compiled=args.engine == "compiled"
    )
    try:
        rtype = ResourceType(args.type)
    except ValueError:
        print(f"unknown resource type {args.type!r}", file=sys.stderr)
        return 2
    result = engine.match(args.url, rtype, args.first_party)
    if result.blocked:
        print(f"BLOCKED by {result.list_name}: {result.rule.raw}")
    elif result.matched:
        print(f"allowed (exception {result.exception_rule.raw} overrides "
              f"{result.rule.raw})")
    else:
        print("allowed (no rule matched)")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.staticlint.baseline import load_baseline, write_baseline
    from repro.staticlint.cache import FactsCache
    from repro.staticlint.runner import run_full_lint

    self_only = args.self_only
    check_self = self_only or not args.no_self
    cache = None
    if check_self and not args.no_flow_cache:
        cache = FactsCache(Path(args.flow_cache_dir))
    baseline = None
    if args.baseline:
        try:
            baseline = load_baseline(Path(args.baseline))
        except ValueError as error:
            print(str(error), file=sys.stderr)
            return 2
    result = run_full_lint(
        check_lists=not self_only,
        check_webrequest=not self_only,
        check_self=check_self,
        baseline=baseline,
        cache=cache,
    )
    if args.write_baseline:
        if result.flow_analysis is None:
            print("--write-baseline requires the self-lint stage",
                  file=sys.stderr)
            return 2
        target = Path(args.baseline or "staticlint-baseline.json")
        entries = write_baseline(target, result.flow_analysis.flow_report)
        print(f"wrote {len(entries)} baseline entries to {target}")
        return 0
    if args.json:
        for diag in result.report.diagnostics:
            print(json.dumps(diag.to_json(), sort_keys=True))
    else:
        print(report_mod.render_lint(result))
    return result.exit_code


def _serve_snapshot(args: argparse.Namespace):
    """Build the snapshot a serve subcommand was pointed at."""
    from repro.serve import build_scale_snapshot

    return build_scale_snapshot(args.scale, seed=args.seed)


def _cmd_serve_snapshot(args: argparse.Namespace) -> int:
    from repro.serve import ServeService, SnapshotRequest, result_line

    service = ServeService(_serve_snapshot(args))
    result = service.handle(SnapshotRequest())
    if args.json:
        print(result_line(result))
        return 0
    info = result.body
    print(f"snapshot v{info.snapshot_version} "
          f"fingerprint={result.fingerprint}")
    print(f"  serve version : {info.serve_version}")
    print(f"  phases        : {', '.join(info.phases)}")
    for phase, count in info.rule_counts.items():
        print(f"  rules[{phase}]   : {count}")
    print(f"  A&A domains   : {info.aa_domains}")
    print(f"  dataset       : {info.dataset_fingerprint}")
    print(f"  artifacts     : "
          f"{', '.join(info.artifact_stages) or '(none)'}")
    return 0


def _cmd_serve_queries(args: argparse.Namespace) -> int:
    import json

    from repro.serve import encode_request, generate_query_mix
    from repro.web.filterlists import generate_filter_lists

    lists = generate_filter_lists(LIST_SCALES[args.scale], seed=args.seed)
    requests = generate_query_mix(lists, args.count, seed=args.query_seed)
    out = sys.stdout
    if args.out:
        out = open(args.out, "w", encoding="utf-8")
    try:
        for request in requests:
            print(json.dumps(encode_request(request), sort_keys=True,
                             separators=(",", ":")), file=out)
    finally:
        if out is not sys.stdout:
            out.close()
    return 0


def _cmd_serve_script(args: argparse.Namespace) -> int:
    import json

    from repro.serve import (
        ServeProtocolError,
        ServeService,
        decode_request,
        generate_query_mix,
        run_workers,
        transcript_lines,
        write_transcript,
    )
    from repro.web.filterlists import generate_filter_lists

    snapshot = _serve_snapshot(args)
    if args.queries:
        try:
            with open(args.queries, encoding="utf-8") as handle:
                requests = [
                    decode_request(json.loads(line))
                    for line in handle if line.strip()
                ]
        except OSError as error:
            print(f"cannot read queries: {error}", file=sys.stderr)
            return 2
        except (ValueError, ServeProtocolError) as error:
            print(f"bad query envelope: {error}", file=sys.stderr)
            return 2
    else:
        lists = generate_filter_lists(
            LIST_SCALES[args.scale], seed=args.seed
        )
        requests = generate_query_mix(
            lists, args.count, seed=args.query_seed
        )
    if not requests:
        print("no queries to run", file=sys.stderr)
        return 2
    service = ServeService(snapshot)
    results = run_workers(service, requests, workers=args.workers)
    if args.transcript:
        write_transcript(args.transcript, results)
    else:
        for line in transcript_lines(results):
            print(line)
    errors = sum(1 for result in results if not result.ok)
    if not args.quiet:
        blocked = sum(
            1 for result in results
            if result.ok and result.endpoint == "check"
            and result.body.blocked
        )
        print(
            f"[serve] {len(results)} queries · workers={args.workers} · "
            f"fingerprint={snapshot.fingerprint} · blocked={blocked} · "
            f"errors={errors}",
            file=sys.stderr,
        )
    return 7 if errors else 0


def _cmd_serve_http(args: argparse.Namespace) -> int:
    from repro.serve import ServeService, make_server

    service = ServeService(_serve_snapshot(args))
    server = make_server(service, host=args.host, port=args.port)
    print(
        f"[serve] snapshot {service.snapshot.fingerprint} on "
        f"http://{args.host}:{server.port}/v1/query",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _cmd_lists(args: argparse.Namespace) -> int:
    if args.scale:
        print(generate_filter_list_text(
            LIST_SCALES[args.scale], seed=args.seed,
            name=f"easylist-{args.scale}",
        ), end="")
        return 0
    registry = default_registry()
    if args.list in ("easylist", "both"):
        print(build_easylist_text(registry))
    if args.list in ("easyprivacy", "both"):
        print(build_easyprivacy_text(registry))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WebSocket ad-blocker-circumvention study (IMC 2018) "
                    "reproduction",
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument("-q", "--quiet", action="store_true",
                           help="suppress progress lines on stderr")
    verbosity.add_argument("-v", "--verbose", action="store_true",
                           help="also print stage-transition lines")
    sub = parser.add_subparsers(dest="command", required=True)

    study = sub.add_parser("study", help="run the four-crawl study")
    study.add_argument("--preset", choices=sorted(_PRESETS), default="tiny")
    study.add_argument("--trace", default="",
                       help="write the study's observability trace "
                            "(spans, events, metrics) as JSONL")
    study.add_argument("--metrics-out", default="", dest="metrics_out",
                       help="write the final metrics snapshot as JSON")
    study.add_argument("--faults", choices=sorted(PROFILES), default="none",
                       help="inject a named fault profile into the crawls")
    study.add_argument("--checkpoint", default="",
                       help="JSONL journal of per-site completion; rerun "
                            "with the same path to resume an interrupted "
                            "study")
    study.add_argument("--workers", type=int, default=1,
                       help="crawl shards on this many worker processes "
                            "(artifacts are byte-identical across worker "
                            "counts; default 1 runs inline)")
    study.add_argument("--dataset-out", default="", dest="dataset_out",
                       help="write the full study dataset as JSONL "
                            "(.gz supported) for later `repro analyze`")
    study.add_argument("--spool-dir", default="", dest="spool_dir",
                       help="journal crawl progress into a durable "
                            "write-ahead spool at this directory "
                            "(crash-safe; drain with `repro spool "
                            "import`)")
    study.add_argument("--spool-quota", type=int, default=0,
                       dest="spool_quota", metavar="BYTES",
                       help="spool size budget; oldest imported segments "
                            "are evicted to stay under it, and the study "
                            "exits 6 if nothing evictable remains "
                            "(0 = unlimited)")
    study.set_defaults(func=_cmd_study)

    analyze = sub.add_parser(
        "analyze",
        help="re-analyze a saved dataset (cached, streaming)",
    )
    analyze.add_argument("dataset",
                         help="dataset JSONL from `study --dataset-out`")
    analyze.add_argument("--report-out", default="", dest="report_out",
                         help="write the report to this file instead of "
                              "stdout")
    analyze.add_argument("--json", action="store_true",
                         help="emit the stage artifacts as JSON instead "
                              "of the text report")
    analyze.add_argument("--no-cache", action="store_true", dest="no_cache",
                         help="recompute every stage, bypassing the "
                              "artifact cache")
    analyze.add_argument("--cache-dir", default="results/cache",
                         dest="cache_dir",
                         help="stage artifact cache directory "
                              "(default: results/cache)")
    analyze.add_argument("--incremental", default="", metavar="SPOOL_DIR",
                         help="fold incrementally using SPOOL_DIR's "
                              "import journal: slices already analyzed "
                              "restore from the state cache, only new "
                              "ones re-read records")
    analyze.set_defaults(func=_cmd_analyze)

    spool = sub.add_parser(
        "spool",
        help="inspect or drain a write-ahead crawl spool",
    )
    spool_sub = spool.add_subparsers(dest="spool_command", required=True)
    sstatus = spool_sub.add_parser(
        "status", help="recover and list a spool's segments"
    )
    sstatus.add_argument("spool_dir", help="spool directory")
    sstatus.set_defaults(func=_cmd_spool_status)
    simport = spool_sub.add_parser(
        "import",
        help="drain sealed segments into a dataset (idempotent)",
    )
    simport.add_argument("spool_dir", help="spool directory")
    simport.add_argument("dataset",
                         help="dataset JSONL (.gz supported) to create "
                              "or extend")
    simport.set_defaults(func=_cmd_spool_import)

    obs = sub.add_parser("obs", help="summarize a study trace file")
    obs.add_argument("trace", help="trace JSONL from `study --trace`")
    obs.add_argument("--json", action="store_true",
                     help="emit one JSON object (schema in README) "
                          "instead of the text report")
    obs.add_argument("--top", type=int, default=None, metavar="N",
                     help="keep only the N heaviest stage rows")
    obs.set_defaults(func=_cmd_obs)

    perf = sub.add_parser(
        "perf",
        help="trace analytics and the benchmark regression gate",
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)

    flame = perf_sub.add_parser(
        "flame",
        help="critical-path + self-time attribution for one trace",
    )
    flame.add_argument("trace", help="trace JSONL from `study --trace`")
    flame.add_argument("--top", type=int, default=30, metavar="N",
                       help="hot paths to show (default 30)")
    flame.add_argument("--json", action="store_true",
                       help="emit one JSON object (schema in README)")
    flame.set_defaults(func=_cmd_perf_flame)

    pdiff = perf_sub.add_parser(
        "diff",
        help="align two traces by span path and report the deltas",
    )
    pdiff.add_argument("trace_a", help="baseline trace JSONL")
    pdiff.add_argument("trace_b", help="candidate trace JSONL")
    pdiff.add_argument("--min-ticks", type=int, default=0,
                       dest="min_ticks", metavar="T",
                       help="suppress path deltas smaller than T ticks")
    pdiff.add_argument("--min-pct", type=float, default=0.0,
                       dest="min_pct", metavar="P",
                       help="suppress path deltas smaller than P%% of "
                            "the baseline")
    pdiff.add_argument("--min-count", type=int, default=0,
                       dest="min_count", metavar="C",
                       help="suppress counter deltas smaller than C")
    pdiff.add_argument("--top", type=int, default=30, metavar="N",
                       help="rows to show per section (default 30)")
    pdiff.add_argument("--json", action="store_true",
                       help="emit one JSON object (schema in README)")
    pdiff.set_defaults(func=_cmd_perf_diff)

    pcheck = perf_sub.add_parser(
        "check",
        help="regression-gate the benchmark history (exit 5 on "
             "regression)",
    )
    pcheck.add_argument("--history", default="results/bench/history.jsonl",
                        help="history JSONL appended by the bench suite "
                             "(default: results/bench/history.jsonl)")
    pcheck.add_argument("--window", type=int, default=5, metavar="N",
                        help="rolling baseline size per metric "
                             "(default 5)")
    pcheck.add_argument("--tolerance", type=float, default=0.5,
                        metavar="R",
                        help="allowed relative movement before a gated "
                             "metric regresses (default 0.5 = ±50%%)")
    pcheck.add_argument("--min-delta", type=float, default=0.01,
                        dest="min_delta", metavar="D",
                        help="absolute movement floor — smaller changes "
                             "are noise (default 0.01)")
    pcheck.add_argument("--json", action="store_true",
                        help="emit one JSON object (schema in README)")
    pcheck.set_defaults(func=_cmd_perf_check)

    visit = sub.add_parser("visit", help="visit one site, print its tree")
    visit.add_argument("domain", nargs="?", default="")
    visit.add_argument("--crawl", type=int, default=0, choices=range(4))
    visit.add_argument("--page", type=int, default=0)
    visit.add_argument("--chrome", type=int, default=57)
    visit.add_argument("--blocker", action="store_true")
    visit.add_argument("--frames", type=int, default=6)
    visit.add_argument("--scale", type=float, default=0.03)
    visit.add_argument("--sample-scale", type=float, default=0.002,
                       dest="sample_scale")
    visit.add_argument("--har", default="",
                       help="write the visit's session as a HAR file")
    visit.set_defaults(func=_cmd_visit)

    check = sub.add_parser("check", help="match a URL against the lists")
    check.add_argument("url")
    check.add_argument("--type", default="script")
    check.add_argument("--first-party", default="https://publisher.example/",
                       dest="first_party")
    check.add_argument("--engine", choices=("compiled", "interpreted"),
                       default="compiled",
                       help="which matcher to use (verdicts are identical; "
                            "the compiled index is the scale-ready one)")
    check.set_defaults(func=_cmd_check)

    serve = sub.add_parser(
        "serve",
        help="query the compiled engine + artifact cache as a service",
    )
    serve_sub = serve.add_subparsers(dest="serve_command", required=True)

    def _serve_common(command) -> None:
        command.add_argument("--scale", choices=sorted(LIST_SCALES),
                             default="10k",
                             help="snapshot list scale (rule count)")
        command.add_argument("--seed", type=int, default=2018,
                             help="list-generation seed (part of the "
                                  "snapshot fingerprint)")

    ssnapshot = serve_sub.add_parser(
        "snapshot", help="print the snapshot identity and health"
    )
    _serve_common(ssnapshot)
    ssnapshot.add_argument("--json", action="store_true",
                           help="emit the response envelope instead of "
                                "the human summary")
    ssnapshot.set_defaults(func=_cmd_serve_snapshot)

    squeries = serve_sub.add_parser(
        "queries", help="emit a seeded scripted query mix (JSONL "
                        "request envelopes)"
    )
    _serve_common(squeries)
    squeries.add_argument("--count", type=int, default=200,
                          help="number of queries to generate")
    squeries.add_argument("--query-seed", type=int, default=2018,
                          dest="query_seed",
                          help="seed of the query-mix stream")
    squeries.add_argument("-o", "--out", default="",
                          help="write envelopes here instead of stdout")
    squeries.set_defaults(func=_cmd_serve_queries)

    sscript = serve_sub.add_parser(
        "script", help="answer a query stream on N workers; the "
                       "transcript is byte-identical across runs and "
                       "worker counts (exit 7 on any error envelope)"
    )
    _serve_common(sscript)
    sscript.add_argument("--queries", default="",
                         help="JSONL request envelopes to answer "
                              "(default: a generated --count mix)")
    sscript.add_argument("--count", type=int, default=200,
                         help="generated query count when --queries "
                              "is not given")
    sscript.add_argument("--query-seed", type=int, default=2018,
                         dest="query_seed",
                         help="seed of the generated query mix")
    sscript.add_argument("--workers", type=int, default=1,
                         help="worker threads sharing the snapshot")
    sscript.add_argument("--transcript", default="",
                         help="write the response transcript here "
                              "instead of stdout")
    sscript.set_defaults(func=_cmd_serve_script)

    shttp = serve_sub.add_parser(
        "http", help="bind the stdlib HTTP frontend "
                     "(POST /v1/query, GET /v1/snapshot)"
    )
    _serve_common(shttp)
    shttp.add_argument("--host", default="127.0.0.1")
    shttp.add_argument("--port", type=int, default=8058,
                       help="bind port (0 picks a free one)")
    shttp.set_defaults(func=_cmd_serve_http)

    lists = sub.add_parser("lists", help="dump the synthetic filter lists")
    lists.add_argument("--list", choices=("easylist", "easyprivacy", "both"),
                       default="both")
    lists.add_argument("--scale", choices=sorted(LIST_SCALES), default="",
                       help="instead of the registry lists, emit a "
                            "scale-calibrated synthetic list with this many "
                            "rules (EasyList-shaped mix)")
    lists.add_argument("--seed", type=int, default=2018,
                       help="deterministic seed for --scale generation")
    lists.set_defaults(func=_cmd_lists)

    lint = sub.add_parser("lint", help="run the static analyzers")
    lint.add_argument("--json", action="store_true",
                      help="emit one JSON object per diagnostic instead of "
                           "the rendered report")
    lint.add_argument("--baseline", default="",
                      help="accepted-violation baseline file (default: the "
                           "committed staticlint-baseline.json)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="record current FLOW findings as the accepted "
                           "baseline and exit 0")
    lint.add_argument("--flow-cache-dir", default="results/cache/staticlint",
                      help="facts-cache directory for the whole-program "
                           "self-lint (content-addressed by source hash)")
    lint.add_argument("--no-flow-cache", action="store_true",
                      help="re-parse every file instead of using the "
                           "facts cache")
    lint.add_argument("--self", action="store_true", dest="self_only",
                      help="only lint src/repro's determinism contract "
                           "(the CI gate)")
    lint.add_argument("--no-self", action="store_true",
                      help="skip the determinism self-lint stage")
    lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
