"""Span-tree reconstruction: self-time, hot paths, critical path.

A trace file stores finished spans flat (``repro.obs.recorder``); this
module rebuilds the tree and answers the attribution questions the
ROADMAP's perf work needs answered mechanically:

* **self time** — a span's duration minus its children's durations:
  the ticks this span spent doing its *own* work. Self times partition
  the run exactly: for a well-nested trace they sum to the root's
  cumulative duration, so "accounting replay is 17% of crawl" is a
  query, not folklore (the hypothesis round-trip test pins the
  invariant for arbitrary nesting).
* **flame aggregation** — spans grouped by their *name path* from the
  root (``study→crawl→site→page``), with per-path count, cumulative,
  and self totals. This is the data behind ``repro perf flame``.
* **critical path** — the chain of heaviest children from the root:
  where one unit of speedup moves the whole run.

Everything here is read-only over traces — the OBS-PERF staticlint
zone contract forbids any filesystem write reachable from this module
(persistence belongs to :mod:`repro.obs.history`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.recorder import ObsSummary
from repro.obs.tracer import SpanRecord


@dataclass
class SpanNode:
    """One span in the reconstructed tree.

    Attributes:
        record: The underlying finished span.
        children: Child nodes, in span-creation order.
        path: Span names from the root down to this node.
        self_ticks: Duration minus the children's durations, floored
            at zero (a corrupt trace cannot make totals lie upward).
    """

    record: SpanRecord
    children: list["SpanNode"] = field(default_factory=list)
    path: tuple[str, ...] = ()
    self_ticks: int = 0

    @property
    def name(self) -> str:
        return self.record.name

    @property
    def duration(self) -> int:
        return self.record.duration


@dataclass
class PathStats:
    """Aggregate over every span sharing one name path.

    Attributes:
        path: Span names from the root (``("study", "crawl", "site")``).
        count: Spans on this path.
        total_ticks: Summed cumulative durations.
        self_ticks: Summed self times (the flame's real estate).
        max_ticks: Largest single span on the path.
    """

    path: tuple[str, ...]
    count: int = 0
    total_ticks: int = 0
    self_ticks: int = 0
    max_ticks: int = 0


class SpanTree:
    """The reconstructed span forest of one trace.

    Attributes:
        roots: Top-level nodes (``parent_id == 0``), creation order.
        orphans: Spans whose parent fell past the tracer's retention
            budget; they are grafted in as extra roots so their ticks
            stay accounted, and the count is surfaced so reports can
            qualify attribution claims.
    """

    def __init__(self) -> None:
        self.roots: list[SpanNode] = []
        self.orphans: int = 0
        self._by_id: dict[int, SpanNode] = {}

    @classmethod
    def from_summary(cls, summary: ObsSummary) -> "SpanTree":
        """Rebuild the tree from a summary's retained spans."""
        tree = cls()
        for span in sorted(summary.spans, key=lambda s: s.span_id):
            tree._by_id[span.span_id] = SpanNode(record=span)
        for span_id in sorted(tree._by_id):
            node = tree._by_id[span_id]
            parent = tree._by_id.get(node.record.parent_id)
            if parent is not None:
                parent.children.append(node)
            else:
                if node.record.parent_id != 0:
                    tree.orphans += 1
                tree.roots.append(node)
        for root in tree.roots:
            tree._finalize(root, ())
        return tree

    def _finalize(self, node: SpanNode, prefix: tuple[str, ...]) -> None:
        """Compute paths and self times, iteratively (deep traces —
        hypothesis builds thousand-deep chains — must not hit the
        recursion limit)."""
        stack = [(node, prefix)]
        while stack:
            current, parent_path = stack.pop()
            current.path = parent_path + (current.name,)
            child_ticks = sum(c.duration for c in current.children)
            current.self_ticks = max(0, current.duration - child_ticks)
            for child in current.children:
                stack.append((child, current.path))

    # -- queries -------------------------------------------------------------

    def node(self, span_id: int) -> SpanNode | None:
        """The node for a span id, if retained."""
        return self._by_id.get(span_id)

    def all_nodes(self) -> list[SpanNode]:
        """Every node, in span-creation order."""
        return [self._by_id[span_id] for span_id in sorted(self._by_id)]

    @property
    def total_ticks(self) -> int:
        """Cumulative ticks across the roots (the run's attributable
        wall time in work units)."""
        return sum(root.duration for root in self.roots)

    @property
    def attributed_self_ticks(self) -> int:
        """Summed self times across every node."""
        return sum(node.self_ticks for node in self._by_id.values())

    def attribution(self) -> float:
        """Fraction of root cumulative time attributed to self times.

        Exactly 1.0 for a complete well-nested trace; lower when spans
        fell past the retention budget (their ticks survive only in
        the parents' self time — still attributed, but one level up).
        """
        total = self.total_ticks
        if total == 0:
            return 1.0
        return self.attributed_self_ticks / total

    def aggregate_paths(self) -> list[PathStats]:
        """Per-name-path aggregates, sorted by path (stable output)."""
        stats: dict[tuple[str, ...], PathStats] = {}
        for node in self._by_id.values():
            entry = stats.get(node.path)
            if entry is None:
                entry = stats[node.path] = PathStats(path=node.path)
            entry.count += 1
            entry.total_ticks += node.duration
            entry.self_ticks += node.self_ticks
            entry.max_ticks = max(entry.max_ticks, node.duration)
        return [stats[path] for path in sorted(stats)]

    def critical_path(self) -> list[SpanNode]:
        """The heaviest chain from the heaviest root to a leaf.

        Ties break toward the earliest span id, so the output is
        deterministic for byte-identical traces.
        """
        if not self.roots:
            return []
        cursor = max(
            self.roots, key=lambda n: (n.duration, -n.record.span_id)
        )
        chain = [cursor]
        while cursor.children:
            cursor = max(
                cursor.children,
                key=lambda n: (n.duration, -n.record.span_id),
            )
            chain.append(cursor)
        return chain
