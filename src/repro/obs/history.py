"""The durable benchmark history store and its regression gate.

``BENCH_*.json`` files overwrite in place, so before this module the
repo had no perf *trajectory* — every PR's numbers displaced the last
PR's. Here every bench emission also appends canonical records to
``results/bench/history.jsonl``: one line per numeric metric, carrying
the bench name, dotted metric path, value, git sha, and a hardware
fingerprint, so runs are only ever compared against runs from the same
kind of machine.

The regression gate (``repro perf check``) groups the history per
``(bench, metric, hardware, context)``, takes the latest record per
group, and compares it against the *median* of a rolling window of
prior records. Direction is inferred from the metric name
(``*_seconds`` regress upward, ``*speedup*`` regress downward;
unclassifiable metrics — table values, counts — are never gated). A
regression means the latest value moved past the tolerance band, and
the CLI exits 5 so CI can gate on it.

This is the one sanctioned write path of the perf observatory: the
OBS-PERF staticlint zone contract keeps ``repro.obs.perf`` and
``repro.obs.critical_path`` free of filesystem writes, and masks
``fs-write`` at this module's boundary.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import statistics
import subprocess
from dataclasses import dataclass, field
from pathlib import Path

HISTORY_VERSION = 1

#: Default location of the append-only history, next to BENCH_*.json.
DEFAULT_HISTORY_PATH = Path("results") / "bench" / "history.jsonl"


# -- provenance -------------------------------------------------------------


def hardware_fingerprint() -> dict:
    """A canonical description of the machine benches ran on."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def fingerprint_key(hardware: dict | None = None) -> str:
    """A short stable key for one hardware fingerprint (12 hex chars
    of its canonical-JSON sha256) — the history grouping key and the
    CI cache key."""
    hardware = hardware if hardware is not None else hardware_fingerprint()
    canonical = json.dumps(hardware, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def git_sha(root: str | Path | None = None) -> str:
    """The current commit sha, or ``"unknown"``.

    A missing git binary, a non-repo directory, or any git failure
    must never crash a bench run — provenance degrades, benches don't.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(root) if root is not None else None,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    if out.returncode != 0 or not sha:
        return "unknown"
    return sha


# -- records ----------------------------------------------------------------


@dataclass(frozen=True)
class BenchRecord:
    """One (bench, metric) measurement with provenance.

    Attributes:
        bench: Bench name (``parallel``, ``faults``, …).
        metric: Dotted path of the numeric leaf inside the bench's
            payload (``workers_4_seconds``, ``hardware.cpu_count`` is
            excluded — provenance keys never become metrics).
        value: The measured number.
        git_sha: Commit the bench ran at (``"unknown"`` outside git).
        hardware: The machine's fingerprint key.
        context: Free-form comparability tag (the bench preset name);
            records only compare within one context.
    """

    bench: str
    metric: str
    value: float
    git_sha: str = "unknown"
    hardware: str = ""
    context: str = ""

    def group_key(self) -> tuple[str, str, str, str]:
        """Records compare only within this key."""
        return (self.bench, self.metric, self.hardware, self.context)

    def to_json(self) -> dict:
        return {
            "version": HISTORY_VERSION,
            "bench": self.bench,
            "metric": self.metric,
            "value": self.value,
            "git_sha": self.git_sha,
            "hardware": self.hardware,
            "context": self.context,
        }


#: Payload keys that are provenance, not measurements.
_NON_METRIC_KEYS = frozenset({"git_sha", "hardware", "hardware_key"})


def flatten_metrics(payload: dict, prefix: str = "") -> dict[str, float]:
    """Every numeric leaf of a bench payload, keyed by dotted path.

    Booleans and strings are not metrics; lists index their elements
    (``rows.0.total_sockets``). Provenance keys are skipped at the
    top level.
    """
    out: dict[str, float] = {}
    for key in sorted(payload):
        if not prefix and key in _NON_METRIC_KEYS:
            continue
        dotted = f"{prefix}{key}"
        value = payload[key]
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            out[dotted] = value
        elif isinstance(value, dict):
            out.update(flatten_metrics(value, prefix=f"{dotted}."))
        elif isinstance(value, (list, tuple)):
            indexed = {str(i): item for i, item in enumerate(value)}
            out.update(flatten_metrics(indexed, prefix=f"{dotted}."))
    return out


def records_for_payload(
    bench: str,
    payload: dict,
    sha: str = "unknown",
    hardware: str = "",
    context: str = "",
) -> list[BenchRecord]:
    """One :class:`BenchRecord` per numeric leaf of ``payload``."""
    flat = flatten_metrics(payload)
    return [
        BenchRecord(bench=bench, metric=metric, value=flat[metric],
                    git_sha=sha, hardware=hardware, context=context)
        for metric in sorted(flat)
    ]


def append_history(path: str | Path, records: list[BenchRecord]) -> int:
    """Append records to the history JSONL; returns the count.

    Append-only by design — the longitudinal record is the point.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.to_json(),
                                    separators=(",", ":"),
                                    sort_keys=True))
            handle.write("\n")
    return len(records)


def read_history(path: str | Path) -> tuple[list[BenchRecord], int]:
    """Parse the history file; returns (records, skipped lines).

    Unparseable or incomplete lines are skipped and counted, never
    fatal: one corrupt append must not wedge the CI gate forever.
    """
    records: list[BenchRecord] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                raw = json.loads(line)
                record = BenchRecord(
                    bench=raw["bench"], metric=raw["metric"],
                    value=float(raw["value"]),
                    git_sha=raw.get("git_sha", "unknown"),
                    hardware=raw.get("hardware", ""),
                    context=raw.get("context", ""),
                )
            except (ValueError, TypeError, KeyError):
                skipped += 1
                continue
            records.append(record)
    return records, skipped


# -- the regression gate ----------------------------------------------------

LOWER_IS_BETTER = "lower"
HIGHER_IS_BETTER = "higher"

#: Metric-name fragments that mark a cost (regresses upward).
_LOWER_MARKERS = ("overhead", "latency", "p99", "p95")
_LOWER_SUFFIXES = ("_seconds", "_ns", "_ms", "_bytes", "_kb", "seconds")
#: …and a capability (regresses downward).
_HIGHER_MARKERS = ("speedup", "throughput", "qps", "ops_per_sec")


def metric_direction(metric: str) -> str | None:
    """Which way this metric regresses, or ``None`` when the name
    carries no perf semantics (study statistics, counts, budgets —
    those are correctness-tested elsewhere, never perf-gated).

    ``_pct`` metrics are never gated: a percentage is already a ratio
    (typically of two small timings), so ratio-gating it compounds the
    noise — a 4%-vs-9% overhead reading is the same handful of
    milliseconds jittering, not a regression. Every ``_pct`` metric the
    benches export carries its own absolute budget assert at the source;
    that assert, not the history gate, is its contract."""
    leaf = metric.rsplit(".", 1)[-1]
    if leaf.startswith("budget") or leaf.endswith(("_budget_pct", "_budget")):
        return None
    if leaf.endswith("_pct"):
        return None
    if any(marker in leaf for marker in _HIGHER_MARKERS):
        return HIGHER_IS_BETTER
    if leaf.endswith(_LOWER_SUFFIXES):
        return LOWER_IS_BETTER
    if any(marker in leaf for marker in _LOWER_MARKERS):
        return LOWER_IS_BETTER
    return None


@dataclass(frozen=True)
class Regression:
    """One gated metric that moved past tolerance.

    Attributes:
        record: The offending (latest) record.
        baseline: Median of the rolling window it was compared to.
        window: How many prior records the baseline summarizes.
        ratio: ``value / baseline`` (guarded against zero).
        direction: Which way this metric is supposed to move.
    """

    record: BenchRecord
    baseline: float
    window: int
    ratio: float
    direction: str

    def describe(self) -> str:
        arrow = "↑" if self.direction == LOWER_IS_BETTER else "↓"
        return (
            f"{self.record.bench}/{self.record.metric} "
            f"[{self.record.hardware or 'unknown-hw'}"
            f"{'/' + self.record.context if self.record.context else ''}]: "
            f"{self.record.value:g} vs baseline {self.baseline:g} "
            f"(n={self.window}) — {self.ratio:.2f}x {arrow}"
        )


@dataclass
class HistoryCheck:
    """The gate's verdict over one history file.

    Attributes:
        regressions: Metrics past tolerance, stable order.
        groups: Distinct (bench, metric, hardware, context) groups.
        compared: Groups with enough prior records to gate.
        ungated: Groups skipped for lack of direction semantics.
        fresh: Groups with no prior record (first appearance).
        skipped_lines: Corrupt history lines ignored.
    """

    regressions: list[Regression] = field(default_factory=list)
    groups: int = 0
    compared: int = 0
    ungated: int = 0
    fresh: int = 0
    skipped_lines: int = 0

    @property
    def ok(self) -> bool:
        return not self.regressions


def check_history(
    records: list[BenchRecord],
    window: int = 5,
    tolerance: float = 0.5,
    min_delta: float = 0.01,
) -> HistoryCheck:
    """Compare each group's latest record to its rolling baseline.

    Args:
        records: History records in file (append) order — order *is*
            recency; the store keeps no wall-clock timestamps so that
            appending stays byte-deterministic for same-seed runs.
        window: Baseline = median of up to this many records
            immediately before the latest.
        tolerance: Allowed relative movement (0.5 = ±50%) before a
            directional metric counts as regressed.
        min_delta: Absolute floor — movements smaller than this are
            noise regardless of ratio (guards near-zero baselines).
    """
    grouped: dict[tuple[str, str, str, str], list[BenchRecord]] = {}
    for record in records:
        grouped.setdefault(record.group_key(), []).append(record)

    result = HistoryCheck(groups=len(grouped))
    for key in sorted(grouped):
        series = grouped[key]
        latest = series[-1]
        prior = series[:-1][-window:]
        if not prior:
            result.fresh += 1
            continue
        direction = metric_direction(latest.metric)
        if direction is None:
            result.ungated += 1
            continue
        result.compared += 1
        baseline = statistics.median(r.value for r in prior)
        delta = latest.value - baseline
        if abs(delta) < min_delta:
            continue
        ratio = latest.value / baseline if baseline else float("inf")
        regressed = (
            delta > abs(baseline) * tolerance
            if direction == LOWER_IS_BETTER
            else -delta > abs(baseline) * tolerance
        )
        if regressed:
            result.regressions.append(Regression(
                record=latest, baseline=baseline, window=len(prior),
                ratio=ratio, direction=direction,
            ))
    return result


def render_check(check: HistoryCheck) -> str:
    """The gate verdict as text (one line per regression)."""
    head = (
        f"benchmark history: {check.groups} metric group(s), "
        f"{check.compared} gated, {check.ungated} without perf "
        f"semantics, {check.fresh} first-seen"
        + (f", {check.skipped_lines} corrupt line(s) skipped"
           if check.skipped_lines else "")
    )
    if check.ok:
        return f"{head}\nno regressions"
    lines = [head, f"{len(check.regressions)} REGRESSION(S):"]
    lines.extend(f"  {r.describe()}" for r in check.regressions)
    return "\n".join(lines)


def check_json(check: HistoryCheck) -> dict:
    """The gate verdict as one JSON-encodable object (schema in
    README: ``repro perf check --json``)."""
    return {
        "ok": check.ok,
        "groups": check.groups,
        "compared": check.compared,
        "ungated": check.ungated,
        "fresh": check.fresh,
        "skipped_lines": check.skipped_lines,
        "regressions": [
            {
                "bench": r.record.bench,
                "metric": r.record.metric,
                "hardware": r.record.hardware,
                "context": r.record.context,
                "value": r.record.value,
                "baseline": r.baseline,
                "window": r.window,
                "ratio": round(r.ratio, 4),
                "direction": r.direction,
                "git_sha": r.record.git_sha,
            }
            for r in check.regressions
        ],
    }
