"""Trace analytics: the flame report and trace diffing.

The consumer side of the TRACE_VERSION-1 JSONL files that
``repro study --trace`` exports. Two tools:

* :func:`build_flame` / :func:`render_flame` — per-span-path
  attribution (cumulative vs. self ticks, top-K hot paths by self
  time, the critical path) for ``repro perf flame``;
* :func:`diff_traces` / :func:`render_diff` — align two traces by
  span-name path and report per-path tick/count deltas plus metric
  counter deltas, with significance thresholds, for
  ``repro perf diff``. Byte-identical traces diff to *empty* — the
  property CI leans on when it compares 1-worker vs 4-worker runs.

This module is **read-only over traces** (OBS-PERF zone contract): it
renders strings and returns data; writing belongs to the caller and
durable history to :mod:`repro.obs.history`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.critical_path import PathStats, SpanTree
from repro.obs.recorder import ObsSummary

#: Rendered name for a span path, e.g. ``study→crawl→site→page``.
PATH_SEP = "→"


def format_path(path: tuple[str, ...]) -> str:
    """One span path as a human-readable arrow chain."""
    return PATH_SEP.join(path) if path else "(root)"


# -- flame ------------------------------------------------------------------


@dataclass
class FlameRow:
    """One span path's share of the run.

    Attributes:
        path: Span names from the root.
        count: Spans on the path.
        total_ticks: Cumulative ticks (includes descendants).
        self_ticks: Ticks attributed to the path itself.
        pct_total / pct_self: The two shares of root wall time.
    """

    path: tuple[str, ...]
    count: int
    total_ticks: int
    self_ticks: int
    pct_total: float
    pct_self: float


@dataclass
class FlameReport:
    """Everything ``repro perf flame`` shows.

    Attributes:
        meta: The trace's identity (preset, seed, …).
        total_ticks: Root cumulative ticks (the 100% mark).
        rows: Every path, sorted hottest-self first.
        critical_path: (path, cumulative ticks) pairs from the root
            down the heaviest children.
        attribution: Fraction of root time reaching self times —
            1.0 for a complete trace (the acceptance bar is ≥0.95).
        orphans / dropped_spans: Retention-budget casualties, so the
            report can qualify its own completeness.
    """

    meta: dict = field(default_factory=dict)
    total_ticks: int = 0
    rows: list[FlameRow] = field(default_factory=list)
    critical_path: list[tuple[tuple[str, ...], int]] = field(
        default_factory=list
    )
    attribution: float = 1.0
    orphans: int = 0
    dropped_spans: int = 0


def build_flame(summary: ObsSummary) -> FlameReport:
    """Aggregate a trace summary into a flame report."""
    tree = SpanTree.from_summary(summary)
    total = max(tree.total_ticks, 1)
    rows = [
        FlameRow(
            path=stats.path,
            count=stats.count,
            total_ticks=stats.total_ticks,
            self_ticks=stats.self_ticks,
            pct_total=100.0 * stats.total_ticks / total,
            pct_self=100.0 * stats.self_ticks / total,
        )
        for stats in tree.aggregate_paths()
    ]
    rows.sort(key=lambda r: (-r.self_ticks, r.path))
    return FlameReport(
        meta=dict(summary.meta),
        total_ticks=tree.total_ticks,
        rows=rows,
        critical_path=[
            (node.path, node.duration) for node in tree.critical_path()
        ],
        attribution=tree.attribution(),
        orphans=tree.orphans,
        dropped_spans=summary.dropped_spans,
    )


def _table(rows: list[list[str]], header: list[str]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_flame(report: FlameReport, top: int = 30) -> str:
    """The flame report as fixed-width text (hottest ``top`` paths)."""
    meta_bits = " ".join(
        f"{k}={report.meta[k]}" for k in sorted(report.meta)
        if k != "version"
    )
    qualifier = ""
    if report.orphans or report.dropped_spans:
        qualifier = (f" ({report.orphans} orphan(s), "
                     f"{report.dropped_spans:,} dropped span(s))")
    sections = [
        f"trace: {meta_bits or '(no metadata)'} — "
        f"{report.total_ticks:,} root ticks, "
        f"{100.0 * report.attribution:.1f}% attributed to self times"
        + qualifier,
    ]
    body = [
        [
            format_path(row.path),
            str(row.count),
            f"{row.total_ticks:,}",
            f"{row.pct_total:.1f}",
            f"{row.self_ticks:,}",
            f"{row.pct_self:.1f}",
        ]
        for row in report.rows[:top]
    ]
    shown = min(top, len(report.rows))
    sections.append(
        f"HOT PATHS (top {shown} of {len(report.rows)}, by self time)\n"
        + _table(body, ["Path", "Spans", "Ticks", "% run",
                        "Self", "% self"])
    )
    if report.critical_path:
        crit = [
            [format_path(path), f"{ticks:,}"]
            for path, ticks in report.critical_path
        ]
        sections.append("CRITICAL PATH (heaviest child chain)\n"
                        + _table(crit, ["Path", "Ticks"]))
    return "\n\n".join(sections)


def flame_json(report: FlameReport, top: int | None = None) -> dict:
    """The flame report as one JSON-encodable object (schema in
    README: ``repro perf flame --json``)."""
    rows = report.rows if top is None else report.rows[:top]
    return {
        "meta": report.meta,
        "total_ticks": report.total_ticks,
        "attribution": round(report.attribution, 6),
        "orphans": report.orphans,
        "dropped_spans": report.dropped_spans,
        "paths": [
            {
                "path": list(row.path),
                "count": row.count,
                "total_ticks": row.total_ticks,
                "self_ticks": row.self_ticks,
                "pct_total": round(row.pct_total, 3),
                "pct_self": round(row.pct_self, 3),
            }
            for row in rows
        ],
        "critical_path": [
            {"path": list(path), "ticks": ticks}
            for path, ticks in report.critical_path
        ],
    }


# -- diff -------------------------------------------------------------------


@dataclass
class PathDelta:
    """One span path whose timing or span count moved between traces."""

    path: tuple[str, ...]
    count_a: int
    count_b: int
    ticks_a: int
    ticks_b: int
    self_a: int
    self_b: int

    @property
    def delta_ticks(self) -> int:
        return self.ticks_b - self.ticks_a

    @property
    def delta_pct(self) -> float:
        return 100.0 * self.delta_ticks / max(self.ticks_a, 1)


@dataclass
class CounterDelta:
    """One metrics counter whose value moved between traces."""

    name: str
    value_a: int
    value_b: int

    @property
    def delta(self) -> int:
        return self.value_b - self.value_a


@dataclass
class TraceDiff:
    """The aligned comparison of two traces.

    Attributes:
        meta_a / meta_b: The two traces' identities.
        ticks_a / ticks_b: Root cumulative ticks on each side.
        paths: Significant per-path deltas, sorted by |delta| desc.
        counters: Significant counter deltas, sorted by |delta| desc.
        suppressed: Deltas filtered out by the significance
            thresholds (so "empty" never silently hides movement).
    """

    meta_a: dict = field(default_factory=dict)
    meta_b: dict = field(default_factory=dict)
    ticks_a: int = 0
    ticks_b: int = 0
    paths: list[PathDelta] = field(default_factory=list)
    counters: list[CounterDelta] = field(default_factory=list)
    suppressed: int = 0

    @property
    def is_empty(self) -> bool:
        """No reported deltas at all (same-seed traces must hit this)."""
        return not self.paths and not self.counters


def diff_traces(
    a: ObsSummary,
    b: ObsSummary,
    min_ticks: int = 0,
    min_pct: float = 0.0,
    min_count: int = 0,
) -> TraceDiff:
    """Align two summaries by span path and compute the deltas.

    Args:
        a / b: The baseline and candidate summaries.
        min_ticks: Report a path only when |Δ cumulative ticks| is at
            least this (0 = any nonzero delta or count change).
        min_pct: …and |Δ| is at least this percent of the baseline.
        min_count: Report a counter only when |Δ| is at least this.
    """
    tree_a = SpanTree.from_summary(a)
    tree_b = SpanTree.from_summary(b)
    paths_a = {stats.path: stats for stats in tree_a.aggregate_paths()}
    paths_b = {stats.path: stats for stats in tree_b.aggregate_paths()}

    deltas: list[PathDelta] = []
    suppressed = 0
    for path in sorted(set(paths_a) | set(paths_b)):
        stat_a = paths_a.get(path, PathStats(path=path))
        stat_b = paths_b.get(path, PathStats(path=path))
        if (stat_a.count == stat_b.count
                and stat_a.total_ticks == stat_b.total_ticks
                and stat_a.self_ticks == stat_b.self_ticks):
            continue
        delta = PathDelta(
            path=path,
            count_a=stat_a.count, count_b=stat_b.count,
            ticks_a=stat_a.total_ticks, ticks_b=stat_b.total_ticks,
            self_a=stat_a.self_ticks, self_b=stat_b.self_ticks,
        )
        significant = (
            abs(delta.delta_ticks) >= min_ticks
            and abs(delta.delta_pct) >= min_pct
        ) or delta.count_a != delta.count_b
        if significant:
            deltas.append(delta)
        else:
            suppressed += 1
    deltas.sort(key=lambda d: (-abs(d.delta_ticks), d.path))

    counter_deltas: list[CounterDelta] = []
    for name in sorted(set(a.counters) | set(b.counters)):
        value_a = a.counters.get(name, 0)
        value_b = b.counters.get(name, 0)
        if value_a == value_b:
            continue
        if abs(value_b - value_a) >= min_count:
            counter_deltas.append(CounterDelta(name, value_a, value_b))
        else:
            suppressed += 1
    counter_deltas.sort(key=lambda d: (-abs(d.delta), d.name))

    return TraceDiff(
        meta_a=dict(a.meta), meta_b=dict(b.meta),
        ticks_a=tree_a.total_ticks, ticks_b=tree_b.total_ticks,
        paths=deltas, counters=counter_deltas, suppressed=suppressed,
    )


def render_diff(diff: TraceDiff, top: int = 30) -> str:
    """The trace diff as fixed-width text."""

    def identity(meta: dict) -> str:
        return " ".join(f"{k}={meta[k]}" for k in sorted(meta)
                        if k != "version") or "(no metadata)"

    head = (f"a: {identity(diff.meta_a)} — {diff.ticks_a:,} ticks\n"
            f"b: {identity(diff.meta_b)} — {diff.ticks_b:,} ticks")
    if diff.is_empty:
        note = (f" ({diff.suppressed} sub-threshold delta(s) suppressed)"
                if diff.suppressed else "")
        return f"{head}\n\nno differences{note}"
    sections = [head]
    if diff.paths:
        body = [
            [
                format_path(d.path),
                f"{d.ticks_a:,}", f"{d.ticks_b:,}",
                f"{d.delta_ticks:+,}", f"{d.delta_pct:+.1f}",
                f"{d.count_b - d.count_a:+d}",
                f"{d.self_b - d.self_a:+,}",
            ]
            for d in diff.paths[:top]
        ]
        sections.append(
            f"SPAN PATHS ({len(diff.paths)} changed)\n"
            + _table(body, ["Path", "Ticks a", "Ticks b", "Δ ticks",
                            "Δ %", "Δ spans", "Δ self"])
        )
    if diff.counters:
        body = [
            [d.name, f"{d.value_a:,}", f"{d.value_b:,}", f"{d.delta:+,}"]
            for d in diff.counters[:top]
        ]
        sections.append(
            f"COUNTERS ({len(diff.counters)} changed)\n"
            + _table(body, ["Counter", "a", "b", "Δ"])
        )
    if diff.suppressed:
        sections.append(f"{diff.suppressed} sub-threshold delta(s) "
                        f"suppressed")
    return "\n\n".join(sections)


def diff_json(diff: TraceDiff) -> dict:
    """The trace diff as one JSON-encodable object (schema in README:
    ``repro perf diff --json``)."""
    return {
        "meta_a": diff.meta_a,
        "meta_b": diff.meta_b,
        "ticks_a": diff.ticks_a,
        "ticks_b": diff.ticks_b,
        "empty": diff.is_empty,
        "suppressed": diff.suppressed,
        "paths": [
            {
                "path": list(d.path),
                "count_a": d.count_a, "count_b": d.count_b,
                "ticks_a": d.ticks_a, "ticks_b": d.ticks_b,
                "self_a": d.self_a, "self_b": d.self_b,
                "delta_ticks": d.delta_ticks,
                "delta_pct": round(d.delta_pct, 3),
            }
            for d in diff.paths
        ],
        "counters": [
            {"name": d.name, "a": d.value_a, "b": d.value_b,
             "delta": d.delta}
            for d in diff.counters
        ],
    }
