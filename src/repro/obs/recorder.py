"""Trace recording: CDP-event accounting and the trace file format.

:class:`TraceRecorder` subscribes on an :class:`~repro.cdp.bus.EventBus`
and tallies every published event by CDP method (optionally retaining a
compact ``(method, request_id, tick)`` sequence for ordering tests).

The trace file is JSONL (one self-describing record per line, compact
separators, sorted keys — byte-identical across same-seed runs):

* ``{"kind": "meta", ...}`` — preset name, seed, tick total, version;
* ``{"kind": "span", ...}`` — one line per retained finished span;
* ``{"kind": "agg", ...}`` — per-span-name aggregate (never truncated);
* ``{"kind": "event", ...}`` — one line per structured obs event;
* ``{"kind": "counter", ...}`` / ``{"kind": "hist", ...}`` — the final
  metrics snapshot.

``repro obs <trace>`` re-reads this file into an :class:`ObsSummary`
and renders the same per-stage report the live study prints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.cdp.bus import EventBus
from repro.cdp.events import CdpEvent
from repro.obs.tracer import ObsEvent, SpanAggregate, SpanRecord
from repro.util.atomicio import atomic_write
from repro.util.serialization import read_jsonl, write_jsonl

TRACE_VERSION = 1


class TraceRecorder:
    """Counts (and optionally sequences) every event on a bus."""

    def __init__(
        self,
        bus: EventBus | None = None,
        clock=None,
        keep_events: bool = False,
    ) -> None:
        self.by_method: dict[str, int] = {}
        self.sequence: list[tuple[str, str, int]] = []
        self.keep_events = keep_events
        self._clock = clock
        self._unsubscribe = None
        if bus is not None:
            self.attach(bus)

    def attach(self, bus: EventBus) -> None:
        """Start accounting events published on ``bus``."""
        self.detach()
        self._unsubscribe = bus.subscribe(self._on_event)

    def detach(self) -> None:
        """Stop accounting."""
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def _on_event(self, event: CdpEvent) -> None:
        method = event.METHOD
        self.by_method[method] = self.by_method.get(method, 0) + 1
        tick = self._clock.tick() if self._clock is not None else 0
        if self.keep_events:
            request_id = getattr(event, "request_id", "")
            self.sequence.append((method, request_id, tick))

    @property
    def total(self) -> int:
        """Total events accounted."""
        return sum(self.by_method.values())

    def events_for(self, request_id: str) -> list[str]:
        """Methods recorded for one request id, in publication order."""
        return [m for m, rid, _ in self.sequence if rid == request_id]


@dataclass
class ObsSummary:
    """The obs layer's final state, embeddable and serializable.

    Attributes:
        meta: Identity of the run (preset name, seed, …).
        ticks: Final tick-clock reading.
        spans: Retained finished spans (capped at the tracer budget).
        aggregates: Per-name span totals (complete).
        dropped_spans: Spans finished beyond the retention budget.
        events: The structured event log.
        counters / histograms: Final metrics snapshot.
    """

    meta: dict[str, Any] = field(default_factory=dict)
    ticks: int = 0
    spans: list[SpanRecord] = field(default_factory=list)
    aggregates: list[SpanAggregate] = field(default_factory=list)
    dropped_spans: int = 0
    events: list[ObsEvent] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    histograms: dict[str, dict[str, Any]] = field(default_factory=dict)

    def spans_named(self, name: str) -> list[SpanRecord]:
        """Retained spans with the given name, in creation order."""
        return [span for span in self.spans if span.name == name]

    def counters_with_prefix(self, prefix: str) -> dict[str, int]:
        """Counters under ``prefix.``, keyed by the remainder."""
        cut = len(prefix) + 1
        return {name[cut:]: value for name, value in self.counters.items()
                if name.startswith(prefix + ".")}


def write_trace(path: str | Path, summary: ObsSummary) -> int:
    """Write a summary as a trace JSONL file; returns the line count."""

    def records():
        yield {"kind": "meta", "version": TRACE_VERSION,
               "ticks": summary.ticks,
               "dropped_spans": summary.dropped_spans, **summary.meta}
        for span in summary.spans:
            yield {"kind": "span", "id": span.span_id,
                   "parent": span.parent_id, "name": span.name,
                   "depth": span.depth, "start": span.start,
                   "end": span.end, "attrs": span.attrs}
        for aggregate in sorted(summary.aggregates, key=lambda a: a.name):
            yield {"kind": "agg", "name": aggregate.name,
                   "count": aggregate.count, "ticks": aggregate.total_ticks}
        for event in summary.events:
            yield {"kind": "event", "tick": event.tick, "name": event.name,
                   "span": event.span_id, "attrs": event.attrs}
        for name, value in sorted(summary.counters.items()):
            yield {"kind": "counter", "name": name, "value": value}
        for name, record in sorted(summary.histograms.items()):
            yield {"kind": "hist", "name": name, **record}

    return write_jsonl(path, records())


def write_metrics(path: str | Path, summary: ObsSummary) -> None:
    """Write the metrics snapshot as one sorted, stable JSON document."""
    payload = {"counters": summary.counters,
               "histograms": summary.histograms, **summary.meta}
    atomic_write(
        Path(path),
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
    )


def read_trace(path: str | Path) -> ObsSummary:
    """Parse a trace JSONL file back into an :class:`ObsSummary`.

    Raises:
        ValueError: When the file has no ``meta`` line or an unknown
            record kind (corrupt traces fail loudly).
    """
    summary = ObsSummary()
    saw_meta = False
    for record in read_jsonl(path):
        kind = record.get("kind")
        if kind == "meta":
            saw_meta = True
            summary.ticks = record.get("ticks", 0)
            summary.dropped_spans = record.get("dropped_spans", 0)
            summary.meta = {k: v for k, v in record.items()
                            if k not in ("kind", "ticks", "dropped_spans")}
        elif kind == "span":
            summary.spans.append(SpanRecord(
                span_id=record["id"], parent_id=record["parent"],
                name=record["name"], start=record["start"],
                end=record["end"], depth=record.get("depth", 0),
                attrs=record.get("attrs", {}),
            ))
        elif kind == "agg":
            summary.aggregates.append(SpanAggregate(
                name=record["name"], count=record["count"],
                total_ticks=record["ticks"],
            ))
        elif kind == "event":
            summary.events.append(ObsEvent(
                tick=record["tick"], name=record["name"],
                span_id=record.get("span", 0),
                attrs=record.get("attrs", {}),
            ))
        elif kind == "counter":
            summary.counters[record["name"]] = record["value"]
        elif kind == "hist":
            summary.histograms[record["name"]] = {
                k: v for k, v in record.items() if k not in ("kind", "name")
            }
        else:
            raise ValueError(f"unknown trace record kind: {kind!r}")
    if not saw_meta:
        raise ValueError(f"{path}: not a repro trace (no meta record)")
    return summary
