"""Rendering the per-stage timing / attribution report.

One renderer serves both surfaces: the ``OBSERVABILITY`` section of the
live study report (from the in-memory :class:`ObsSummary` embedded in
``StudyResult``) and ``repro obs <trace>`` (from a summary re-read off
disk). Durations are deterministic ticks — instrumented work units —
not wall seconds; their *shares* are what a perf PR compares.
"""

from __future__ import annotations

from repro.obs.recorder import ObsSummary

# Span names that form the report's stage rows, in pipeline order.
_STAGE_NAMES = ("build-web", "crawl", "site", "page", "analyze", "lint")


def _fmt(rows: list[list[str]], header: list[str]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def stage_rows(summary: ObsSummary, top: int | None = None) -> list[dict]:
    """The per-stage rows as plain data: name, span count, ticks, and
    percent of the run. Pipeline order by default; with ``top`` the
    rows are the N heaviest stages, largest first."""
    total = max(summary.ticks, 1)
    by_name = {a.name: a for a in summary.aggregates}
    names = [n for n in _STAGE_NAMES if n in by_name]
    names += sorted(set(by_name) - set(names) - {"study"})
    rows = [
        {
            "stage": name,
            "spans": by_name[name].count,
            "ticks": by_name[name].total_ticks,
            "pct": round(100.0 * by_name[name].total_ticks / total, 3),
        }
        for name in names
    ]
    if top is not None:
        rows = sorted(rows, key=lambda r: (-r["ticks"], r["stage"]))[:top]
    return rows


def _render_stages(summary: ObsSummary, top: int | None = None) -> str:
    body = [
        [row["stage"], str(row["spans"]), f"{row['ticks']:,}",
         f"{row['pct']:.1f}"]
        for row in stage_rows(summary, top)
    ]
    return _fmt(body, ["Stage", "Spans", "Ticks", "% of run"])


def _render_crawls(summary: ObsSummary) -> str:
    body = []
    for span in summary.spans_named("crawl"):
        attrs = span.attrs
        body.append([
            str(attrs.get("index", "?")),
            str(attrs.get("chrome", "?")),
            str(attrs.get("sites", 0)),
            str(attrs.get("pages", 0)),
            str(attrs.get("sockets", 0)),
            str(attrs.get("events", 0)),
            f"{span.duration:,}",
        ])
    if not body:
        return ""
    return _fmt(body, ["Crawl", "Chrome", "Sites", "Pages", "Sockets",
                       "CDP events", "Ticks"])


def _render_counters(summary: ObsSummary) -> str:
    groups = (
        ("cdp", "CDP event bus"),
        ("filters", "Filter engine"),
        ("webrequest", "webRequest dispatch"),
        ("crawler", "Crawler"),
        ("crawl.errors", "Crawl error taxonomy"),
        ("faults", "Injected faults"),
        ("analysis", "Analysis"),
    )
    sections = []
    for prefix, title in groups:
        counts = summary.counters_with_prefix(prefix)
        if not counts:
            continue
        body = [[name, f"{value:,}"] for name, value in sorted(counts.items())]
        sections.append(f"{title}:\n" + _fmt(body, ["Metric", "Count"]))
    return "\n\n".join(sections)


def _render_histograms(summary: ObsSummary) -> str:
    if not summary.histograms:
        return ""
    body = []
    for name, record in sorted(summary.histograms.items()):
        count = record.get("count", 0)
        total = record.get("sum", 0.0)
        mean = total / count if count else 0.0
        body.append([
            name, f"{count:,}", f"{mean:.2f}",
            str(record.get("min")), str(record.get("max")),
        ])
    return _fmt(body, ["Histogram", "Observations", "Mean", "Min", "Max"])


def obs_summary_json(summary: ObsSummary, top: int | None = None) -> dict:
    """The whole summary as one JSON-encodable object — the
    ``repro obs --json`` schema documented in the README. ``top``
    limits the stage rows to the N heaviest (the full counter and
    histogram snapshots are always complete)."""
    return {
        "meta": summary.meta,
        "ticks": summary.ticks,
        "spans_retained": len(summary.spans),
        "dropped_spans": summary.dropped_spans,
        "events": len(summary.events),
        "stages": stage_rows(summary, top),
        "crawls": [
            {"attrs": span.attrs, "ticks": span.duration}
            for span in summary.spans_named("crawl")
        ],
        "counters": summary.counters,
        "histograms": summary.histograms,
    }


def render_obs_summary(summary: ObsSummary, top: int | None = None) -> str:
    """The full observability report as fixed-width text."""
    meta = summary.meta
    header_bits = [f"{k}={meta[k]}" for k in sorted(meta) if k != "version"]
    dropped = (f"; {summary.dropped_spans:,} span(s) beyond retention budget"
               if summary.dropped_spans else "")
    sections = [
        f"run: {' '.join(header_bits) or '(no metadata)'} — "
        f"{summary.ticks:,} ticks, {len(summary.spans):,} spans retained, "
        f"{len(summary.events):,} obs events{dropped}",
        "PER-STAGE TIMING\n" + _render_stages(summary, top),
    ]
    crawls = _render_crawls(summary)
    if crawls:
        sections.append("PER-CRAWL ATTRIBUTION\n" + crawls)
    counters = _render_counters(summary)
    if counters:
        sections.append("COUNTERS\n" + counters)
    histograms = _render_histograms(summary)
    if histograms:
        sections.append("HISTOGRAMS\n" + histograms)
    return "\n\n".join(sections)
