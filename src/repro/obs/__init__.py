"""Observability for the study pipeline: spans, metrics, trace export.

The paper's measurement campaign is only trustworthy if we know what
the crawler actually observed — which CDP events fired, which sockets
were attributed, which filter rules were exercised. This package gives
every stage of ``repro study`` a verifiable audit trail:

* :class:`~repro.obs.tracer.Tracer` — nested spans
  (study → crawl → site → page) plus a structured event log;
* :class:`~repro.obs.metrics.MetricsRegistry` — counters and
  histograms harvested from the filter engine, CDP bus, crawler, and
  ``chrome.webRequest`` simulation;
* :class:`~repro.obs.recorder.TraceRecorder` — per-method CDP event
  accounting and the JSONL trace file format;
* :func:`~repro.obs.report.render_obs_summary` — the per-stage
  timing/attribution report;
* :mod:`~repro.obs.critical_path` / :mod:`~repro.obs.perf` — the
  analytics layer over exported traces (self-time attribution, flame
  aggregation, critical path, trace diffing) behind ``repro perf``;
* :mod:`~repro.obs.history` — the durable benchmark history store and
  its rolling-baseline regression gate (``repro perf check``).

Everything runs on the deterministic tick clock
(:mod:`repro.util.obsclock`), so two same-seed studies produce
byte-identical traces — the property the trace round-trip tests pin.

The :class:`Obs` facade bundles one clock, tracer, and registry; pass
it (or ``None`` to opt out) down the pipeline.
"""

from __future__ import annotations

from repro.obs.critical_path import PathStats, SpanNode, SpanTree
from repro.obs.history import (
    BenchRecord,
    HistoryCheck,
    append_history,
    check_history,
    check_json,
    fingerprint_key,
    git_sha,
    hardware_fingerprint,
    read_history,
    render_check,
)
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.perf import (
    FlameReport,
    TraceDiff,
    build_flame,
    diff_json,
    diff_traces,
    flame_json,
    render_diff,
    render_flame,
)
from repro.obs.recorder import (
    ObsSummary,
    TraceRecorder,
    read_trace,
    write_metrics,
    write_trace,
)
from repro.obs.report import obs_summary_json, render_obs_summary
from repro.obs.tracer import ObsEvent, SpanAggregate, SpanRecord, Tracer
from repro.util.obsclock import TickClock, WallClock


class Obs:
    """One study's observability context: clock + tracer + metrics."""

    def __init__(
        self, clock: TickClock | None = None, max_spans: int = 100_000
    ) -> None:
        self.clock = clock or TickClock()
        self.tracer = Tracer(self.clock, max_spans=max_spans)
        self.metrics = MetricsRegistry(self.clock)

    def span(self, name: str, **attrs):
        """Open a span on the tracer (context manager)."""
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs) -> ObsEvent:
        """Log one structured event."""
        return self.tracer.event(name, **attrs)

    def recorder_for(self, bus, keep_events: bool = False) -> TraceRecorder:
        """A :class:`TraceRecorder` on ``bus`` sharing this clock."""
        return TraceRecorder(bus, clock=self.clock, keep_events=keep_events)

    def summary(self, **meta) -> ObsSummary:
        """Freeze the current state into an :class:`ObsSummary`."""
        return ObsSummary(
            meta=dict(meta),
            ticks=self.clock.now(),
            spans=list(self.tracer.finished),
            aggregates=sorted(
                self.tracer.aggregates.values(), key=lambda a: a.name
            ),
            dropped_spans=self.tracer.dropped_spans,
            events=list(self.tracer.events),
            counters=self.metrics.counter_values(),
            histograms=self.metrics.histogram_records(),
        )


__all__ = [
    "Obs",
    "ObsEvent",
    "ObsSummary",
    "BenchRecord",
    "Counter",
    "FlameReport",
    "Histogram",
    "HistoryCheck",
    "MetricsRegistry",
    "PathStats",
    "SpanAggregate",
    "SpanNode",
    "SpanRecord",
    "SpanTree",
    "TickClock",
    "TraceDiff",
    "WallClock",
    "TraceRecorder",
    "Tracer",
    "append_history",
    "build_flame",
    "check_history",
    "check_json",
    "diff_json",
    "diff_traces",
    "flame_json",
    "render_check",
    "fingerprint_key",
    "git_sha",
    "hardware_fingerprint",
    "obs_summary_json",
    "read_history",
    "read_trace",
    "render_diff",
    "render_flame",
    "render_obs_summary",
    "write_metrics",
    "write_trace",
]
