"""Counters and histograms for the study pipeline.

A :class:`MetricsRegistry` is a flat, name-keyed collection of
:class:`Counter` and :class:`Histogram` instruments. Instruments are
created on first use and memoized, so call sites can say
``metrics.counter("filters.matches").add(n)`` without registration
ceremony. Snapshots are sorted by name so serialized metrics are
byte-stable across runs.

Naming convention (dotted, lowercase): ``<subsystem>.<quantity>``, e.g.
``cdp.publish.Network.webSocketCreated``, ``filters.candidates.token``,
``crawler.sockets``, ``webrequest.suppressed_wrb``. DESIGN.md §8 lists
the full vocabulary.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.util.obsclock import TickClock

# Powers-of-two-ish bounds covering "a handful" through "thousands";
# fine enough for candidates-per-match and frames-per-socket alike.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096,
)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value", "_clock")

    def __init__(self, name: str, clock: TickClock | None = None) -> None:
        self.name = name
        self.value = 0
        self._clock = clock

    def inc(self) -> None:
        """Add one."""
        self.add(1)

    def add(self, n: int) -> None:
        """Add ``n`` (must be non-negative)."""
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += n
        if self._clock is not None:
            self._clock.tick()


class Histogram:
    """A fixed-bucket histogram of observed values.

    Attributes:
        name: Instrument name.
        bounds: Upper-inclusive bucket bounds; values above the last
            bound land in an implicit overflow bucket.
        counts: Per-bucket observation counts (len(bounds) + 1).
    """

    __slots__ = ("name", "bounds", "counts", "count", "total",
                 "min", "max", "_clock")

    def __init__(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_BUCKETS,
        clock: TickClock | None = None,
    ) -> None:
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name}: bounds must be sorted")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._clock = clock

    def observe(self, value: float) -> None:
        """Record one value."""
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if self._clock is not None:
            self._clock.tick()

    @property
    def mean(self) -> float:
        """Mean observed value (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_record(self) -> dict[str, Any]:
        """JSON-shaped summary of this histogram."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Name-keyed counters and histograms, created on first use."""

    def __init__(self, clock: TickClock | None = None) -> None:
        self._clock = clock
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created if new)."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name, self._clock)
        return counter

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """The histogram named ``name`` (created if new)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(
                name, bounds, self._clock
            )
        return histogram

    def record_counts(self, prefix: str, counts: Mapping[str, int]) -> None:
        """Bulk-add a mapping of counts under ``prefix.``.

        Used to harvest subsystem-internal tallies (the event bus's
        per-method counts, the filter engine's match stats) into the
        registry at stage boundaries, keeping hot paths free of
        registry lookups.
        """
        for key in sorted(counts):
            self.counter(f"{prefix}.{key}").add(counts[key])

    def counter_values(self) -> dict[str, int]:
        """All counter values, sorted by name."""
        return {name: self._counters[name].value
                for name in sorted(self._counters)}

    def histogram_records(self) -> dict[str, dict[str, Any]]:
        """All histogram summaries, sorted by name."""
        return {name: self._histograms[name].to_record()
                for name in sorted(self._histograms)}

    def snapshot(self) -> dict[str, Any]:
        """The full registry as a JSON-shaped dict."""
        return {
            "counters": self.counter_values(),
            "histograms": self.histogram_records(),
        }

    def __len__(self) -> int:
        return len(self._counters) + len(self._histograms)
