"""Nested spans and the structured event log.

The tracer models the study's execution as a tree of spans —
study → crawl → site → page — timed in deterministic ticks
(:mod:`repro.util.obsclock`), plus a flat log of structured events
(crawl progress, stage milestones) that sinks can stream to a terminal
while the study runs.

Span records are retained up to ``max_spans`` (page-level spans of a
default-scale study number in the hundreds of thousands); beyond the
budget only the per-name aggregates keep growing, and the drop count is
reported. Aggregates are always complete, so the per-stage timing
report never lies about totals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.util.obsclock import TickClock


@dataclass
class SpanRecord:
    """One finished span.

    Attributes:
        span_id: Depth-first creation index (1-based; 0 = no parent).
        parent_id: Enclosing span's id, 0 for the root.
        name: Span name (``study``, ``crawl``, ``site``, ``page``,
            ``analyze``, …).
        start / end: Tick timestamps (``end`` >= ``start``).
        depth: Nesting depth (root = 0).
        attrs: Structured attributes (crawl index, domain, stage, …).
    """

    span_id: int
    parent_id: int
    name: str
    start: int
    end: int = 0
    depth: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> int:
        """Span duration in ticks."""
        return self.end - self.start


@dataclass
class ObsEvent:
    """One structured log entry.

    Attributes:
        tick: When it happened.
        name: Event name (``crawl.progress``, ``stage``, …).
        span_id: The span open when the event fired (0 = none).
        attrs: Structured payload.
    """

    tick: int
    name: str
    span_id: int
    attrs: dict[str, Any] = field(default_factory=dict)


@dataclass
class SpanAggregate:
    """Totals for all spans sharing a name (never truncated)."""

    name: str
    count: int = 0
    total_ticks: int = 0


EventSink = Callable[[ObsEvent], None]


class _ActiveSpan:
    """Context manager handle for an open span."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record

    def set(self, **attrs: Any) -> "_ActiveSpan":
        """Attach attributes to the open span."""
        self.record.attrs.update(attrs)
        return self

    def __enter__(self) -> "_ActiveSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._finish(self.record)


class Tracer:
    """Produces nested :class:`SpanRecord` trees and obs events."""

    def __init__(
        self, clock: TickClock | None = None, max_spans: int = 100_000
    ) -> None:
        self.clock = clock or TickClock()
        self.max_spans = max_spans
        self.finished: list[SpanRecord] = []
        self.events: list[ObsEvent] = []
        self.aggregates: dict[str, SpanAggregate] = {}
        self.dropped_spans = 0
        self._stack: list[SpanRecord] = []
        self._next_id = 1
        self._sinks: list[EventSink] = []

    # -- spans ---------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _ActiveSpan:
        """Open a span; use as a context manager."""
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            span_id=self._next_id,
            parent_id=parent.span_id if parent else 0,
            name=name,
            start=self.clock.tick(),
            depth=len(self._stack),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(record)
        return _ActiveSpan(self, record)

    def _finish(self, record: SpanRecord) -> None:
        record.end = self.clock.tick()
        # Close any children left open by an exception unwinding past them.
        while self._stack and self._stack[-1] is not record:
            dangling = self._stack.pop()
            if dangling.end == 0:
                dangling.end = record.end
        if self._stack and self._stack[-1] is record:
            self._stack.pop()
        aggregate = self.aggregates.get(record.name)
        if aggregate is None:
            aggregate = self.aggregates[record.name] = SpanAggregate(record.name)
        aggregate.count += 1
        aggregate.total_ticks += record.duration
        if len(self.finished) < self.max_spans:
            self.finished.append(record)
        else:
            self.dropped_spans += 1

    @property
    def current_span_id(self) -> int:
        """Id of the innermost open span (0 when none)."""
        return self._stack[-1].span_id if self._stack else 0

    # -- events --------------------------------------------------------------

    def add_sink(self, sink: EventSink) -> Callable[[], None]:
        """Stream every subsequent event to ``sink``; returns a remover."""
        self._sinks.append(sink)

        def remove() -> None:
            try:
                self._sinks.remove(sink)
            except ValueError:
                pass

        return remove

    def event(self, name: str, **attrs: Any) -> ObsEvent:
        """Append one structured event to the log."""
        entry = ObsEvent(
            tick=self.clock.tick(),
            name=name,
            span_id=self.current_span_id,
            attrs=attrs,
        )
        self.events.append(entry)
        for sink in self._sinks:
            sink(entry)
        return entry

    # -- introspection -------------------------------------------------------

    def spans_named(self, name: str) -> Iterator[SpanRecord]:
        """Retained finished spans with the given name."""
        return (span for span in self.finished if span.name == name)

    def sorted_aggregates(self) -> list[SpanAggregate]:
        """Aggregates sorted by total ticks, largest first."""
        return sorted(
            self.aggregates.values(),
            key=lambda a: (-a.total_ticks, a.name),
        )
