"""Quota-bounded degradation: keep the spool under a byte budget.

The spool is a staging area, not an archive — once a sealed segment
has been imported into the dataset its bytes are redundant, so the
quota reclaims space in a strict preference order:

1. Evict the oldest *imported* sealed segment (its records live on in
   the dataset; the import journal's slices still describe them by
   dataset line range, so incremental analysis is unaffected).
2. Repeat until under budget.
3. If the spool is still over budget with nothing evictable — every
   remaining byte is unimported data that eviction would destroy —
   raise :class:`SpoolQuotaExceeded`. The CLI maps that to its own
   exit code (6): the operator must import or raise the quota; the
   spool never silently drops records.

A ``max_bytes`` of 0 disables the quota entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Collection

from repro.spool.segment import SegmentInfo, delete_segment, list_segments


class SpoolQuotaExceeded(RuntimeError):
    """The quota is breached and no imported segment remains to evict.

    Attributes:
        needed: Bytes the spool would hold after the refused append.
        max_bytes: The configured budget.
    """

    def __init__(self, needed: int, max_bytes: int) -> None:
        super().__init__(
            f"spool quota hard breach: {needed} bytes needed but the "
            f"budget is {max_bytes} and every remaining segment holds "
            "unimported records (run `repro spool import` or raise "
            "--spool-quota)"
        )
        self.needed = needed
        self.max_bytes = max_bytes


@dataclass
class EvictionReport:
    """Segments reclaimed by one quota enforcement pass."""

    evicted_segments: list[str] = field(default_factory=list)
    evicted_bytes: int = 0


def enforce_quota(
    root: str | Path,
    max_bytes: int,
    incoming_bytes: int,
    imported_ids: Collection[str],
) -> EvictionReport:
    """Make room for ``incoming_bytes`` more spool data.

    Evicts oldest-first among imported sealed segments until the spool
    (plus the incoming write) fits in ``max_bytes``; raises
    :class:`SpoolQuotaExceeded` when it cannot. With ``max_bytes`` 0
    this is a no-op.
    """
    report = EvictionReport()
    if max_bytes <= 0:
        return report
    segments = list_segments(root)
    total = sum(info.size for info in segments) + incoming_bytes
    if total <= max_bytes:
        return report
    evictable = sorted(
        (info for info in segments
         if info.sealed and info.segment_id in imported_ids),
        key=lambda info: (info.seq, info.shard),
    )
    for info in evictable:
        if total <= max_bytes:
            break
        delete_segment(info.path)
        total -= info.size
        report.evicted_segments.append(info.segment_id)
        report.evicted_bytes += info.size
    if total > max_bytes:
        raise SpoolQuotaExceeded(total, max_bytes)
    return report
