"""The spool-backed crawl journal: a durable ``CrawlCheckpoint``.

:class:`SpoolJournal` duck-types
:class:`repro.crawler.persistence.CrawlCheckpoint` — ``get`` /
``covers`` / ``record`` / ``__len__`` — so the crawler and the
parallel executor use it unchanged; the wiring happens at the
composition root (:func:`repro.experiments.runner.run_study`).

Instead of one flat JSONL file, entries go through a
:class:`~repro.spool.store.SpoolStore`, one shard per crawl lane
(``crawl00`` …). Because the accountant records each crawl's sites in
canonical ``(shard, rank)`` order, replaying segments in ``(shard,
seq)`` order reproduces the canonical per-crawl site order — the
property the importer leans on to keep a crash-resumed dataset
byte-identical to an uninterrupted one.

Two record types live in the spool::

    {"t": "crawl", "index": 0, "label": "vanilla"}   # once per crawl
    {"t": "site",  "entry": {...}}                   # one per site

The ``crawl`` record carries what :meth:`StudyDataset.record_crawl`
needs; it is written lazily before a crawl's first site so an
untouched crawl leaves no trace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

from repro.crawler.persistence import (
    SiteCheckpoint,
    entry_from_json,
    entry_to_json,
)
from repro.spool.segment import parse_segment_id, read_segment

if TYPE_CHECKING:
    from repro.spool.store import SpoolStore


def shard_for_crawl(index: int) -> str:
    """The spool shard name for a crawl lane."""
    return f"crawl{index:02d}"


def crawl_for_shard(shard: str) -> int:
    """Inverse of :func:`shard_for_crawl`; raises on foreign shards."""
    if not shard.startswith("crawl"):
        raise ValueError(f"not a crawl shard: {shard!r}")
    return int(shard[len("crawl"):])


class SpoolJournal:
    """Crash-safe crawl checkpoint journaled into spool segments."""

    def __init__(
        self, store: "SpoolStore", labels: Mapping[int, str]
    ) -> None:
        self.store = store
        self._labels = dict(labels)
        self._entries: dict[tuple[int, str], SiteCheckpoint] = {}
        self._crawls_started: set[int] = set()
        self.crawl_labels: dict[int, str] = {}
        for info in store.segments():
            shard = parse_segment_id(info.segment_id)[0]
            if not shard.startswith("crawl"):
                continue
            for payload in read_segment(info.path):
                self._restore(payload)
        self._crawls_started.update(self.crawl_labels)

    def _restore(self, payload: dict) -> None:
        kind = payload.get("t")
        if kind == "crawl":
            self.crawl_labels[payload["index"]] = payload["label"]
        elif kind == "site":
            entry = entry_from_json(payload["entry"])
            self._entries[(entry.crawl, entry.domain)] = entry
        else:
            raise ValueError(f"unknown spool record type {kind!r}")

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, crawl: int, domain: str) -> SiteCheckpoint | None:
        """The journaled entry for a site, or ``None`` if unfinished."""
        return self._entries.get((crawl, domain))

    def covers(self, crawl: int, domains: Iterable[str]) -> bool:
        """Whether every one of ``domains`` is journaled for ``crawl``."""
        return all(
            (crawl, domain) in self._entries for domain in domains
        )

    def record(self, entry: SiteCheckpoint) -> None:
        """Durably append one finished site to the crawl's shard."""
        shard = shard_for_crawl(entry.crawl)
        if entry.crawl not in self._crawls_started:
            self._crawls_started.add(entry.crawl)
            label = self._labels.get(entry.crawl, f"crawl-{entry.crawl}")
            self.crawl_labels[entry.crawl] = label
            self.store.append(
                shard, {"t": "crawl", "index": entry.crawl, "label": label}
            )
        self.store.append(shard, {"t": "site", "entry": entry_to_json(entry)})
        self._entries[(entry.crawl, entry.domain)] = entry
