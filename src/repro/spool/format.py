"""The spool segment wire format: length-prefixed, checksummed frames.

A segment file is a sequence of *frames*, each::

    +----------------+----------------+------------------+
    | length (4B BE) | crc32  (4B BE) | payload (length) |
    +----------------+----------------+------------------+

where ``payload`` is one compact, sorted-key JSON object encoded as
UTF-8 and ``crc32`` is :func:`zlib.crc32` over those payload bytes.
The first frame of every segment is the header
(:func:`header_payload`); every later frame is one spool record.

The format is append-only and self-delimiting, which gives recovery
its central invariant: truncating the file at *any* byte offset leaves
a prefix of whole frames plus at most one incomplete tail — the tail
is detectable (the declared length runs past EOF, or the length field
itself is cut) and removable without touching any complete frame. A
checksum mismatch on a *complete* frame, by contrast, can never be
produced by truncation; it means bit corruption and is reported as
such (:class:`~repro.spool.recovery.SpoolCorruptionError`), never
silently dropped.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator

SPOOL_FORMAT = "repro.spool"
SPOOL_VERSION = 1

_PREFIX = struct.Struct(">II")
PREFIX_BYTES = _PREFIX.size

#: Sanity bound on one frame's payload. A declared length past this is
#: treated as corruption even when the bytes are present — a frame this
#: large can only be a misread length field.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class FrameError(ValueError):
    """A frame could not be decoded.

    Attributes:
        offset: Byte offset of the frame's length prefix.
        kind: ``"torn"`` (frame incomplete at EOF — the truncation
            signature) or ``"corrupt"`` (a complete frame failed its
            checksum, declared an absurd length, or carried
            undecodable payload).
    """

    def __init__(self, offset: int, kind: str, reason: str) -> None:
        super().__init__(f"frame at byte {offset}: {reason}")
        self.offset = offset
        self.kind = kind


@dataclass(frozen=True)
class Frame:
    """One decoded frame and where it came from.

    Attributes:
        offset: Byte offset of the frame's length prefix.
        end: Byte offset one past the frame's last payload byte.
        payload: The decoded JSON object.
    """

    offset: int
    end: int
    payload: dict


def encode_frame(payload: dict) -> bytes:
    """Encode one JSON-able mapping as a framed record."""
    body = json.dumps(
        payload, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    return _PREFIX.pack(len(body), zlib.crc32(body)) + body


def header_payload(shard: str, seq: int) -> dict:
    """The header frame payload identifying a segment."""
    return {
        "format": SPOOL_FORMAT,
        "version": SPOOL_VERSION,
        "shard": shard,
        "seq": seq,
    }


def scan_frames(data: bytes) -> Iterator[Frame]:
    """Decode frames from a segment's bytes, in order.

    Raises :class:`FrameError` at the first undecodable frame —
    ``kind="torn"`` when the frame is cut off by EOF (recovery
    truncates there), ``kind="corrupt"`` for everything else
    (recovery refuses the segment).
    """
    size = len(data)
    offset = 0
    while offset < size:
        if offset + PREFIX_BYTES > size:
            raise FrameError(
                offset, "torn",
                f"length prefix cut off at EOF ({size - offset} of "
                f"{PREFIX_BYTES} bytes)",
            )
        length, checksum = _PREFIX.unpack_from(data, offset)
        if length > MAX_FRAME_BYTES:
            raise FrameError(
                offset, "corrupt",
                f"declared payload of {length} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte frame bound",
            )
        start = offset + PREFIX_BYTES
        end = start + length
        if end > size:
            raise FrameError(
                offset, "torn",
                f"payload cut off at EOF ({size - start} of "
                f"{length} bytes)",
            )
        body = data[start:end]
        if zlib.crc32(body) != checksum:
            raise FrameError(
                offset, "corrupt",
                "checksum mismatch on a complete frame",
            )
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as error:
            raise FrameError(
                offset, "corrupt", f"undecodable payload ({error})"
            ) from None
        if not isinstance(payload, dict):
            raise FrameError(
                offset, "corrupt",
                f"payload is {type(payload).__name__}, not an object",
            )
        yield Frame(offset=offset, end=end, payload=payload)
        offset = end


def check_header(payload: dict, path: str) -> None:
    """Validate a segment's header frame; raises ``ValueError``."""
    if payload.get("format") != SPOOL_FORMAT:
        raise ValueError(
            f"{path} is not a {SPOOL_FORMAT} segment "
            f"(header format={payload.get('format')!r})"
        )
    if payload.get("version") != SPOOL_VERSION:
        raise ValueError(
            f"{path} is spool version {payload.get('version')!r}; "
            f"this build reads version {SPOOL_VERSION}"
        )
