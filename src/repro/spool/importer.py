"""Draining the spool into the v2 dataset file, idempotently.

The importer replays sealed spool segments — each holding the crawl
journal records the accountant appended in canonical site order — into
a :class:`~repro.crawler.dataset.StudyDataset` and writes the v2
dataset file, extending any previous import. Three properties carry
the crash-safety story:

**Canonical order.** Segments replay in ``(shard, seq)`` order, which
is exactly the order the accountant journaled sites in; first-wins
deduplication by ``(crawl, domain)`` then erases the re-journaled
sites a crash/resume cycle produces while keeping every survivor at
its canonical position. The imported dataset is therefore
byte-identical to the one an uninterrupted run would have saved.

**Two-phase commit.** Each import writes the new dataset to a temp
file, rewrites the import journal (now naming the new file's
fingerprint and the segments it consumed), and only then renames the
temp over the dataset. A crash between journal and rename leaves a
journal whose last entry names a fingerprint no file has — the next
load drops that entry and the re-import heals. A crash before the
journal leaves both files untouched.

**Fingerprint-validated journal.** :meth:`ImportState.load` trusts a
journal entry only when the *last* entry's fingerprint matches the
dataset file actually on disk (every earlier entry then being a
committed ancestor). Entries that fail the check are dropped — so a
dataset regenerated outside the importer simply resets the import
history rather than corrupting it.

Each journal entry also records, per segment, the dataset *record
range* the segment's records occupy and a hash of those lines. Those
slices — not the segment files — are what incremental analysis folds,
which is why quota eviction of an imported segment never invalidates
the analysis cache.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.crawler.persistence import (
    DatasetReader,
    dataset_preamble,
    entry_from_json,
    file_fingerprint,
    socket_record_to_json,
)
from repro.spool.segment import SegmentInfo, read_segment
from repro.util.atomicio import atomic_write, fsync_dir
from repro.util.serialization import dumps, iter_lines

if TYPE_CHECKING:
    from repro.crawler.dataset import StudyDataset
    from repro.filters import FilterEngine

JOURNAL_NAME = "import.journal"
JOURNAL_KIND = "spool-import-journal"
JOURNAL_VERSION = 1


def _default_engine() -> "FilterEngine":
    # Same construction as DatasetReader: the filter engine is built
    # from the full registry regardless of crawl scale, so the replay
    # tags resources with exactly the rules the crawl used.
    from repro.web.filterlists import build_filter_engine
    from repro.web.registry import default_registry

    return build_filter_engine(default_registry())


def _fresh_dataset(engine: "FilterEngine | None") -> "StudyDataset":
    from repro.crawler.dataset import StudyDataset

    return StudyDataset(engine=engine or _default_engine())


@dataclass(frozen=True)
class SliceEntry:
    """One imported segment's footprint in the dataset file.

    ``start``/``stop`` index *socket records* (0-based over the file's
    record region); ``lines_sha`` is the SHA-256 of those records'
    canonical JSONL lines, newlines included — the content address
    incremental analysis caches folded stage state under.
    """

    segment_id: str
    start: int
    stop: int
    lines_sha: str

    def to_json(self) -> dict:
        return {
            "id": self.segment_id,
            "start": self.start,
            "stop": self.stop,
            "lines_sha": self.lines_sha,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "SliceEntry":
        return cls(
            segment_id=payload["id"],
            start=payload["start"],
            stop=payload["stop"],
            lines_sha=payload["lines_sha"],
        )


@dataclass
class ImportState:
    """The validated import history of one spool directory."""

    journal_path: Path
    dataset_path: Path | None = None
    entries: list[dict] = field(default_factory=list)
    dropped: int = 0

    @property
    def imported_ids(self) -> set[str]:
        """Segment ids a committed import has fully consumed."""
        ids: set[str] = set()
        for entry in self.entries:
            for payload in entry["segments"]:
                ids.add(payload["id"])
        return ids

    @property
    def slices(self) -> list[SliceEntry]:
        """Every committed slice, in dataset record order."""
        return [
            SliceEntry.from_json(payload)
            for entry in self.entries
            for payload in entry["segments"]
        ]

    @property
    def fingerprint(self) -> str | None:
        """The dataset fingerprint of the last committed import."""
        return self.entries[-1]["fingerprint"] if self.entries else None

    @classmethod
    def load(
        cls, root: str | Path, dataset_path: str | Path | None = None
    ) -> "ImportState":
        """Parse and validate ``root``'s import journal.

        Trailing entries whose fingerprint does not match the dataset
        file on disk are dropped (counted in ``dropped``) — the
        signature of a crash between journal write and dataset rename,
        or of a dataset regenerated outside the importer.
        """
        journal_path = Path(root) / JOURNAL_NAME
        state = cls(journal_path=journal_path)
        if dataset_path is not None:
            state.dataset_path = Path(dataset_path)
        if not journal_path.exists():
            return state
        lines = [
            line.strip()
            for line in journal_path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        if not lines:
            return state
        header = json.loads(lines[0])
        if (
            header.get("kind") != JOURNAL_KIND
            or header.get("version") != JOURNAL_VERSION
        ):
            raise ValueError(
                f"{journal_path} is not a version-{JOURNAL_VERSION} "
                f"{JOURNAL_KIND} file"
            )
        recorded = Path(header["dataset"])
        if state.dataset_path is None:
            state.dataset_path = recorded
        elif state.dataset_path != recorded:
            raise ValueError(
                f"{journal_path} tracks dataset {recorded}, not "
                f"{state.dataset_path}; use one dataset per spool"
            )
        state.entries = [json.loads(line) for line in lines[1:]]
        actual = (
            file_fingerprint(state.dataset_path)
            if state.dataset_path.exists() else None
        )
        while state.entries and state.entries[-1]["fingerprint"] != actual:
            state.entries.pop()
            state.dropped += 1
        return state

    def save(self) -> None:
        """Atomically rewrite the journal from the validated entries."""
        header = {
            "kind": JOURNAL_KIND,
            "version": JOURNAL_VERSION,
            "dataset": str(self.dataset_path),
        }
        body = "".join(
            json.dumps(payload, sort_keys=True) + "\n"
            for payload in [header] + self.entries
        )
        atomic_write(self.journal_path, body)


@dataclass
class ImportResult:
    """What one import pass did.

    ``no_op`` is True when every sealed segment was already journaled
    — the idempotence contract ``repro spool import`` re-runs lean on.
    """

    dataset_path: Path
    imported_segments: list[str] = field(default_factory=list)
    new_records: int = 0
    new_sites: int = 0
    total_records: int = 0
    deduped_sites: int = 0
    fingerprint: str = ""
    no_op: bool = False


def _replay_segment(
    info: SegmentInfo,
    dataset: "StudyDataset",
    known_sites: set[tuple[int, str]],
) -> tuple[int, int]:
    """Replay one segment's journal records into the dataset.

    Returns ``(new_sites, duplicate_sites)``. Mirrors what the
    accountant feeds the dataset for each site — every page
    observation, then the ``(domain, rank)`` slot in the crawl's site
    list — so replay order in, canonical dataset out.
    """
    new_sites = 0
    dupes = 0
    for payload in read_segment(info.path):
        kind = payload.get("t")
        if kind == "crawl":
            index = payload["index"]
            if index not in dataset.crawl_labels:
                dataset.crawl_labels[index] = payload["label"]
                dataset.crawl_sites.setdefault(index, [])
            continue
        if kind != "site":
            raise ValueError(
                f"{info.path}: unknown spool record type {kind!r}"
            )
        entry = entry_from_json(payload["entry"])
        key = (entry.crawl, entry.domain)
        if key in known_sites:
            dupes += 1
            continue
        known_sites.add(key)
        new_sites += 1
        for page in entry.page_outcomes:
            if page.observation is not None:
                dataset.observe(page.observation)
        dataset.crawl_sites.setdefault(entry.crawl, []).append(
            (entry.domain, entry.rank)
        )
    return new_sites, dupes


def import_spool(
    root: str | Path,
    dataset_path: str | Path,
    engine: "FilterEngine | None" = None,
) -> ImportResult:
    """Drain every unimported sealed segment into the dataset file.

    Opens (and thereby recovers) the spool, replays new segments onto
    the existing dataset — restored aggregates plus raw record lines,
    never a re-crawl — and commits dataset + journal in the two-phase
    order described in the module docstring. Returns a no-op result
    when there is nothing new.
    """
    from repro.spool.store import SpoolStore

    root = Path(root)
    dataset_path = Path(dataset_path)
    state = ImportState.load(root, dataset_path)
    store = SpoolStore.open(root)
    segments = [info for info in store.segments() if info.sealed]
    fresh = [
        info for info in segments
        if info.segment_id not in state.imported_ids
    ]
    if not fresh:
        return ImportResult(
            dataset_path=dataset_path,
            total_records=sum(
                s.stop - s.start for s in state.slices
            ),
            fingerprint=state.fingerprint or "",
            no_op=True,
        )

    base_exists = dataset_path.exists()
    if base_exists:
        reader = DatasetReader(dataset_path, engine=engine)
        dataset = reader.dataset
        known_sites = {
            (crawl.index, domain)
            for crawl in reader.meta.crawls
            for domain, _rank in crawl.sites
        }
        preamble_skip = reader.preamble_lines
    else:
        dataset = _fresh_dataset(engine)
        known_sites = set()
        preamble_skip = 0

    result = ImportResult(dataset_path=dataset_path)
    segment_ranges: list[tuple[str, int, int]] = []
    for info in fresh:
        start = len(dataset.socket_records)
        new_sites, dupes = _replay_segment(info, dataset, known_sites)
        segment_ranges.append(
            (info.segment_id, start, len(dataset.socket_records))
        )
        result.new_sites += new_sites
        result.deduped_sites += dupes
        result.imported_segments.append(info.segment_id)
    result.new_records = len(dataset.socket_records)

    # Write the new dataset to a temp file: recomputed preamble, the
    # old file's record lines verbatim, then the replayed records —
    # hashing lines as they go so the journal entry can name the new
    # fingerprint before the file exists under its final name.
    temp = dataset_path.parent / f".{dataset_path.name}.import.tmp"
    dataset_path.parent.mkdir(parents=True, exist_ok=True)
    hasher = hashlib.sha256()
    base_records = 0
    new_line_hashes = [hashlib.sha256() for _ in segment_ranges]
    try:
        with _plain_temp_open(temp, dataset_path) as handle:
            for payload in dataset_preamble(dataset):
                line = dumps(payload) + "\n"
                handle.write(line)
                hasher.update(line.encode("utf-8"))
            if base_exists:
                skipped = 0
                for line in iter_lines(dataset_path):
                    if skipped < preamble_skip:
                        skipped += 1
                        continue
                    handle.write(line)
                    hasher.update(line.encode("utf-8"))
                    if line.strip():
                        base_records += 1
            for index, (_, start, stop) in enumerate(segment_ranges):
                for record in dataset.socket_records[start:stop]:
                    line = dumps(socket_record_to_json(record)) + "\n"
                    handle.write(line)
                    hasher.update(line.encode("utf-8"))
                    new_line_hashes[index].update(line.encode("utf-8"))
    except BaseException:
        temp.unlink(missing_ok=True)
        raise
    result.fingerprint = hasher.hexdigest()
    result.total_records = base_records + result.new_records

    state.entries.append({
        "kind": "import",
        "fingerprint": result.fingerprint,
        "segments": [
            SliceEntry(
                segment_id=segment_id,
                start=base_records + start,
                stop=base_records + stop,
                lines_sha=new_line_hashes[index].hexdigest(),
            ).to_json()
            for index, (segment_id, start, stop)
            in enumerate(segment_ranges)
        ],
    })
    state.save()
    os.replace(temp, dataset_path)
    fsync_dir(dataset_path.parent)
    return result


@contextmanager
def _plain_temp_open(temp: Path, final: Path) -> Iterator:
    """A text handle on ``temp``, gzip-encoded when ``final`` is .gz.

    Fully fsync'd on clean exit, but *not* renamed — the commit has to
    happen after the journal write, which is why this is not
    :func:`repro.util.atomicio.atomic_open`. ``mtime=0`` on the gzip
    member keeps equal content byte-identical, matching the dataset
    files :func:`repro.util.serialization.write_jsonl` produces.
    """
    raw = open(temp, "wb")
    if final.suffix == ".gz":
        inner = gzip.GzipFile(filename="", fileobj=raw, mode="wb", mtime=0)
    else:
        inner = raw
    text = io.TextIOWrapper(inner, encoding="utf-8")
    try:
        yield text
        text.flush()
        text.detach()
        if inner is not raw:
            inner.close()
        raw.flush()
        os.fsync(raw.fileno())
    finally:
        raw.close()
