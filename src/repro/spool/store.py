"""The spool store: the one handle crawl code holds on the spool.

``SpoolStore.open`` is where the durability story starts: it runs
crash recovery over every segment on disk, seals any leftover
``.open`` segments from a previous (dead) process, and only then hands
out writers — so by the time the first new record is appended, the
spool invariant (whole frames everywhere) holds again and the
appendable segments all belong to *this* process.

The store also enforces the byte quota on every append
(:mod:`repro.spool.quota`) and emits the ``spool.*`` counters that the
chaos tests and the obs report read.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.spool.format import encode_frame
from repro.spool.quota import enforce_quota
from repro.spool.recovery import RecoveryReport, recover_spool
from repro.spool.segment import (
    DEFAULT_SEGMENT_BYTES,
    SegmentInfo,
    SegmentWriter,
    delete_segment,
    list_segments,
    scan_segment,
    seal_segment,
)

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector
    from repro.obs import Obs


class SpoolStore:
    """Durable, quota-bounded, multi-shard spool of JSON records."""

    def __init__(
        self,
        root: Path,
        recovery: RecoveryReport,
        quota_bytes: int = 0,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        obs: "Obs | None" = None,
        injector: "FaultInjector | None" = None,
    ) -> None:
        self.root = root
        self.recovery = recovery
        self.quota_bytes = quota_bytes
        self.segment_bytes = segment_bytes
        self.obs = obs
        self.injector = injector
        self._writers: dict[str, SegmentWriter] = {}
        self._next_seq: dict[str, int] = {}
        for info in list_segments(root):
            self._next_seq[info.shard] = max(
                self._next_seq.get(info.shard, 0), info.seq
            ) + 1
        self._total = sum(info.size for info in list_segments(root))

    @classmethod
    def open(
        cls,
        root: str | Path,
        quota_bytes: int = 0,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        obs: "Obs | None" = None,
        injector: "FaultInjector | None" = None,
    ) -> "SpoolStore":
        """Recover the spool directory and return a ready store.

        Leftover ``.open`` segments from a dead process are sealed
        (they were recovered to whole frames) or deleted when they
        hold no records; new appends always start fresh segments.
        Raises :class:`~repro.spool.recovery.SpoolCorruptionError`
        when a segment's damage is not a clean torn tail.
        """
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        recovery = recover_spool(root)
        sealed_leftovers = 0
        for info in list_segments(root):
            if info.sealed:
                continue
            frames = sum(1 for _ in scan_segment(info.path))
            if frames >= 2:
                seal_segment(info.path)
                sealed_leftovers += 1
            else:
                delete_segment(info.path)
        store = cls(
            root,
            recovery,
            quota_bytes=quota_bytes,
            segment_bytes=segment_bytes,
            obs=obs,
            injector=injector,
        )
        if obs is not None:
            obs.metrics.counter("spool.recovery.segments").add(
                recovery.segments_scanned
            )
            obs.metrics.counter("spool.recovery.torn_records").add(
                recovery.torn_records
            )
            obs.metrics.counter("spool.segments_sealed").add(sealed_leftovers)
        return store

    def _writer(self, shard: str) -> SegmentWriter:
        writer = self._writers.get(shard)
        if writer is None:
            writer = SegmentWriter(
                self.root,
                shard,
                self._next_seq.get(shard, 1),
                segment_bytes=self.segment_bytes,
                injector=self.injector,
            )
            self._writers[shard] = writer
        return writer

    def _imported_ids(self) -> set[str]:
        from repro.spool.importer import ImportState

        return ImportState.load(self.root).imported_ids

    def append(self, shard: str, payload: dict) -> None:
        """Durably append one record to a shard's active segment.

        With a quota configured, over-budget appends first evict
        oldest-imported sealed segments; when nothing is evictable the
        quota raises rather than dropping data.
        """
        if self.quota_bytes:
            frame_len = len(encode_frame(payload))
            if self._total + frame_len > self.quota_bytes:
                report = enforce_quota(
                    self.root,
                    self.quota_bytes,
                    frame_len,
                    self._imported_ids(),
                )
                if report.evicted_segments and self.obs is not None:
                    self.obs.metrics.counter(
                        "spool.quota.evicted_segments"
                    ).add(len(report.evicted_segments))
                    self.obs.metrics.counter("spool.quota.evicted_bytes").add(
                        report.evicted_bytes
                    )
                self._total = sum(
                    info.size for info in list_segments(self.root)
                )
        writer = self._writer(shard)
        sealed_before = writer.active_size
        self._total += writer.append(payload)
        if self.obs is not None:
            self.obs.metrics.counter("spool.records").add(1)
            if writer.active_size < sealed_before:
                # Rotation sealed the previous segment mid-append.
                self.obs.metrics.counter("spool.segments_sealed").add(1)

    def seal_active(self) -> list[Path]:
        """Seal every shard's active segment (end of study)."""
        sealed = []
        for writer in self._writers.values():
            path = writer.seal()
            if path is not None:
                sealed.append(path)
        if sealed and self.obs is not None:
            self.obs.metrics.counter("spool.segments_sealed").add(len(sealed))
        return sealed

    def close(self) -> None:
        """Close writers without sealing (crash simulation in tests)."""
        for writer in self._writers.values():
            writer.close()

    def segments(self) -> list[SegmentInfo]:
        return list_segments(self.root)

    def total_bytes(self) -> int:
        return self._total
