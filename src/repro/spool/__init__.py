"""The durable write-ahead spool: crash-safe crawl → analyze hand-off.

A study run with ``--spool-dir`` journals every finished site into
per-crawl-lane *segments* — length-prefixed, checksummed, append-only
files (:mod:`~repro.spool.format`, :mod:`~repro.spool.segment`). A
killed run loses at most the record in flight: on reopen,
:mod:`~repro.spool.recovery` truncates the one torn tail frame a crash
can produce (and refuses, loudly, anything that looks like real
corruption), after which the resumed study re-crawls only unjournaled
shards.

``repro spool import`` (:mod:`~repro.spool.importer`) drains sealed
segments into the v2 dataset file idempotently — canonical record
order, first-wins site dedupe, two-phase journal-then-rename commit —
so the imported dataset is byte-identical to an uninterrupted run's,
and each import journals which dataset record range every segment
produced. Those slices feed ``repro analyze --incremental``, which
folds only the records new since the last analysis.

The byte budget (:mod:`~repro.spool.quota`) degrades by evicting
oldest *imported* segments first and hard-fails (exit code 6) rather
than ever dropping unimported records.
"""

from repro.spool.importer import (
    ImportResult,
    ImportState,
    SliceEntry,
    import_spool,
)
from repro.spool.journal import SpoolJournal, shard_for_crawl
from repro.spool.quota import EvictionReport, SpoolQuotaExceeded
from repro.spool.recovery import (
    RecoveryReport,
    SpoolCorruptionError,
    recover_spool,
)
from repro.spool.segment import (
    SegmentInfo,
    SegmentWriter,
    SpoolCrash,
    SpoolDiskFull,
    SpoolFault,
    SpoolTornWrite,
    list_segments,
)
from repro.spool.store import SpoolStore

__all__ = [
    "EvictionReport",
    "ImportResult",
    "ImportState",
    "RecoveryReport",
    "SegmentInfo",
    "SegmentWriter",
    "SliceEntry",
    "SpoolCorruptionError",
    "SpoolCrash",
    "SpoolDiskFull",
    "SpoolFault",
    "SpoolJournal",
    "SpoolQuotaExceeded",
    "SpoolStore",
    "SpoolTornWrite",
    "import_spool",
    "list_segments",
    "recover_spool",
    "shard_for_crawl",
]
