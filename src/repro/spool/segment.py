"""Spool segments: the append-only files and their lifecycle.

A segment lives under the spool directory as
``<shard>-<seq>.open`` while a writer appends to it and is *sealed* by
an fsync + rename to ``<shard>-<seq>.seg`` — the atomic state change
that marks it immutable and importable. Sealing happens when the
segment crosses the writer's size threshold (rotation) or when the
study finishes (:meth:`~repro.spool.store.SpoolStore.seal_active`).

This module owns every filesystem *mutation* the spool performs on
segment files — appends, the seal rename, deletion (quota eviction),
and :func:`truncate_segment`, the single write primitive recovery is
allowed to reach (the ``SPOOL-RO`` flow-zone contract pins that).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.spool.format import (
    Frame,
    FrameError,
    check_header,
    encode_frame,
    header_payload,
    scan_frames,
)
from repro.util.atomicio import fsync_dir

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector

OPEN_SUFFIX = ".open"
SEALED_SUFFIX = ".seg"

#: Default rotation threshold. Small enough that a smoke study rotates
#: at least once (the recovery tests need multi-segment spools), large
#: enough that frame overhead stays negligible.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024


class SpoolFault(RuntimeError):
    """Base class for injected spool faults (``repro.faults``).

    These simulate a process dying mid-write: tests catch them, reopen
    the spool, and assert recovery restores the invariant. They are
    never raised on the ``none`` profile.
    """


class SpoolCrash(SpoolFault):
    """Injected crash *after* a record was fully appended."""


class SpoolTornWrite(SpoolFault):
    """Injected crash *mid-append* — a torn frame is left on disk."""


class SpoolDiskFull(SpoolFault):
    """Injected ENOSPC *before* an append — nothing reaches disk.

    The CLI treats this like a real quota hard breach (exit code 6):
    both mean the spool cannot durably accept the record.
    """


def segment_name(shard: str, seq: int) -> str:
    """The segment id (file stem) for a shard/sequence pair."""
    return f"{shard}-{seq:06d}"


def parse_segment_id(segment_id: str) -> tuple[str, int]:
    """Split a segment id back into ``(shard, seq)``."""
    stem, _, seq = segment_id.rpartition("-")
    return stem, int(seq)


@dataclass(frozen=True)
class SegmentInfo:
    """One segment file as found on disk.

    Attributes:
        segment_id: ``<shard>-<seq>`` (the file stem).
        path: Where it lives.
        sealed: Whether it carries the sealed suffix.
        size: File size in bytes.
    """

    segment_id: str
    path: Path
    sealed: bool
    size: int

    @property
    def shard(self) -> str:
        return parse_segment_id(self.segment_id)[0]

    @property
    def seq(self) -> int:
        return parse_segment_id(self.segment_id)[1]


def list_segments(root: str | Path) -> list[SegmentInfo]:
    """Every segment under a spool directory, in (shard, seq) order.

    The order is the canonical import order: shards are named after
    crawl lanes (``crawl00`` …), so sorting by name then sequence
    replays records exactly as the accountant journaled them.
    """
    root = Path(root)
    if not root.is_dir():
        return []
    infos = []
    for path in root.iterdir():
        if path.suffix not in (OPEN_SUFFIX, SEALED_SUFFIX):
            continue
        infos.append(SegmentInfo(
            segment_id=path.stem,
            path=path,
            sealed=path.suffix == SEALED_SUFFIX,
            size=path.stat().st_size,
        ))
    infos.sort(key=lambda info: (info.shard, info.seq))
    return infos


def scan_segment(path: str | Path) -> Iterator[Frame]:
    """Frames of one segment, header first; propagates FrameError."""
    data = Path(path).read_bytes()
    return scan_frames(data)


def read_segment(path: str | Path) -> list[dict]:
    """Record payloads of a (recovered) segment, header validated.

    Strict: any frame error propagates — call only after recovery has
    run, when a bad frame means corruption, not a torn tail.
    """
    frames = list(scan_segment(path))
    if not frames:
        raise FrameError(0, "corrupt", "segment has no header frame")
    check_header(frames[0].payload, str(path))
    return [frame.payload for frame in frames[1:]]


def truncate_segment(path: str | Path, offset: int) -> None:
    """Cut a segment off at ``offset`` bytes — recovery's one write.

    This is the sanctioned sink of the ``SPOOL-RO`` zone: recovery
    decides *where* to cut, this primitive performs the cut, and
    nothing else in the recovery path may touch the filesystem.
    """
    with open(path, "r+b") as handle:
        handle.truncate(offset)
        handle.flush()
        os.fsync(handle.fileno())


def delete_segment(path: str | Path) -> None:
    """Remove a segment file (quota eviction)."""
    path = Path(path)
    path.unlink(missing_ok=True)
    fsync_dir(path.parent)


def seal_segment(path: str | Path) -> Path:
    """Rename ``.open`` → ``.seg``; idempotent for sealed paths."""
    path = Path(path)
    if path.suffix == SEALED_SUFFIX:
        return path
    sealed = path.with_suffix(SEALED_SUFFIX)
    os.replace(path, sealed)
    fsync_dir(path.parent)
    return sealed


class SegmentWriter:
    """Appends framed records to one shard's active segment.

    Rotation: when an append pushes the active segment past
    ``segment_bytes``, the segment is fsync'd, sealed, and the next
    append opens ``<shard>-<seq+1>.open``. Appends flush to the OS
    (surviving a killed process); the fsync that survives power loss
    happens at seal time — the write-ahead-log tradeoff recovery's
    torn-tail rule exists to cover.
    """

    def __init__(
        self,
        root: Path,
        shard: str,
        next_seq: int,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        injector: "FaultInjector | None" = None,
    ) -> None:
        self.root = root
        self.shard = shard
        self.segment_bytes = segment_bytes
        self.injector = injector
        self._seq = next_seq
        self._handle = None
        self._size = 0
        self._records = 0

    @property
    def active_path(self) -> Path:
        return self.root / (segment_name(self.shard, self._seq) + OPEN_SUFFIX)

    @property
    def active_size(self) -> int:
        return self._size

    def _open(self) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.active_path
        self._handle = open(path, "ab")
        self._size = self._handle.tell()
        if self._size == 0:
            header = encode_frame(header_payload(self.shard, self._seq))
            self._handle.write(header)
            self._handle.flush()
            self._size = len(header)

    def append(self, payload: dict) -> int:
        """Frame and append one record; returns bytes written.

        Injected faults (when an injector with spool probabilities is
        installed) fire here: ``torn-write`` leaves a prefix of the
        frame on disk and raises, ``crash`` raises after the full
        append — both simulate the process dying at exactly the point
        recovery must handle.
        """
        if self._handle is None:
            self._open()
        frame = encode_frame(payload)
        segment_id = segment_name(self.shard, self._seq)
        injector = self.injector
        if injector is not None:
            if injector.spool_disk_full(segment_id, self._records):
                raise SpoolDiskFull(
                    f"injected disk-full in {segment_id} before record "
                    f"{self._records}"
                )
            if injector.spool_torn_write(segment_id, self._records):
                cut = injector.spool_torn_cut(
                    segment_id, self._records, len(frame)
                )
                self._handle.write(frame[:cut])
                self._handle.flush()
                self._size += cut
                raise SpoolTornWrite(
                    f"injected torn write in {segment_id} at record "
                    f"{self._records} ({cut}/{len(frame)} bytes)"
                )
        self._handle.write(frame)
        self._handle.flush()
        self._size += len(frame)
        self._records += 1
        if injector is not None and injector.spool_crash(
            segment_id, self._records
        ):
            raise SpoolCrash(
                f"injected crash in {segment_id} after record "
                f"{self._records}"
            )
        if self._size >= self.segment_bytes:
            self.seal()
        return len(frame)

    def seal(self) -> Path | None:
        """Seal the active segment (fsync + rename); advance the seq.

        Returns the sealed path, or ``None`` when nothing was open.
        An empty active segment (header only) is discarded rather
        than sealed — it carries no records.
        """
        if self._handle is None:
            return None
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        path = self.active_path
        header_only = self._size <= len(
            encode_frame(header_payload(self.shard, self._seq))
        )
        self._handle = None
        self._seq += 1
        self._records = 0
        self._size = 0
        if header_only:
            delete_segment(path)
            return None
        return seal_segment(path)

    def close(self) -> None:
        """Close without sealing (the crash-simulation path in tests)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
