"""Crash recovery: restore the spool invariant on open.

The invariant every other spool component assumes: **every segment on
disk is a sequence of whole, checksummed frames starting with a valid
header**. A crash mid-append can break it in exactly one shape — an
incomplete frame at the tail of the segment being written (the length
prefix or payload cut off by the death of the process). Recovery
detects that shape and repairs it by truncating the file back to the
last whole frame, counting what it removed.

Anything else — a checksum mismatch on a *complete* frame, an absurd
length field with the bytes present, undecodable payload, a missing
or foreign header — cannot be produced by truncation. That is bit
corruption or an alien file, and silently "recovering" it would
fabricate data loss the operator never saw; it raises
:class:`SpoolCorruptionError` instead.

Recovery is deliberately read-then-truncate-only: it decides *where*
to cut and delegates the single filesystem write to
:func:`repro.spool.segment.truncate_segment` — the contract the
``SPOOL-RO`` flow-zone rule enforces statically.

A torn tail whose header frame itself is cut (a segment created but
killed before the header flush completed) recovers to an empty file,
which the store then discards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.spool.format import FrameError, check_header
from repro.spool.segment import (
    SegmentInfo,
    list_segments,
    scan_segment,
    truncate_segment,
)


class SpoolCorruptionError(RuntimeError):
    """A segment is damaged in a way truncation cannot explain.

    Attributes:
        path: The offending segment file.
        offset: Byte offset of the undecodable frame.
    """

    def __init__(self, path: Path, offset: int, reason: str) -> None:
        super().__init__(
            f"{path}: {reason} — not a torn tail; refusing to repair "
            "(move the segment aside or delete it to proceed)"
        )
        self.path = path
        self.offset = offset


@dataclass
class RecoveryReport:
    """What one recovery pass found and repaired.

    Attributes:
        segments_scanned: Segment files examined.
        records_kept: Whole records surviving across all segments.
        torn_records: Incomplete tail records truncated away —
            at most one per segment, by construction.
        truncated_segments: Segment ids that lost a torn tail.
        empty_segments: Segment ids recovered to header-or-less
            (killed before any record survived).
    """

    segments_scanned: int = 0
    records_kept: int = 0
    torn_records: int = 0
    truncated_segments: list[str] = field(default_factory=list)
    empty_segments: list[str] = field(default_factory=list)


def recover_segment(info: SegmentInfo, report: RecoveryReport) -> None:
    """Scan one segment; truncate its torn tail if it has one."""
    report.segments_scanned += 1
    frames = []
    torn_at: int | None = None
    try:
        for frame in scan_segment(info.path):
            frames.append(frame)
    except FrameError as error:
        if error.kind != "torn":
            raise SpoolCorruptionError(
                info.path, error.offset, str(error)
            ) from None
        torn_at = error.offset
    if frames:
        try:
            check_header(frames[0].payload, str(info.path))
        except ValueError as error:
            raise SpoolCorruptionError(info.path, 0, str(error)) from None
    if torn_at is not None:
        truncate_segment(info.path, torn_at)
        report.torn_records += 1
        report.truncated_segments.append(info.segment_id)
    report.records_kept += max(0, len(frames) - 1)
    if len(frames) <= 1:
        report.empty_segments.append(info.segment_id)


def recover_spool(root: str | Path) -> RecoveryReport:
    """Scan every segment under ``root``; repair torn tails.

    Returns the report; raises :class:`SpoolCorruptionError` on the
    first segment whose damage is not a clean truncation. Sealed and
    open segments are held to the same invariant — a sealed segment
    was fsync'd before its rename, so a torn tail there is unexpected
    but repaired identically (rename-before-fsync reorderings on
    power loss produce exactly that shape).
    """
    report = RecoveryReport()
    for info in list_segments(root):
        recover_segment(info, report)
    return report
