"""Fault profiles: what can go wrong, and how often.

The paper's crawler visited ~100K sites four times under real-world
failure conditions — slow pages, aborted loads, half-open WebSockets —
and measurement crawlers at that scale routinely lose a few percent of
page loads (OpenWPM and the inclusion-tree literature both report
substantial page-failure rates). A :class:`FaultProfile` captures that
failure surface as a set of per-decision probabilities; the
:class:`~repro.faults.injector.FaultInjector` turns a profile into
deterministic, seeded draws.

Every probability defaults to zero, so the default profile (``none``)
is behaviourally identical to running without an injector at all — the
property the zero-fault benchmark pins.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class FaultProfile:
    """Probabilities for every supported fault, zero by default.

    Page-level faults (consumed by the crawler/browser):

    Attributes:
        name: Profile name, stamped into RNG lanes and reports.
        page_failure: Per-attempt probability a page load hard-fails
            before emitting any event (connection refused, DNS error).
        page_stall: Per-top-level-resource probability the load stalls
            long enough to matter (a hung third-party include).
        stall_seconds: ``(low, high)`` simulated-seconds range of one
            stall; long stalls trip the crawler's per-page sim-clock
            deadline and surface as page timeouts.
        site_blackout: Per-(crawl, site) probability the whole site is
            unreachable for the crawl — every page attempt hard-fails,
            which is what drives sites into quarantine.

    CDP event-stream faults (consumed by the
    :class:`~repro.faults.injector.FaultGate` between browser and bus):

    Attributes:
        drop_event: Per-event probability any CDP event is lost.
        drop_response: Extra per-event probability that a
            ``Network.responseReceived`` specifically is lost (the
            record keeps no MIME type).
        orphan_socket: Per-event probability a
            ``Network.webSocketCreated`` is lost, orphaning the rest of
            that socket's lifecycle events.
        reorder_event: Per-event probability delivery is delayed by one
            slot (the event swaps with its successor).

    WebSocket faults (consumed by the browser's socket path):

    Attributes:
        handshake_refusal: Per-socket probability the server refuses
            the upgrade (403 instead of 101, no data frames).
        midstream_close: Per-socket probability the connection closes
            after only a few data frames.
        truncate_frame: Per-frame probability a data frame's payload is
            cut short in transit.

    Spool faults (consumed by the spool's
    :class:`~repro.spool.segment.SegmentWriter` append path; all zero
    in every named profile — the chaos CI job kills the real process,
    and the crash-recovery property tests build custom profiles):

    Attributes:
        spool_disk_full: Per-append probability the spool reports
            ENOSPC before writing — surfaces as a quota hard breach.
        spool_torn_write: Per-append probability the process "dies"
            mid-write, leaving a torn frame prefix on disk.
        spool_crash: Per-append probability the process "dies" right
            after a complete append (the record survives; everything
            after it is lost).
    """

    name: str = "none"
    page_failure: float = 0.0
    page_stall: float = 0.0
    stall_seconds: tuple[float, float] = (45.0, 120.0)
    site_blackout: float = 0.0
    drop_event: float = 0.0
    drop_response: float = 0.0
    orphan_socket: float = 0.0
    reorder_event: float = 0.0
    handshake_refusal: float = 0.0
    midstream_close: float = 0.0
    truncate_frame: float = 0.0
    spool_disk_full: float = 0.0
    spool_torn_write: float = 0.0
    spool_crash: float = 0.0

    @property
    def is_zero(self) -> bool:
        """True when no fault can ever fire (the fast path)."""
        return all(
            getattr(self, f.name) <= 0.0
            for f in fields(self)
            if f.name not in ("name", "stall_seconds")
        )

    @property
    def events_active(self) -> bool:
        """True when any event-stream fault can fire."""
        return (
            self.drop_event > 0.0
            or self.drop_response > 0.0
            or self.orphan_socket > 0.0
            or self.reorder_event > 0.0
        )


NONE_PROFILE = FaultProfile(name="none")

# A realistically unreliable crawl: a few percent of loads misbehave,
# sockets occasionally refuse or die early, the event stream loses the
# odd record. Aggregates must stay within the DESIGN §9 tolerance of a
# fault-free run.
FLAKY_PROFILE = FaultProfile(
    name="flaky",
    page_failure=0.02,
    page_stall=0.004,
    stall_seconds=(45.0, 120.0),
    site_blackout=0.02,
    drop_event=0.002,
    drop_response=0.01,
    orphan_socket=0.02,
    reorder_event=0.005,
    handshake_refusal=0.03,
    midstream_close=0.05,
    truncate_frame=0.02,
)

# A hostile network: the pipeline must still terminate and produce
# well-formed (if heavily degraded) artifacts.
HOSTILE_PROFILE = FaultProfile(
    name="hostile",
    page_failure=0.10,
    page_stall=0.03,
    stall_seconds=(45.0, 180.0),
    site_blackout=0.12,
    drop_event=0.01,
    drop_response=0.05,
    orphan_socket=0.10,
    reorder_event=0.02,
    handshake_refusal=0.12,
    midstream_close=0.20,
    truncate_frame=0.10,
)

PROFILES: dict[str, FaultProfile] = {
    profile.name: profile
    for profile in (NONE_PROFILE, FLAKY_PROFILE, HOSTILE_PROFILE)
}


def profile_named(name: str) -> FaultProfile:
    """Look up a named profile; raises ``KeyError`` with the choices."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown fault profile {name!r}; "
            f"choose from {sorted(PROFILES)}"
        ) from None
