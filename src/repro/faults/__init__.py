"""Deterministic fault injection for the crawl pipeline.

``repro.faults`` models the failure conditions a real measurement
crawl runs under — slow and aborted page loads, lossy CDP event
delivery, half-open WebSockets — as seeded draws on a dedicated RNG
lane, so a faulted study is exactly as reproducible as a clean one.

The package is pure decision logic: injection points live in the
browser, crawler, and event bus, all behind explicit hooks that cost
nothing when no fault can fire. The DET-FAULT lint rule keeps this
package off Python's ``random``/wall-clock APIs so fault plans stay on
the sanctioned :mod:`repro.util.rng` / :mod:`repro.util.simtime` lanes.
"""

from repro.faults.injector import (
    CrawlFault,
    FaultGate,
    FaultInjector,
    PageLoadFailure,
    PageLoadTimeout,
)
from repro.faults.plan import (
    FLAKY_PROFILE,
    HOSTILE_PROFILE,
    NONE_PROFILE,
    PROFILES,
    FaultProfile,
    profile_named,
)

__all__ = [
    "CrawlFault",
    "FaultGate",
    "FaultInjector",
    "FaultProfile",
    "FLAKY_PROFILE",
    "HOSTILE_PROFILE",
    "NONE_PROFILE",
    "PROFILES",
    "PageLoadFailure",
    "PageLoadTimeout",
    "profile_named",
]
