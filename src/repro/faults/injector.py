"""Deterministic fault injection.

The :class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultProfile`
into seeded decisions. All entropy comes from one dedicated
:class:`~repro.util.rng.RngStream` lane (``seed / "faults" / <lane>``),
so fault draws never perturb the crawl's own streams: a study run with
the ``none`` profile is event-for-event identical to one with no
injector installed, and two same-seed runs of any profile make the
same decisions.

Decisions that belong to a stable entity (a page attempt, a socket, a
frame) are keyed child-stream draws, so they do not depend on how many
other decisions happened first. Only the event gate uses a sequential
stream — the event order itself is deterministic, and a keyed draw per
event would put SHA-256 on the hottest path in the pipeline.
"""

from __future__ import annotations

from collections import Counter

from repro.cdp.events import CdpEvent, ResponseReceived, WebSocketCreated
from repro.faults.plan import FaultProfile
from repro.util.rng import RngStream


class CrawlFault(Exception):
    """Base class for injected page-level failures."""

    def __init__(self, url: str, reason: str = "") -> None:
        super().__init__(f"{reason or self.__class__.__name__}: {url}")
        self.url = url


class PageLoadTimeout(CrawlFault):
    """The page's sim-clock load deadline elapsed mid-visit."""


class PageLoadFailure(CrawlFault):
    """The page load hard-failed before emitting any event."""


class FaultInjector:
    """Seeded fault decisions for one crawl.

    Attributes:
        profile: The active fault profile.
        counters: Injected-fault counts by kind (``faults.*`` keys),
            harvested into the metrics registry at crawl end.
    """

    def __init__(
        self, profile: FaultProfile, seed: int, *lane: object,
        event_lane: object | None = None,
    ) -> None:
        self.profile = profile
        self._rng = RngStream(seed, "faults", profile.name, *lane)
        # Entity-keyed draws (pages, sockets, frames) hang off the
        # crawl lane and survive any re-sharding; only the sequential
        # event-gate stream is lane-local, so the parallel executor
        # keys it by shard index (``event_lane``) — the shard plan,
        # not the worker count, then determines every event's fate.
        self._event_rng = (
            self._rng.child("events") if event_lane is None
            else self._rng.child("events", event_lane)
        )
        self.counters: Counter[str] = Counter()
        self._blackouts: dict[tuple[int, str], bool] = {}

    # -- generic keyed draws -------------------------------------------------

    def _decide(self, kind: str, probability: float, *key: object) -> bool:
        """One keyed Bernoulli draw; free when the probability is zero."""
        if probability <= 0.0:
            return False
        return self._rng.child(kind, *key).bernoulli(probability)

    def count(self, kind: str, n: int = 1) -> None:
        """Record an injected fault (``faults.<kind>``)."""
        self.counters[kind] += n

    # -- page-level faults ---------------------------------------------------

    def site_blacked_out(self, crawl: int, domain: str) -> bool:
        """Whether the whole site is unreachable for this crawl."""
        key = (crawl, domain)
        cached = self._blackouts.get(key)
        if cached is None:
            cached = self._decide(
                "blackout", self.profile.site_blackout, crawl, domain
            )
            self._blackouts[key] = cached
        return cached

    def page_fails(self, url: str, crawl: int, attempt: int) -> bool:
        """Whether this page-load attempt hard-fails up front."""
        return self._decide(
            "page-failure", self.profile.page_failure, url, crawl, attempt
        )

    def stall_seconds(
        self, url: str, crawl: int, attempt: int, node_index: int
    ) -> float:
        """Simulated stall before a top-level resource (0.0 = none)."""
        profile = self.profile
        if not self._decide(
            "stall", profile.page_stall, url, crawl, attempt, node_index
        ):
            return 0.0
        low, high = profile.stall_seconds
        return self._rng.child(
            "stall-len", url, crawl, attempt, node_index
        ).uniform(low, high)

    # -- WebSocket faults ----------------------------------------------------

    def refuse_handshake(self, ws_url: str, request_id: str) -> bool:
        """Whether the server refuses this socket's upgrade."""
        return self._decide(
            "handshake", self.profile.handshake_refusal, ws_url, request_id
        )

    def frame_limit(self, ws_url: str, request_id: str) -> int | None:
        """Data-frame budget before a mid-stream close (None = no cap)."""
        if not self._decide(
            "midstream", self.profile.midstream_close, ws_url, request_id
        ):
            return None
        return self._rng.child("midstream-len", ws_url, request_id).randint(1, 4)

    def truncate_frame(self, request_id: str, frame_index: int) -> bool:
        """Whether this data frame's payload is cut short."""
        return self._decide(
            "truncate", self.profile.truncate_frame, request_id, frame_index
        )

    # -- spool faults --------------------------------------------------------

    def spool_disk_full(self, segment_id: str, record_index: int) -> bool:
        """Whether this spool append hits a simulated full disk."""
        if self._decide(
            "spool-full", self.profile.spool_disk_full,
            segment_id, record_index,
        ):
            self.count("spool_disk_full")
            return True
        return False

    def spool_torn_write(self, segment_id: str, record_index: int) -> bool:
        """Whether the process dies mid-append, tearing this frame."""
        if self._decide(
            "spool-torn", self.profile.spool_torn_write,
            segment_id, record_index,
        ):
            self.count("spool_torn_write")
            return True
        return False

    def spool_torn_cut(
        self, segment_id: str, record_index: int, frame_len: int
    ) -> int:
        """How many bytes of a torn frame reach disk (1 … len-1)."""
        return self._rng.child(
            "spool-torn-cut", segment_id, record_index
        ).randint(1, max(1, frame_len - 1))

    def spool_crash(self, segment_id: str, record_index: int) -> bool:
        """Whether the process dies right after a complete append."""
        if self._decide(
            "spool-crash", self.profile.spool_crash,
            segment_id, record_index,
        ):
            self.count("spool_crash")
            return True
        return False

    # -- event-stream faults -------------------------------------------------

    def event_action(self, event: CdpEvent) -> str:
        """Fate of one published CDP event: ``pass``/``drop``/``delay``.

        Sequential draws on the injector's event sub-stream — cheap,
        and deterministic because the publish order is.
        """
        profile = self.profile
        drop = profile.drop_event
        if isinstance(event, ResponseReceived):
            drop += profile.drop_response
        elif isinstance(event, WebSocketCreated):
            drop += profile.orphan_socket
        u = self._event_rng.random()
        if u < drop:
            return "drop"
        if u < drop + profile.reorder_event:
            return "delay"
        return "pass"

    def gate(self, bus) -> "FaultGate | None":
        """A :class:`FaultGate` over ``bus``, or ``None`` when no
        event-stream fault can fire (zero-overhead fast path)."""
        if not self.profile.events_active:
            return None
        return FaultGate(bus, self)


class FaultGate:
    """Sits between the browser and the event bus.

    Drops or reorders events per the injector's decisions. Reordering
    holds one event back and re-emits it after its successor — the
    adjacent-swap disorder a congested DevTools connection produces.
    Only :meth:`publish` is forwarded; observers keep subscribing to
    (and harvesting telemetry from) the real bus underneath.
    """

    def __init__(self, bus, injector: FaultInjector) -> None:
        self.bus = bus
        self.injector = injector
        self._held: CdpEvent | None = None

    def publish(self, event: CdpEvent) -> None:
        injector = self.injector
        action = injector.event_action(event)
        if action == "drop":
            if isinstance(event, ResponseReceived):
                injector.count("response_dropped")
            elif isinstance(event, WebSocketCreated):
                injector.count("socket_orphaned")
            else:
                injector.count("event_dropped")
            return
        if action == "delay" and self._held is None:
            self._held = event
            injector.count("event_reordered")
            return
        self.bus.publish(event)
        if self._held is not None:
            held, self._held = self._held, None
            self.bus.publish(held)

    def flush(self) -> None:
        """Emit any held event (call at the end of each page visit)."""
        if self._held is not None:
            held, self._held = self._held, None
            self.bus.publish(held)
