"""Post-hoc filter-list evaluation over inclusion chains (§4.2).

Runs one crawl, derives the A&A labels, then asks the paper's question:
of the inclusion chains leading to A&A WebSockets, how many contain a
script EasyList/EasyPrivacy would have blocked? (Paper: ~5%, versus
~27% of all A&A chains — blocking the socket itself was the only
defence while the WRB was live.)

Run:  python examples/filter_list_evaluation.py
"""

from repro.analysis.blocking import compute_blocking_stats
from repro.analysis.classify import classify_sockets
from repro.analysis.report import render_blocking
from repro.crawler.crawler import CrawlConfig, Crawler
from repro.crawler.dataset import StudyDataset
from repro.net.http import ResourceType
from repro.web.filterlists import build_filter_engine
from repro.web.server import SyntheticWeb, WebScale


def main() -> None:
    web = SyntheticWeb(scale=WebScale(sample_scale=0.004, entity_scale=0.05))
    engine = build_filter_engine(web.registry)
    print(f"Synthetic EasyList + EasyPrivacy: {engine.rule_count} rules\n")

    dataset = StudyDataset(engine=engine)
    config = CrawlConfig(index=0, label="Apr 02-05, 2017", chrome_major=57,
                         start_date="2017-04-02", pages_per_site=8)
    print("Crawling (one pre-patch crawl)…")
    summary = Crawler(web, config, observers=[dataset.observe]).run()
    dataset.record_crawl(summary)
    print(f"  {summary.sites_visited} sites, {summary.pages_visited} pages, "
          f"{summary.sockets_observed} sockets\n")

    labeler = dataset.derive_labeler()
    resolver = dataset.derive_resolver(labeler)
    print(f"Derived A&A domain set: {len(labeler)} second-level domains "
          f"(a(d) ≥ 0.1·n(d))")
    print(f"Cloudfront tenants mapped: {len(resolver.cloudfront_mapping)}")
    for host, tenant in sorted(resolver.cloudfront_mapping.items())[:5]:
        print(f"  {host} → {tenant}")
    print()

    views = classify_sockets(dataset, labeler, resolver)
    stats = compute_blocking_stats(dataset, views, labeler, resolver)
    print(render_blocking(stats))

    # Show a few concrete unblockable socket chains.
    print("\nExample A&A sockets whose chains no list rule touches:")
    shown = 0
    for view in views:
        if not view.is_aa_socket or shown >= 5:
            continue
        blocked = any(
            engine.would_block(url, ResourceType.SCRIPT,
                               "https://publisher-context.example/")
            for url in view.record.chain_script_urls
        )
        if not blocked:
            chain = " → ".join(view.record.chain_hosts)
            print(f"  {chain}")
            shown += 1

    print("""
Interpretation: the initiating scripts of chat, analytics, and replay
sockets are functional code no list blocks — so while the webRequest
bug was live, these information flows were unstoppable by extensions.""")


if __name__ == "__main__":
    main()
