"""Infer each receiver's business model from its wire behaviour.

§4.2 of the paper sorts the A&A WebSocket receivers into session
replay, live chat, real-time infrastructure, and advertising — by
manual inspection. This example derives the same taxonomy purely from
what flows over the sockets: DOM uploads mark replay services, HTML
bubbles mark chat/comments, ad units mark ad servers, fingerprint
batches mark trackers.

Run:  python examples/service_taxonomy.py
"""

from repro.analysis.ads import compute_ad_delivery, render_ad_delivery
from repro.analysis.classify import classify_sockets
from repro.analysis.services import profile_receivers, render_service_taxonomy
from repro.crawler.crawler import CrawlConfig, Crawler
from repro.crawler.dataset import StudyDataset
from repro.web.filterlists import build_filter_engine
from repro.web.server import SyntheticWeb, WebScale


def main() -> None:
    web = SyntheticWeb(scale=WebScale(sample_scale=0.002, entity_scale=0.05))
    dataset = StudyDataset(engine=build_filter_engine(web.registry))
    config = CrawlConfig(index=0, label="Apr 02-05, 2017", chrome_major=57,
                         start_date="2017-04-02", pages_per_site=8)
    print("Crawling the socket-hosting publishers…")
    summary = Crawler(web, config, observers=[dataset.observe]).run(
        web.plan.placed_sites
    )
    dataset.record_crawl(summary)
    print(f"  {summary.sockets_observed} sockets on "
          f"{summary.sites_visited} sites\n")

    views = classify_sockets(dataset)
    profiles = profile_receivers(views)
    print("Inferred service taxonomy (from socket behaviour alone):")
    print(render_service_taxonomy(profiles))

    print("\nPer-receiver behaviour profiles:")
    header = (f"{'receiver':24s} {'sockets':>7s} {'HTML':>6s} {'DOM':>6s} "
              f"{'FP':>6s} {'ads':>6s} {'cookie':>7s}  role")
    print(header)
    print("-" * len(header))
    for profile in sorted(profiles.values(), key=lambda p: -p.sockets)[:14]:
        print(f"{profile.receiver_domain:24s} {profile.sockets:7d} "
              f"{profile.html_share:6.0%} {profile.dom_share:6.0%} "
              f"{profile.fingerprint_share:6.0%} {profile.ad_unit_share:6.0%} "
              f"{profile.cookie_share:7.0%}  {profile.inferred_role}")

    print("\n" + render_ad_delivery(
        compute_ad_delivery(views, dataset.engine)
    ))


if __name__ == "__main__":
    main()
