"""Session-replay audit: who receives your DOM, and what's inside it.

The paper found Hotjar, LuckyOrange, and TruConversion serializing the
*entire DOM* of pages into WebSocket frames (§4.3) — including search
queries and unsent messages. This example crawls the synthetic web's
session-replay customers and audits every socket for DOM exfiltration.

Run:  python examples/session_replay_audit.py
"""

import re

from repro.browser import Browser
from repro.cdp import EventBus
from repro.content.items import SentItem
from repro.content.sent import SentDataAnalyzer
from repro.inclusion import InclusionTreeBuilder
from repro.net.domains import registrable_domain
from repro.web.server import SyntheticWeb, WebScale

SENSITIVE_RE = re.compile(
    r'<input type="search"[^>]*value="([^"]+)"|<textarea[^>]*>([^<]+)</textarea>'
)


def main() -> None:
    web = SyntheticWeb(scale=WebScale(sample_scale=0.002, entity_scale=0.05))
    analyzer = SentDataAnalyzer()

    replay_sites = [
        sp.site for sp in web.plan.site_plans.values()
        if any(d.profile in ("session_replay", "event_replay")
               for d in sp.deployments)
    ]
    print(f"Auditing {len(replay_sites)} publishers with session-replay "
          f"deployments…\n")

    dom_uploads = 0
    sensitive_leaks = []
    receivers = {}
    browser = Browser(version=57, bus=EventBus())
    for site in replay_sites:
        browser.new_profile(site.domain)
        for page_index in range(6):
            builder = InclusionTreeBuilder()
            builder.attach(browser.bus)
            browser.visit(web.blueprint(site, page_index, crawl=0), crawl=0)
            builder.detach()
            for ws_node in builder.result().websockets:
                items = analyzer.analyze_socket(ws_node.websocket)
                if SentItem.DOM not in items:
                    continue
                dom_uploads += 1
                receiver = registrable_domain(
                    ws_node.websocket.url.split("//")[1].split("/")[0]
                )
                receivers[receiver] = receivers.get(receiver, 0) + 1
                for frame in ws_node.websocket.sent_frames:
                    for match in SENSITIVE_RE.finditer(frame.payload):
                        leak = match.group(1) or match.group(2)
                        sensitive_leaks.append((site.domain, receiver, leak))

    print(f"DOM snapshots uploaded over WebSockets: {dom_uploads}")
    print("Receivers of serialized DOMs:")
    for receiver, count in sorted(receivers.items(), key=lambda kv: -kv[1]):
        print(f"  {receiver:24s} {count} uploads")

    print(f"\nSensitive content found inside uploaded DOMs "
          f"({len(sensitive_leaks)} instances):")
    for domain, receiver, leak in sensitive_leaks[:10]:
        print(f"  {domain} → {receiver}: {leak.strip()!r}")
    if not sensitive_leaks:
        print("  (none in this sample — re-run with a larger scale)")

    print("""
These uploads are what §4.3 calls DOM Exfiltration: 'the DOM is
potentially very privacy-sensitive, as it may reveal search queries,
unsent messages, etc., within the given webpage' — and pre-Chrome-58,
no blocking extension could interpose on the channel carrying it.""")


if __name__ == "__main__":
    main()
