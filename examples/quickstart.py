"""Quickstart: crawl a few sites and look at what the pipeline sees.

Builds a small synthetic web, visits one publisher that embeds a
live-chat widget, prints the inclusion tree (the paper's Figure 2
structure), and shows the WebSocket traffic the crawler observed —
including the webRequest-bug timeline the study revolves around.

Run:  python examples/quickstart.py
"""

from repro.browser import Browser
from repro.cdp import EventBus
from repro.inclusion import InclusionTreeBuilder
from repro.inclusion.node import NodeKind
from repro.web.server import SyntheticWeb, WebScale

WRB_TIMELINE = """
The webRequest Bug (WRB) timeline — Figure 1 of the paper:
  2012-05  Chromium issue 129353 filed: WebSockets don't trigger
           chrome.webRequest.onBeforeRequest
  2014-11  AdBlock Plus users report unblockable ads (Chrome only)
  2016-08  EasyList / uBlock Origin users observe WebSocket ads
  2016-11  Pornhub caught serving ads via WebSockets
  2017-04  * first two measurement crawls (Chrome 57, bug live)
  2017-04-19  Chrome 58 ships the fix
  2017-05, 2017-10  * two post-patch crawls (Chrome 58)
"""


def print_tree(node, indent=0):
    marker = {"document": "□", "resource": "·", "websocket": "⇄"}[node.kind.value]
    label = node.url or "(inline script)"
    print(f"{'  ' * indent}{marker} {label}")
    for child in node.children:
        print_tree(child, indent + 1)


def main() -> None:
    print(WRB_TIMELINE)

    print("Building a small synthetic web (this is 'the internet')…")
    web = SyntheticWeb(scale=WebScale(sample_scale=0.002, entity_scale=0.03))
    print(f"  seed list: {web.site_count} publishers; "
          f"{len(web.plan.site_plans)} host WebSockets\n")

    # Visit a publisher whose own inline script bootstraps Intercom
    # (one of the recognizable first parties from Table 4).
    domain = "acenterforrecovery.com"
    site = web.plan.site_plans[domain].site
    bus = EventBus()
    browser = Browser(version=57, bus=bus)  # pre-patch Chrome
    builder = InclusionTreeBuilder()
    builder.attach(bus)
    result = browser.visit(web.blueprint(site, 0, crawl=0))
    builder.detach()
    tree = builder.result()

    print(f"Visited {tree.root.url} with Chrome {browser.version}:")
    print(f"  {result.requests} HTTP requests, "
          f"{result.sockets_opened} WebSockets, "
          f"{result.frames_sent}/{result.frames_received} frames sent/received\n")

    print("Inclusion tree (□ document, · resource, ⇄ WebSocket):")
    print_tree(tree.root)

    for ws_node in tree.websockets:
        record = ws_node.websocket
        print(f"\nWebSocket to {record.url}")
        print(f"  initiated by: {ws_node.parent.url or '(inline script)'} ")
        print(f"  handshake Cookie: "
              f"{record.handshake_headers.get('Cookie', '(none)')}")
        for frame in record.frames[:4]:
            direction = "→" if frame.sent else "←"
            print(f"  {direction} {frame.payload[:90]}")


if __name__ == "__main__":
    main()
