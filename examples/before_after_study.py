"""Before/after the Chrome 58 patch: who stopped using WebSockets?

Runs the first (Apr 2017, Chrome 57) and last (Oct 2017, Chrome 58)
crawls and diffs the A&A initiator populations — reproducing the
paper's finding that 56 A&A initiators (including DoubleClick,
Facebook, and AddThis) disappeared, while receiver-side services whose
products *depend* on WebSockets carried on.

Run:  python examples/before_after_study.py
"""

from collections import Counter

from repro.analysis.classify import classify_sockets
from repro.experiments import StudyConfig
from repro.experiments.runner import SyntheticWeb, WebScale, run_crawls
from repro.net.domains import display_name


def main() -> None:
    config = StudyConfig(scale=0.05, sample_scale=0.004, pages_per_site=8,
                         crawls=(0, 3), name="before-after")
    web = SyntheticWeb(
        scale=WebScale(sample_scale=config.resolved_sample_scale,
                       entity_scale=config.scale),
        seed=config.seed,
    )
    print("Crawling twice: Apr 2017 (Chrome 57) and Oct 2017 (Chrome 58)…")
    dataset, summaries = run_crawls(web, config)
    for summary in summaries:
        print(f"  {summary.config.label}: {summary.sockets_observed} sockets "
              f"on {summary.sites_visited} sites "
              f"(Chrome {summary.config.chrome_major})")

    views = classify_sockets(dataset)
    before = {v.initiator_domain for v in views if v.crawl == 0 and v.aa_initiated}
    after = {v.initiator_domain for v in views if v.crawl == 3 and v.aa_initiated}

    gone, stayed, new = before - after, before & after, after - before
    print(f"\nA&A initiators before: {len(before)}   after: {len(after)}")
    print(f"Disappeared after the patch: {len(gone)}")

    majors = {"doubleclick.net", "facebook.net", "google.com", "addthis.com",
              "googlesyndication.com", "adnxs.com", "sharethis.com",
              "twitter.com"}
    print("\nMajor ad platforms that stopped initiating WebSockets:")
    for domain in sorted(gone & majors):
        print(f"  ✗ {display_name(domain)}")
    print(f"…plus {len(gone - majors)} long-tail ad-tech initiators.")

    print("\nPersistent initiators (WebSocket-dependent services):")
    for domain in sorted(stayed)[:12]:
        print(f"  ✓ {display_name(domain)}")

    # Did the overall A&A share change? (The paper: essentially no.)
    shares = {}
    for crawl in (0, 3):
        crawl_views = [v for v in views if v.crawl == crawl]
        aa = sum(1 for v in crawl_views if v.aa_initiated)
        shares[crawl] = 100.0 * aa / len(crawl_views) if crawl_views else 0.0
    print(f"\nShare of sockets initiated by A&A domains: "
          f"{shares[0]:.1f}% before → {shares[3]:.1f}% after")

    receivers = Counter(
        v.receiver_domain for v in views if v.crawl == 3 and v.aa_received
    )
    print("\nTop A&A receivers still active in Oct 2017:")
    for domain, count in receivers.most_common(6):
        print(f"  {display_name(domain):16s} {count} sockets")

    print("""
As in §6 of the paper: the majors' retreat right after the patch is
'an odd coincidence' the observational design cannot explain causally —
but chat/comments/replay services kept using WebSockets, because for
them the protocol is the product, not a blocker-evasion channel.""")


if __name__ == "__main__":
    main()
