"""The webRequest bug, demonstrated: one page, four browser setups.

Loads the same ad-supported page in:

1. stock Chrome 57            — everything loads (the crawls' condition);
2. Chrome 57 + ad blocker     — HTTP ads blocked, the WebSocket SLIPS
                                THROUGH (Chromium issue 129353);
3. Chrome 58 + ad blocker     — the patch lets the blocker cancel it;
4. Chrome 58 + a blocker with http://*-only URL patterns — the socket
   slips through again (the extension pitfall Franken et al. found).

Run:  python examples/wrb_circumvention.py
"""

from repro.browser import Browser
from repro.extension.adblocker import AdBlockerExtension
from repro.filters import FilterEngine, parse_filter_list
from repro.net.http import ResourceType
from repro.web.blueprint import PageBlueprint, ResourceNode, SocketPlan

FILTER_LIST = """\
[Adblock Plus 2.0]
! ads and trackers on this page
||adnetwork.example^$third-party
||tracker.example^$websocket
"""


def build_page() -> PageBlueprint:
    """An ad-supported page: a display ad via HTTP, tracking via WS."""
    ad_script = ResourceNode(url="https://cdn.adnetwork.example/ads/tag.js")
    ad_script.children.append(ResourceNode(
        url="https://cdn.adnetwork.example/ads/banner.png",
        resource_type=ResourceType.IMAGE, mime_type="image/png",
    ))
    # The sneaky part: an unlisted helper script opens a WebSocket to a
    # listed tracker — only the socket itself is blockable.
    helper = ResourceNode(url="https://static.helpercdn.example/loader.js")
    helper.sockets.append(SocketPlan(
        ws_url="wss://rt.tracker.example/collect", profile="fingerprint",
    ))
    return PageBlueprint(
        url="https://publisher.example/",
        resources=[ad_script, helper],
        dom_html="<html><body>news</body></html>",
    )


def load(version: int, with_blocker: bool, websocket_aware: bool = True):
    browser = Browser(version=version)
    blocker = None
    if with_blocker:
        engine = FilterEngine([parse_filter_list("easylist", FILTER_LIST)])
        blocker = AdBlockerExtension(engine, websocket_aware=websocket_aware,
                                     keep_blocked_urls=True)
        blocker.install(browser.webrequest)
    result = browser.visit(build_page())
    return result, blocker, browser


def describe(title, result, blocker, browser):
    print(f"\n{title}")
    print(f"  HTTP requests: {result.requests} "
          f"(blocked: {result.blocked_requests})")
    print(f"  WebSockets opened: {result.sockets_opened} "
          f"(blocked: {result.sockets_blocked})")
    if browser.webrequest.suppressed_by_wrb:
        print(f"  ⚠ webRequest bug suppressed "
              f"{browser.webrequest.suppressed_by_wrb} onBeforeRequest "
              f"dispatch(es) for WebSockets")
    if blocker and blocker.stats.blocked_urls:
        for url in blocker.stats.blocked_urls:
            print(f"  ✂ blocked: {url}")


def main() -> None:
    describe("1) Stock Chrome 57 — no blocker",
             *load(version=57, with_blocker=False))
    describe("2) Chrome 57 + ad blocker — the WRB circumvention",
             *load(version=57, with_blocker=True))
    describe("3) Chrome 58 + ad blocker — patched",
             *load(version=58, with_blocker=True))
    describe("4) Chrome 58 + blocker with http://*-only patterns",
             *load(version=58, with_blocker=True, websocket_aware=False))

    print("""
Summary: before Chrome 58 (2017-04-19), a blocker could cancel the ad
images but never even saw the WebSocket handshake — fingerprinting data
flowed to the tracker regardless. After the patch the socket is
blockable, but only if the extension registered ws://*/wss://* URL
patterns.""")


if __name__ == "__main__":
    main()
