"""Crawler robustness under injected faults: retry, timeout, quarantine."""

import dataclasses

import pytest

from repro.cli import _study_exit_code
from repro.crawler import CrawlConfig, Crawler, CrawlRunSummary, RetryPolicy
from repro.crawler.persistence import CrawlCheckpoint
from repro.faults import (
    FLAKY_PROFILE,
    NONE_PROFILE,
    FaultInjector,
    FaultProfile,
)

CONFIG = CrawlConfig(index=0, label="Apr 02-05, 2017", chrome_major=57,
                     start_date="2017-04-02", pages_per_site=4)


@pytest.fixture(scope="module")
def sites(tiny_web):
    """A small site sample guaranteed to include socket hosts."""
    socket_domains = list(tiny_web.plan.site_plans)[:10]
    plain = [s for s in tiny_web.seed_list.sites
             if s.domain not in tiny_web.plan.site_plans][:20]
    return [tiny_web.site(d) for d in socket_domains] + plain


def _summary_key(summary: CrawlRunSummary):
    return (summary.sites_visited, summary.pages_visited,
            summary.sockets_observed, summary.events_published,
            summary.pages_failed, summary.page_retries,
            summary.sites_quarantined, summary.sockets_partial,
            summary.errors, summary.sites)


def _run(tiny_web, sites, profile=None, retry=None, observers=(),
         checkpoint=None):
    injector = (FaultInjector(profile, CONFIG.seed, CONFIG.index)
                if profile is not None else None)
    crawler = Crawler(tiny_web, CONFIG, observers=observers,
                      faults=injector, retry=retry)
    return crawler.run(sites=sites, checkpoint=checkpoint), injector


def test_none_profile_matches_no_injector(tiny_web, sites):
    clean, _ = _run(tiny_web, sites)
    gated, injector = _run(tiny_web, sites, NONE_PROFILE)
    assert _summary_key(clean) == _summary_key(gated)
    assert not injector.counters
    assert clean.errors == {}


def test_flaky_run_is_deterministic(tiny_web, sites):
    first, _ = _run(tiny_web, sites, FLAKY_PROFILE)
    second, _ = _run(tiny_web, sites, FLAKY_PROFILE)
    assert _summary_key(first) == _summary_key(second)


def test_blackout_quarantines_every_site(tiny_web, sites):
    profile = FaultProfile(name="dark", site_blackout=1.0)
    summary, injector = _run(tiny_web, sites[:5], profile)
    # Sites stay in the denominators but every page exhausts retries.
    assert summary.sites_visited == 5
    assert summary.pages_visited == 0
    assert summary.sites_quarantined == 5
    assert summary.errors["retry_exhausted"] > 0
    assert summary.errors["site_quarantined"] == 5
    assert injector.counters["site_quarantined"] == 5
    # Quarantine cut the site short: fewer failures than the full
    # page budget would produce.
    assert summary.pages_failed == 5 * RetryPolicy().quarantine_after


def test_stalls_trip_the_page_deadline(tiny_web, sites):
    profile = FaultProfile(name="molasses", page_stall=1.0,
                           stall_seconds=(200.0, 300.0))
    retry = RetryPolicy(page_timeout_seconds=90.0)
    summary, _ = _run(tiny_web, sites[:4], profile, retry=retry)
    assert summary.errors["page_timeout"] > 0
    assert summary.pages_visited == 0  # every load stalls past 90 s


def test_generous_deadline_tolerates_stalls(tiny_web, sites):
    profile = FaultProfile(name="molasses", page_stall=1.0,
                           stall_seconds=(200.0, 300.0))
    retry = RetryPolicy(page_timeout_seconds=0.0)  # deadline disabled
    summary, _ = _run(tiny_web, sites[:4], profile, retry=retry)
    assert summary.pages_failed == 0
    assert "page_timeout" not in summary.errors


def test_transient_failures_recover_via_retry(tiny_web, sites):
    profile = FaultProfile(name="coinflip", page_failure=0.5)
    summary, _ = _run(tiny_web, sites, profile)
    assert summary.page_retries > 0
    assert summary.pages_visited > 0
    assert summary.errors["page_failure"] > summary.errors.get(
        "retry_exhausted", 0
    )


def test_refused_handshakes_still_observed(tiny_web, sites):
    profile = FaultProfile(name="refuse", handshake_refusal=1.0)
    clean, _ = _run(tiny_web, sites)
    summary, injector = _run(tiny_web, sites, profile)
    assert injector.counters["handshake_refused"] > 0
    # The socket node still exists (created + 403 + closed): the
    # observation layer keeps the endpoint even though no frames flow.
    assert summary.sockets_observed == clean.sockets_observed
    assert summary.pages_visited == clean.pages_visited


def test_orphaned_sockets_counted_not_fatal(tiny_web, sites):
    profile = FaultProfile(name="orphan", orphan_socket=1.0)
    summary, injector = _run(tiny_web, sites, profile)
    assert injector.counters["socket_orphaned"] > 0
    assert summary.sockets_observed == 0
    assert summary.errors["unattributed_event"] > 0


def test_checkpoint_resume_replays_completed_sites(tiny_web, sites, tmp_path):
    path = tmp_path / "ckpt.jsonl"
    seen_first: list = []
    first, _ = _run(tiny_web, sites, FLAKY_PROFILE,
                    observers=[seen_first.append],
                    checkpoint=CrawlCheckpoint(path))
    assert seen_first  # the first run actually crawled
    journal_bytes = path.read_bytes()
    seen_second: list = []
    second, _ = _run(tiny_web, sites, FLAKY_PROFILE,
                     observers=[seen_second.append],
                     checkpoint=CrawlCheckpoint(path))
    # Nothing was re-crawled (the journal gained no entries), but every
    # journaled observation replayed into the observers in order — so a
    # resumed study's dataset matches an uninterrupted one.
    assert path.read_bytes() == journal_bytes
    assert seen_second == seen_first
    assert _summary_key(second) == _summary_key(first)


def test_checkpoint_partial_resume_continues(tiny_web, sites, tmp_path):
    path = tmp_path / "ckpt.jsonl"
    full, _ = _run(tiny_web, sites, FLAKY_PROFILE)
    _run(tiny_web, sites[:3], FLAKY_PROFILE,
         checkpoint=CrawlCheckpoint(path))  # interrupt after 3 sites
    resumed, _ = _run(tiny_web, sites, FLAKY_PROFILE,
                      checkpoint=CrawlCheckpoint(path))
    assert resumed.sites == full.sites
    assert resumed.pages_visited == full.pages_visited
    assert len(CrawlCheckpoint(path)) == len(sites)


def test_exit_code_flags_total_degradation():
    healthy = CrawlRunSummary(config=CONFIG, sites_visited=5,
                              pages_visited=20)
    dead = CrawlRunSummary(config=CONFIG, sites_visited=5, pages_visited=0)
    assert _study_exit_code([healthy]) == 0
    assert _study_exit_code([healthy, dead]) == 3
    assert _study_exit_code([]) == 0


def test_retry_policy_defaults():
    policy = RetryPolicy()
    assert policy.max_attempts == 3
    assert policy.quarantine_after == 2
    assert dataclasses.replace(policy, max_attempts=1).max_attempts == 1
