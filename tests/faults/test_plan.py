"""Tests for fault profiles."""

import dataclasses

import pytest

from repro.faults import (
    FLAKY_PROFILE,
    HOSTILE_PROFILE,
    NONE_PROFILE,
    PROFILES,
    FaultProfile,
    profile_named,
)


def test_named_profiles_cover_the_cli_choices():
    assert set(PROFILES) == {"none", "flaky", "hostile"}
    assert profile_named("none") is NONE_PROFILE
    assert profile_named("flaky") is FLAKY_PROFILE
    assert profile_named("hostile") is HOSTILE_PROFILE


def test_unknown_profile_names_the_choices():
    with pytest.raises(KeyError, match="flaky"):
        profile_named("chaotic")


def test_none_profile_is_zero():
    assert NONE_PROFILE.is_zero
    assert not NONE_PROFILE.events_active
    assert FaultProfile().is_zero


def test_flaky_and_hostile_are_not_zero():
    assert not FLAKY_PROFILE.is_zero
    assert not HOSTILE_PROFILE.is_zero
    assert FLAKY_PROFILE.events_active
    assert HOSTILE_PROFILE.events_active


def test_hostile_is_at_least_as_harsh_as_flaky():
    for knob in ("page_failure", "page_stall", "site_blackout",
                 "drop_event", "drop_response", "orphan_socket",
                 "handshake_refusal", "midstream_close", "truncate_frame"):
        assert getattr(HOSTILE_PROFILE, knob) >= getattr(FLAKY_PROFILE, knob)


def test_events_active_tracks_only_stream_knobs():
    page_only = FaultProfile(name="pages", page_failure=0.5,
                             handshake_refusal=0.5)
    assert not page_only.is_zero
    assert not page_only.events_active
    stream_only = FaultProfile(name="stream", drop_event=0.1)
    assert stream_only.events_active


def test_profiles_are_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        FLAKY_PROFILE.page_failure = 1.0
