"""Tests for the seeded fault injector and its event gate."""

from repro.cdp.events import (
    ResponseReceived,
    ScriptParsed,
    WebSocketClosed,
    WebSocketCreated,
)
from repro.faults import (
    FLAKY_PROFILE,
    NONE_PROFILE,
    FaultGate,
    FaultInjector,
    FaultProfile,
)


class _ListBus:
    def __init__(self):
        self.events = []

    def publish(self, event):
        self.events.append(event)


def _decisions(injector):
    """A reproducible transcript of every decision surface."""
    return (
        [injector.page_fails(f"https://s{i}.com/", 0, 1) for i in range(50)],
        [injector.site_blacked_out(0, f"s{i}.com") for i in range(50)],
        [injector.refuse_handshake(f"wss://rt{i}.com/", f"r{i}")
         for i in range(50)],
        [injector.frame_limit(f"wss://rt{i}.com/", f"r{i}")
         for i in range(50)],
        [injector.stall_seconds(f"https://s{i}.com/", 0, 1, 0)
         for i in range(50)],
    )


def test_same_seed_same_decisions():
    a = FaultInjector(FLAKY_PROFILE, 2017, 0)
    b = FaultInjector(FLAKY_PROFILE, 2017, 0)
    assert _decisions(a) == _decisions(b)


def test_decisions_are_keyed_not_sequential():
    """Entity-keyed draws don't depend on unrelated earlier draws."""
    a = FaultInjector(FLAKY_PROFILE, 2017, 0)
    b = FaultInjector(FLAKY_PROFILE, 2017, 0)
    for i in range(100):  # perturb b with extra unrelated draws
        b.refuse_handshake(f"wss://other{i}.com/", f"x{i}")
    assert a.page_fails("https://site.com/", 0, 1) == \
        b.page_fails("https://site.com/", 0, 1)
    assert a.site_blacked_out(0, "site.com") == \
        b.site_blacked_out(0, "site.com")


def test_lanes_are_independent():
    lane0 = _decisions(FaultInjector(FLAKY_PROFILE, 2017, 0))
    lane1 = _decisions(FaultInjector(FLAKY_PROFILE, 2017, 1))
    assert lane0 != lane1


def test_none_profile_never_fires():
    injector = FaultInjector(NONE_PROFILE, 2017, 0)
    pages, blackouts, refusals, limits, stalls = _decisions(injector)
    assert not any(pages)
    assert not any(blackouts)
    assert not any(refusals)
    assert all(limit is None for limit in limits)
    assert all(stall == 0.0 for stall in stalls)
    assert not injector.counters
    assert injector.gate(_ListBus()) is None


def test_flaky_profile_fires_sometimes():
    injector = FaultInjector(FLAKY_PROFILE, 2017, 0)
    refusals = [injector.refuse_handshake(f"wss://rt{i}.com/", f"r{i}")
                for i in range(500)]
    assert any(refusals)
    assert not all(refusals)


def test_frame_limit_is_small_and_positive():
    profile = FaultProfile(name="always-close", midstream_close=1.0)
    injector = FaultInjector(profile, 2017, 0)
    for i in range(50):
        limit = injector.frame_limit(f"wss://rt{i}.com/", f"r{i}")
        assert 1 <= limit <= 4


def test_stall_seconds_within_profile_range():
    profile = FaultProfile(name="always-stall", page_stall=1.0,
                           stall_seconds=(45.0, 120.0))
    injector = FaultInjector(profile, 2017, 0)
    for i in range(50):
        stall = injector.stall_seconds(f"https://s{i}.com/", 0, 1, i)
        assert 45.0 <= stall <= 120.0


# -- the event gate -------------------------------------------------------


def _script(i):
    return ScriptParsed(timestamp=float(i), script_id=str(i),
                        url=f"https://s.com/{i}.js")


def test_gate_drops_events_and_counts_by_kind():
    profile = FaultProfile(name="drop-all", drop_event=1.0)
    injector = FaultInjector(profile, 2017, 0)
    bus = _ListBus()
    gate = FaultGate(bus, injector)
    gate.publish(_script(1))
    gate.publish(ResponseReceived(timestamp=0.0, request_id="r1"))
    gate.publish(WebSocketCreated(timestamp=0.0, request_id="ws1"))
    assert bus.events == []
    assert injector.counters["event_dropped"] == 1
    assert injector.counters["response_dropped"] == 1
    assert injector.counters["socket_orphaned"] == 1


def test_gate_reorders_adjacent_events():
    profile = FaultProfile(name="reorder-all", reorder_event=1.0)
    injector = FaultInjector(profile, 2017, 0)
    bus = _ListBus()
    gate = FaultGate(bus, injector)
    first, second = _script(1), _script(2)
    gate.publish(first)
    assert bus.events == []  # held back
    gate.publish(second)
    assert bus.events == [second, first]  # adjacent swap
    assert injector.counters["event_reordered"] == 1


def test_gate_flush_emits_held_event():
    profile = FaultProfile(name="reorder-all", reorder_event=1.0)
    injector = FaultInjector(profile, 2017, 0)
    bus = _ListBus()
    gate = FaultGate(bus, injector)
    held = _script(1)
    gate.publish(held)
    assert bus.events == []
    gate.flush()
    assert bus.events == [held]
    gate.flush()  # idempotent
    assert bus.events == [held]


def test_gate_passes_through_with_zero_stream_probs():
    profile = FaultProfile(name="pages-only", page_failure=0.9)
    injector = FaultInjector(profile, 2017, 0)
    assert injector.gate(_ListBus()) is None  # no stream faults → no gate
    bus = _ListBus()
    gate = FaultGate(bus, injector)  # even built by hand, all passes
    events = [_script(i) for i in range(10)]
    for event in events:
        gate.publish(event)
    assert bus.events == events


def test_gate_orphans_socket_lifecycles():
    """Dropping webSocketCreated leaves later lifecycle events stray."""
    profile = FaultProfile(name="orphan-all", orphan_socket=1.0)
    injector = FaultInjector(profile, 2017, 0)
    bus = _ListBus()
    gate = FaultGate(bus, injector)
    gate.publish(WebSocketCreated(timestamp=0.0, request_id="ws1"))
    gate.publish(WebSocketClosed(timestamp=1.0, request_id="ws1"))
    assert [type(e).__name__ for e in bus.events] == ["WebSocketClosed"]
    assert injector.counters["socket_orphaned"] == 1
