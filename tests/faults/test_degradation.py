"""Graceful degradation: a moderately faulted study stays analyzable.

The contract documented in DESIGN.md §9: under the ``flaky`` profile
the Table 1–5 pipeline completes without raising, denominators are
unchanged (quarantined sites still count), page coverage stays ≥ 90%,
and socket-level aggregates stay within 30% relative of the fault-free
run. Fault artifacts (trace + metrics) are byte-identical across
same-seed runs.
"""

import dataclasses

import pytest

from repro.analysis.table1 import compute_table1
from repro.analysis.classify import classify_sockets
from repro.experiments.runner import analyze, run_crawls
from repro.obs import Obs, write_metrics, write_trace
from tests.conftest import TINY_STUDY_CONFIG

FLAKY_CONFIG = dataclasses.replace(TINY_STUDY_CONFIG, faults="flaky",
                                   name="test-flaky")


@pytest.fixture(scope="module")
def flaky_study(tiny_web):
    """The tiny study rerun under the flaky fault profile."""
    dataset, summaries = run_crawls(tiny_web, FLAKY_CONFIG)
    return analyze(FLAKY_CONFIG, tiny_web, dataset, summaries)


def test_flaky_study_completes_with_nonzero_fault_counters(flaky_study):
    total_retries = sum(s.page_retries for s in flaky_study.summaries)
    total_quarantined = sum(s.sites_quarantined
                            for s in flaky_study.summaries)
    assert total_retries > 0
    assert total_quarantined > 0
    assert all(s.errors for s in flaky_study.summaries)


def test_denominators_survive_faults(tiny_study, flaky_study):
    """Quarantined sites still count: Table 1 site columns match."""
    clean = {row.label: row.sites_crawled for row in tiny_study.table1}
    flaky = {row.label: row.sites_crawled for row in flaky_study.table1}
    assert clean == flaky


def test_page_coverage_stays_high(tiny_study, flaky_study):
    for clean, faulted in zip(tiny_study.summaries, flaky_study.summaries):
        assert faulted.pages_visited >= 0.9 * clean.pages_visited


def test_socket_aggregates_within_tolerance(tiny_study, flaky_study):
    clean = len(tiny_study.views)
    faulted = len(flaky_study.views)
    assert clean > 0
    assert abs(faulted - clean) / clean <= 0.30
    clean_aa = sum(1 for v in tiny_study.views if v.is_aa_socket)
    faulted_aa = sum(1 for v in flaky_study.views if v.is_aa_socket)
    if clean_aa:
        assert abs(faulted_aa - clean_aa) / clean_aa <= 0.30


def test_tables_compute_on_partial_data(flaky_study):
    """Every downstream artifact exists — nothing raised mid-pipeline."""
    assert flaky_study.table1
    assert flaky_study.table4.self_pair_sockets >= 0
    assert flaky_study.figure3 is not None
    assert flaky_study.blocking is not None
    labeler = flaky_study.labeler
    views = classify_sockets(flaky_study.dataset, labeler,
                             flaky_study.resolver)
    table1 = compute_table1(views, flaky_study.dataset.meta)
    assert [r.sites_crawled for r in table1] == \
        [r.sites_crawled for r in flaky_study.table1]


def test_partial_sockets_flow_into_dataset(flaky_study):
    partial_in_summaries = sum(s.sockets_partial
                               for s in flaky_study.summaries)
    partial_in_records = sum(1 for r in flaky_study.dataset.socket_records
                             if r.partial)
    assert partial_in_records == partial_in_summaries


def test_faulted_artifacts_are_byte_identical(tiny_web, tmp_path):
    """Same seed + same profile ⇒ identical trace and metrics files."""
    paths = {}
    for run in ("a", "b"):
        obs = Obs()
        dataset, summaries = run_crawls(tiny_web, FLAKY_CONFIG, obs=obs)
        summary = obs.summary(preset=FLAKY_CONFIG.name,
                              seed=FLAKY_CONFIG.seed)
        trace = tmp_path / f"trace-{run}.jsonl"
        metrics = tmp_path / f"metrics-{run}.json"
        write_trace(trace, summary)
        write_metrics(metrics, summary)
        paths[run] = (trace.read_bytes(), metrics.read_bytes())
        assert sum(s.page_retries for s in summaries) > 0
    assert paths["a"] == paths["b"]
