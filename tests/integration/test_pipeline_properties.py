"""Pipeline-wide property tests over randomly chosen sites/pages."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.browser import Browser
from repro.cdp import EventBus
from repro.crawler.observation import observe_page
from repro.inclusion import InclusionTreeBuilder
from repro.inclusion.node import NodeKind


@st.composite
def _visit_params(draw):
    site_index = draw(st.integers(min_value=0, max_value=120))
    page_index = draw(st.integers(min_value=0, max_value=8))
    crawl = draw(st.integers(min_value=0, max_value=3))
    version = draw(st.sampled_from([57, 58]))
    return site_index, page_index, crawl, version


@given(_visit_params())
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_every_visit_yields_wellformed_tree(tiny_web, params):
    site_index, page_index, crawl, version = params
    sites = tiny_web.plan.placed_sites
    site = sites[site_index % len(sites)]
    bus = EventBus()
    browser = Browser(version=version, bus=bus)
    builder = InclusionTreeBuilder()
    builder.attach(bus)
    result = browser.visit(tiny_web.blueprint(site, page_index, crawl),
                           crawl=crawl)
    builder.detach()
    tree = builder.result()

    # 1. Nothing the browser did is unattributable.
    assert tree.orphan_count == 0
    # 2. Every socket the browser opened appears in the tree, attached
    #    beneath the root with a consistent parent chain.
    assert len(tree.websockets) == result.sockets_opened
    for socket in tree.websockets:
        assert socket.kind == NodeKind.WEBSOCKET
        chain = [socket]
        node = socket.parent
        while node is not None:
            chain.append(node)
            node = node.parent
        assert chain[-1] is tree.root
    # 3. The observation layer agrees with the tree.
    obs = observe_page(tree, site.domain, site.rank, site.category, crawl)
    assert len(obs.sockets) == len(tree.websockets)
    for socket_obs in obs.sockets:
        assert socket_obs.chain_hosts[-1] == socket_obs.host
        assert socket_obs.chain_hosts[0].endswith(site.domain)
    # 4. Every HTTP resource carries a UA header (crawler realism).
    for resource in obs.resources:
        assert resource.url


@given(st.integers(min_value=0, max_value=500))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_blueprints_deterministic_property(tiny_web, index):
    sites = tiny_web.seed_list.sites
    site = sites[index % len(sites)]
    a = tiny_web.blueprint(site, index % 7, index % 4)
    b = tiny_web.blueprint(site, index % 7, index % 4)
    assert [n.url for n in a.all_nodes()] == [n.url for n in b.all_nodes()]
    assert a.dom_html == b.dom_html
