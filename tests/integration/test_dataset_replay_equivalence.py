"""Archival equivalence: analyses re-run from archived socket records.

The study's primary artifact is the socket-record table; Tables 2–4 and
the drift analysis must be recomputable from a JSONL archive alone,
byte-identically with the in-memory run.
"""

from repro.analysis.classify import classify_one
from repro.analysis.drift import compute_initiator_drift
from repro.analysis.table2 import compute_table2
from repro.analysis.table3 import compute_table3
from repro.analysis.table4 import compute_table4
from repro.crawler.persistence import load_socket_records, save_socket_records


def test_tables_from_archive_match(tiny_study, tmp_path):
    path = tmp_path / "sockets.jsonl.gz"
    save_socket_records(path, tiny_study.dataset.socket_records)
    restored = load_socket_records(path)
    views = [
        classify_one(record, tiny_study.labeler, tiny_study.resolver)
        for record in restored
    ]
    assert compute_table2(views) == tiny_study.table2
    assert compute_table3(views) == tiny_study.table3
    assert compute_table4(views) == tiny_study.table4
    original_drift = compute_initiator_drift(tiny_study.views)
    assert compute_initiator_drift(views) == original_drift
