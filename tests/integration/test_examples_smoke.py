"""Smoke tests: the fast example scripts run end to end."""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run_example("quickstart.py", capsys)
    assert "webRequest Bug (WRB) timeline" in out
    assert "Inclusion tree" in out
    assert "WebSocket to" in out


def test_wrb_circumvention(capsys):
    out = _run_example("wrb_circumvention.py", capsys)
    assert "Chrome 57 + ad blocker — the WRB circumvention" in out
    assert "WebSockets opened: 1 (blocked: 0)" in out  # the bug
    assert "WebSockets opened: 0 (blocked: 1)" in out  # the patch


@pytest.mark.slow
def test_session_replay_audit(capsys):
    out = _run_example("session_replay_audit.py", capsys)
    assert "DOM snapshots uploaded over WebSockets" in out
