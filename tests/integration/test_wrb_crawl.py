"""Integration: the WRB ablation at crawl scale.

Crawl the same socket-hosting sites with an ad blocker installed, under
three browser configurations, and verify the circumvention ordering the
paper documents:

* Chrome 57 + blocker: sockets flow (the WRB);
* Chrome 58 + ws-aware blocker: A&A sockets blocked;
* Chrome 58 + http-only-pattern blocker: sockets flow again
  (Franken et al.'s extension pitfall).
"""

import pytest

from repro.browser import Browser
from repro.crawler.crawler import CrawlConfig, Crawler
from repro.extension.adblocker import AdBlockerExtension
from repro.web.filterlists import build_easyprivacy_text
from repro.filters import FilterEngine, parse_filter_list


def _ws_rules(registry):
    """A list that (also) covers the ecosystem's A&A socket endpoints."""
    lines = [build_easyprivacy_text(registry)]
    for key in ("intercom", "zopim", "33across", "hotjar", "smartsupp",
                "realtime", "feedjit", "inspectlet", "disqus", "lockerdome"):
        domain = registry.company(key).domain
        lines.append(f"||{domain}^$websocket")
    return "\n".join(lines)


@pytest.fixture(scope="module")
def socket_sites(tiny_web):
    return [
        sp.site for sp in list(tiny_web.plan.site_plans.values())[:25]
    ]


def _crawl(web, sites, version, blocker=None):
    config = CrawlConfig(index=0, label="wrb", chrome_major=version,
                         start_date="2017-04-02", pages_per_site=3)
    stats = {"opened": 0, "blocked": 0}

    def installer(browser: Browser):
        if blocker is not None:
            blocker.install(browser.webrequest)

    observations = []
    crawler = Crawler(web, config, observers=[observations.append],
                      extension_installer=installer)
    crawler.run(sites)
    opened = sum(len(o.sockets) for o in observations)
    return opened


def test_wrb_circumvention_ordering(tiny_web, socket_sites):
    engine_text = _ws_rules(tiny_web.registry)

    def blocker(ws_aware):
        engine = FilterEngine([parse_filter_list("easyprivacy", engine_text)])
        return AdBlockerExtension(engine, websocket_aware=ws_aware)

    baseline = _crawl(tiny_web, socket_sites, version=57, blocker=None)
    pre_patch = _crawl(tiny_web, socket_sites, version=57,
                       blocker=blocker(True))
    patched = _crawl(tiny_web, socket_sites, version=58,
                     blocker=blocker(True))
    patched_http_only = _crawl(tiny_web, socket_sites, version=58,
                               blocker=blocker(False))

    assert baseline > 0
    # Pre-patch, the blocker cannot stop sockets (scripts it can block
    # are few — §4.2's 5% — so most sockets still open).
    assert pre_patch > patched
    # Post-patch with proper ws:// patterns, A&A sockets are blockable.
    assert patched < baseline * 0.8
    # Wrong URL patterns re-open the hole even on patched Chrome.
    assert patched_http_only > patched


def test_stock_browser_unaffected_by_version(tiny_web, socket_sites):
    v57 = _crawl(tiny_web, socket_sites, version=57, blocker=None)
    v58 = _crawl(tiny_web, socket_sites, version=58, blocker=None)
    assert v57 == v58  # the bug only matters when an extension filters
