"""Whole-study determinism: identical seeds → identical measurements."""

from repro.experiments import StudyConfig
from repro.experiments.runner import run_study

CONFIG = StudyConfig(scale=0.02, sample_scale=0.001, pages_per_site=3,
                     crawls=(0, 2), name="determinism")


def _fingerprint(result):
    return (
        [(r.pct_sites_with_sockets, r.unique_aa_initiators,
          r.pct_sockets_aa_receivers) for r in result.table1],
        [(r.initiator, r.receivers_total, r.socket_count)
         for r in result.table2],
        result.table4.self_pair_sockets,
        sorted(result.labeler.aa_domains),
        result.blocking.pct_aa_chains_blocked,
    )


def test_full_study_reproducible():
    assert _fingerprint(run_study(CONFIG)) == _fingerprint(run_study(CONFIG))


def test_seed_changes_measurements():
    import dataclasses

    other = dataclasses.replace(CONFIG, seed=99)
    a = run_study(CONFIG)
    b = run_study(other)
    # Different web, different publishers — but the registry's A&A
    # entities are the same companies.
    assert {d for d, _ in a.dataset.crawl_sites[0]} != {
        d for d, _ in b.dataset.crawl_sites[0]
    }
