"""End-to-end integration: the whole pipeline on one reserved site."""

from repro.browser import Browser
from repro.cdp import EventBus, SessionRecorder
from repro.cdp.events import parse_event
from repro.content.items import SentItem
from repro.crawler.observation import observe_page
from repro.inclusion import InclusionTreeBuilder, chain_domains


def _visit(web, domain, crawl=0, version=57):
    site = web.plan.site_plans[domain].site
    bus = EventBus()
    browser = Browser(version=version, bus=bus)
    browser.new_profile(domain)
    builder = InclusionTreeBuilder()
    recorder = SessionRecorder(bus)
    builder.attach(bus)
    browser.visit(web.blueprint(site, 0, crawl), crawl=crawl)
    builder.detach()
    return builder.result(), recorder


def test_reserved_intercom_customer_full_pipeline(tiny_web):
    tree, recorder = _visit(tiny_web, "acenterforrecovery.com")
    assert tree.websockets
    socket = tree.websockets[0]
    # Figure 2 semantics: socket attributed to the inline first-party
    # script, widget assets loaded beside it.
    assert chain_domains(socket) == ["acenterforrecovery.com", "intercom.io"]
    assert socket.websocket.handshake_headers["User-Agent"].startswith(
        "Mozilla/5.0"
    )
    obs = observe_page(tree, "acenterforrecovery.com", 61_300, "Health", 0)
    assert obs.sockets[0].initiator_host == "www.acenterforrecovery.com"
    assert SentItem.USER_AGENT in obs.sockets[0].sent_items


def test_sportingindex_chain_passes_through_doubleclick(tiny_web):
    tree, _ = _visit(tiny_web, "sportingindex.com")
    socket = next(
        ws for ws in tree.websockets if "sportingindex" in ws.url
    )
    domains = chain_domains(socket)
    assert "doubleclick.net" in domains
    assert domains[-1] == "sportingindex.com"


def test_slither_game_sockets_are_binary(tiny_web):
    site = tiny_web.plan.site_plans["slither.io"].site
    bus = EventBus()
    browser = Browser(version=57, bus=bus)
    game_sockets = []
    # The game connects on ~55% of page visits; scan a few pages.
    for page_index in range(8):
        builder = InclusionTreeBuilder()
        builder.attach(bus)
        browser.visit(tiny_web.blueprint(site, page_index, 0), crawl=0)
        builder.detach()
        game_sockets.extend(
            ws for ws in builder.result().websockets if "slither" in ws.url
        )
        if game_sockets:
            break
    assert game_sockets
    frames = game_sockets[0].websocket.frames
    assert frames
    assert all(f.opcode == 2 for f in frames)


def test_event_stream_round_trips_through_jsonl(tiny_web, tmp_path):
    _, recorder = _visit(tiny_web, "acenterforrecovery.com")
    path = tmp_path / "session.jsonl"
    count = recorder.save(path)
    loaded = SessionRecorder.load(path)
    assert len(loaded) == count
    # Rebuilding the tree from the recorded stream gives the same shape.
    rebuilt = InclusionTreeBuilder()
    for event in loaded:
        rebuilt.handle(event)
    tree = rebuilt.result()
    assert len(tree.websockets) >= 1


def test_recorded_wire_format_parses_back(tiny_web):
    _, recorder = _visit(tiny_web, "slither.io")
    for event in recorder.events:
        assert parse_event(event.to_cdp()) == event
