"""Tests for inclusion node mechanics."""

from repro.inclusion.node import FrameData, InclusionNode, NodeKind, WebSocketRecord


def _tree():
    root = InclusionNode(url="https://pub.com/", kind=NodeKind.DOCUMENT)
    script = root.add_child(InclusionNode(url="https://cdn.t.com/a.js"))
    pixel = script.add_child(InclusionNode(url="https://px.t.com/p.gif"))
    return root, script, pixel


def test_add_child_sets_parent():
    root, script, pixel = _tree()
    assert pixel.parent is script
    assert script.parent is root
    assert root.parent is None


def test_ancestors_nearest_first():
    root, script, pixel = _tree()
    assert pixel.ancestors() == [script, root]


def test_walk_depth_first():
    root, script, pixel = _tree()
    assert list(root.walk()) == [root, script, pixel]


def test_depth():
    root, script, pixel = _tree()
    assert root.depth() == 0
    assert pixel.depth() == 2


def test_domain_property():
    node = InclusionNode(url="wss://widget-mediator.zopim.com/s")
    assert node.domain == "zopim.com"


def test_domain_of_bad_url_is_empty():
    assert InclusionNode(url="not a url").domain == ""
    assert InclusionNode(url="").domain == ""


def test_websocket_record_frame_split():
    record = WebSocketRecord(url="wss://x/s", frames=[
        FrameData(sent=True, opcode=1, payload="a"),
        FrameData(sent=False, opcode=1, payload="b"),
        FrameData(sent=True, opcode=2, payload="c"),
    ])
    assert [f.payload for f in record.sent_frames] == ["a", "c"]
    assert [f.payload for f in record.received_frames] == ["b"]
