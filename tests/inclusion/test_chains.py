"""Tests for chain extraction."""

from repro.inclusion.chains import chain_domains, chain_to, chain_urls
from repro.inclusion.node import InclusionNode, NodeKind


def _deep_tree():
    root = InclusionNode(url="https://pub.example.com/",
                         kind=NodeKind.DOCUMENT)
    exchange = root.add_child(
        InclusionNode(url="https://ads.exchange.net/tag.js")
    )
    helper = exchange.add_child(
        InclusionNode(url="https://ajax.googleapis.com/helper.js")
    )
    socket = helper.add_child(
        InclusionNode(url="wss://push.sportingindex.com/live",
                      kind=NodeKind.WEBSOCKET)
    )
    return root, socket


def test_chain_root_first():
    root, socket = _deep_tree()
    chain = chain_to(socket)
    assert chain[0] is root
    assert chain[-1] is socket
    assert len(chain) == 4


def test_chain_urls():
    _, socket = _deep_tree()
    assert chain_urls(socket) == [
        "https://pub.example.com/",
        "https://ads.exchange.net/tag.js",
        "https://ajax.googleapis.com/helper.js",
        "wss://push.sportingindex.com/live",
    ]


def test_chain_domains_are_registrable():
    _, socket = _deep_tree()
    assert chain_domains(socket) == [
        "example.com", "exchange.net", "googleapis.com",
        "sportingindex.com",
    ]


def test_chain_of_root_is_singleton():
    root, _ = _deep_tree()
    assert chain_to(root) == [root]


def test_chain_domains_skips_unparseable():
    root = InclusionNode(url="https://pub.example.com/",
                         kind=NodeKind.DOCUMENT)
    inline = root.add_child(InclusionNode(url=""))
    leaf = inline.add_child(InclusionNode(url="https://t.example.net/x"))
    assert chain_domains(leaf) == ["example.com", "example.net"]
