"""Tests for inclusion-tree construction from CDP events."""

import pytest

from repro.cdp.bus import EventBus
from repro.cdp.events import (
    FrameNavigated,
    Initiator,
    RequestWillBeSent,
    ResponseReceived,
    ScriptParsed,
    WebSocketCreated,
    WebSocketFrameReceived,
    WebSocketFrameSent,
    WebSocketWillSendHandshakeRequest,
)
from repro.inclusion.builder import InclusionTreeBuilder
from repro.inclusion.chains import chain_domains, chain_urls
from repro.inclusion.node import NodeKind
from repro.net.http import ResourceType

PAGE = "https://pub.example.com/"
AD_SCRIPT = "https://ads.example.net/script.js"
TRACKER_SCRIPT = "https://tracker.example.org/script.js"
WS_URL = "ws://adnet.example.io/data.ws"


def _navigate(builder, url=PAGE, frame="F1"):
    builder.handle(RequestWillBeSent(
        timestamp=0.0, request_id="r0", document_url=url, url=url,
        resource_type="Document", frame_id=frame,
        initiator=Initiator(type="other"),
    ))
    builder.handle(FrameNavigated(timestamp=0.1, frame_id=frame, url=url))


def _include_script(builder, url, parent_initiator, request_id, script_id,
                    frame="F1"):
    builder.handle(RequestWillBeSent(
        timestamp=1.0, request_id=request_id, document_url=PAGE, url=url,
        resource_type="Script", frame_id=frame, initiator=parent_initiator,
    ))
    builder.handle(ScriptParsed(
        timestamp=1.1, script_id=script_id, url=url, frame_id=frame,
    ))


def test_figure2_shape():
    """Reproduce the paper's Figure 2: the socket is a child of the
    JavaScript resource that opened it, not of the DOM position."""
    builder = InclusionTreeBuilder()
    _navigate(builder)
    # pub page includes ads/script.js (parser), which includes
    # tracker script? No — Figure 2: ads/script.js opens the socket.
    _include_script(builder, AD_SCRIPT,
                    Initiator(type="parser", url=PAGE), "r1", "1")
    builder.handle(WebSocketCreated(
        timestamp=2.0, request_id="ws1", url=WS_URL,
        initiator=Initiator(type="script", url=AD_SCRIPT, script_id="1",
                            stack_urls=(AD_SCRIPT,)),
        frame_id="F1",
    ))
    tree = builder.result()
    assert len(tree.websockets) == 1
    socket = tree.websockets[0]
    assert socket.parent.url == AD_SCRIPT
    assert chain_urls(socket) == [PAGE, AD_SCRIPT, WS_URL]
    assert chain_domains(socket) == [
        "example.com", "example.net", "example.io"
    ]


def test_nested_script_chain():
    builder = InclusionTreeBuilder()
    _navigate(builder)
    _include_script(builder, AD_SCRIPT,
                    Initiator(type="parser", url=PAGE), "r1", "1")
    _include_script(builder, TRACKER_SCRIPT,
                    Initiator(type="script", url=AD_SCRIPT, script_id="1",
                              stack_urls=(AD_SCRIPT,)), "r2", "2")
    builder.handle(WebSocketCreated(
        timestamp=3.0, request_id="ws1", url=WS_URL,
        initiator=Initiator(type="script", url=TRACKER_SCRIPT, script_id="2",
                            stack_urls=(TRACKER_SCRIPT, AD_SCRIPT)),
        frame_id="F1",
    ))
    socket = builder.result().websockets[0]
    assert chain_urls(socket) == [PAGE, AD_SCRIPT, TRACKER_SCRIPT, WS_URL]
    assert socket.depth() == 3


def test_inline_script_attributes_to_document():
    """Inline scripts parse under the document URL, so their sockets
    attribute to the first party — the paper's publisher-initiated case."""
    builder = InclusionTreeBuilder()
    _navigate(builder)
    builder.handle(ScriptParsed(timestamp=1.0, script_id="9", url=PAGE,
                                frame_id="F1", is_inline=True))
    builder.handle(WebSocketCreated(
        timestamp=2.0, request_id="ws1", url=WS_URL,
        initiator=Initiator(type="script", url=PAGE, script_id="9",
                            stack_urls=(PAGE,)),
        frame_id="F1",
    ))
    socket = builder.result().websockets[0]
    assert socket.parent is builder.result().root
    assert chain_domains(socket) == ["example.com", "example.io"]


def test_websocket_frames_and_handshake_recorded():
    builder = InclusionTreeBuilder()
    _navigate(builder)
    builder.handle(ScriptParsed(timestamp=1.0, script_id="9", url=PAGE,
                                frame_id="F1", is_inline=True))
    builder.handle(WebSocketCreated(
        timestamp=2.0, request_id="ws1", url=WS_URL,
        initiator=Initiator(type="script", url=PAGE, script_id="9"),
        frame_id="F1",
    ))
    builder.handle(WebSocketWillSendHandshakeRequest(
        timestamp=2.1, request_id="ws1",
        headers={"User-Agent": "UA", "Cookie": "uid=1"},
    ))
    builder.handle(WebSocketFrameSent(
        timestamp=2.2, request_id="ws1", opcode=1, payload_data='{"a":1}',
    ))
    builder.handle(WebSocketFrameReceived(
        timestamp=2.3, request_id="ws1", opcode=1, payload_data="<div/>",
    ))
    record = builder.result().websockets[0].websocket
    assert record.handshake_headers["Cookie"] == "uid=1"
    assert len(record.sent_frames) == 1
    assert len(record.received_frames) == 1


def test_subframe_document_attaches_under_initiator():
    builder = InclusionTreeBuilder()
    _navigate(builder)
    _include_script(builder, AD_SCRIPT,
                    Initiator(type="parser", url=PAGE), "r1", "1")
    frame_url = "https://ads.example.net/frame.html"
    builder.handle(RequestWillBeSent(
        timestamp=2.0, request_id="r2", document_url=PAGE, url=frame_url,
        resource_type="Document", frame_id="F1",
        initiator=Initiator(type="script", url=AD_SCRIPT, script_id="1"),
    ))
    builder.handle(ResponseReceived(
        timestamp=2.1, request_id="r2", url=frame_url, status=200,
        mime_type="text/html", resource_type="Document", frame_id="F1",
    ))
    builder.handle(FrameNavigated(
        timestamp=2.2, frame_id="F2", parent_frame_id="F1", url=frame_url,
        initiator_url=AD_SCRIPT,
    ))
    # A resource loaded inside the child frame attaches to its document.
    inner = "https://ads.example.net/creative.png"
    builder.handle(RequestWillBeSent(
        timestamp=2.3, request_id="r3", document_url=frame_url, url=inner,
        resource_type="Image", frame_id="F2",
        initiator=Initiator(type="parser", url=frame_url),
    ))
    tree = builder.result()
    frame_node = next(n for n in tree.all_nodes() if n.url == frame_url)
    assert frame_node.kind == NodeKind.DOCUMENT
    assert frame_node.resource_type == ResourceType.SUB_FRAME
    assert frame_node.parent.url == AD_SCRIPT
    inner_node = next(n for n in tree.all_nodes() if n.url == inner)
    assert inner_node.parent is frame_node


def test_mime_annotation_from_response():
    builder = InclusionTreeBuilder()
    _navigate(builder)
    builder.handle(RequestWillBeSent(
        timestamp=1.0, request_id="r1", document_url=PAGE,
        url="https://t.example/px.gif", resource_type="Image", frame_id="F1",
        initiator=Initiator(type="parser", url=PAGE),
    ))
    builder.handle(ResponseReceived(
        timestamp=1.1, request_id="r1", url="https://t.example/px.gif",
        status=200, mime_type="image/gif", resource_type="Image",
        frame_id="F1",
    ))
    node = next(n for n in builder.result().all_nodes()
                if n.url.endswith("px.gif"))
    assert node.mime_type == "image/gif"


def test_unresolvable_initiator_becomes_orphan_under_root():
    builder = InclusionTreeBuilder()
    _navigate(builder)
    builder.handle(RequestWillBeSent(
        timestamp=1.0, request_id="r1", document_url=PAGE,
        url="https://x.example/y.js", resource_type="Script", frame_id="F9",
        initiator=Initiator(type="script", url="https://never-seen.example/z.js"),
    ))
    tree = builder.result()
    assert tree.orphan_count == 1
    node = next(n for n in tree.all_nodes() if n.url.endswith("y.js"))
    assert node.parent is tree.root


def test_result_without_document_raises():
    with pytest.raises(RuntimeError):
        InclusionTreeBuilder().result()


def test_attach_detach_on_bus():
    bus = EventBus()
    builder = InclusionTreeBuilder()
    builder.attach(bus)
    _navigate_via_bus(bus)
    builder.detach()
    assert builder.result().root.url == PAGE


def _navigate_via_bus(bus):
    bus.publish(RequestWillBeSent(
        timestamp=0.0, request_id="r0", document_url=PAGE, url=PAGE,
        resource_type="Document", frame_id="F1",
        initiator=Initiator(type="other"),
    ))
    bus.publish(FrameNavigated(timestamp=0.1, frame_id="F1", url=PAGE))
