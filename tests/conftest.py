"""Shared fixtures.

The expensive fixtures (a tiny four-crawl study) are session-scoped:
they run once and feed the analysis/integration test modules.
"""

from __future__ import annotations

import pytest

from repro.browser import Browser
from repro.cdp import EventBus
from repro.experiments import StudyConfig
from repro.experiments.runner import analyze, run_crawls
from repro.filters import FilterEngine, parse_filter_list
from repro.web.filterlists import build_filter_engine
from repro.web.registry import default_registry
from repro.web.server import SyntheticWeb, WebScale

TINY_STUDY_CONFIG = StudyConfig(
    scale=0.03, sample_scale=0.002, pages_per_site=6, name="test-tiny"
)


@pytest.fixture(scope="session")
def registry():
    """The default company registry (scale-independent)."""
    return default_registry()


@pytest.fixture(scope="session")
def tiny_web(registry):
    """A small synthetic web sharing the session registry."""
    return SyntheticWeb(
        scale=WebScale(sample_scale=0.002, entity_scale=0.03),
        registry=registry,
    )


@pytest.fixture(scope="session")
def filter_engine(registry):
    """EasyList + EasyPrivacy engine for the synthetic ecosystem."""
    return build_filter_engine(registry)


@pytest.fixture(scope="session")
def tiny_study(tiny_web):
    """A complete (but small) four-crawl study with analysis."""
    dataset, summaries = run_crawls(tiny_web, TINY_STUDY_CONFIG)
    return analyze(TINY_STUDY_CONFIG, tiny_web, dataset, summaries)


@pytest.fixture()
def bus():
    """A fresh CDP event bus."""
    return EventBus()


@pytest.fixture()
def browser(bus):
    """A patched-Chrome (58) browser on a fresh bus."""
    return Browser(version=58, bus=bus)


@pytest.fixture()
def buggy_browser(bus):
    """A pre-patch Chrome (57) browser — has the webRequest bug."""
    return Browser(version=57, bus=bus)


@pytest.fixture()
def simple_engine():
    """A tiny hand-written filter engine for blocking tests."""
    text = "\n".join([
        "||ads.example^",
        "||tracker.example^$third-party",
        "||socketspy.example^$websocket",
        "@@||ads.example/acceptable/*$script",
        "/banner/$image",
    ])
    return FilterEngine([parse_filter_list("test", text)])
