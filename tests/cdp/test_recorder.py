"""Tests for session recording and replay."""

from repro.cdp.bus import EventBus
from repro.cdp.events import ScriptParsed, WebSocketFrameSent
from repro.cdp.recorder import SessionRecorder


def _events():
    return [
        ScriptParsed(timestamp=1.0, script_id="1", url="https://a/x.js"),
        WebSocketFrameSent(timestamp=2.0, request_id="r", opcode=1,
                           payload_data='{"k":"v"}', masked=True),
    ]


def test_records_published_events():
    bus = EventBus()
    recorder = SessionRecorder(bus)
    for event in _events():
        bus.publish(event)
    assert len(recorder) == 2
    recorder.detach()
    bus.publish(_events()[0])
    assert len(recorder) == 2


def test_save_load_round_trip(tmp_path):
    bus = EventBus()
    recorder = SessionRecorder(bus)
    for event in _events():
        bus.publish(event)
    path = tmp_path / "session.jsonl"
    assert recorder.save(path) == 2
    loaded = SessionRecorder.load(path)
    assert loaded == recorder.events


def test_replay_into_other_bus():
    bus = EventBus()
    recorder = SessionRecorder(bus)
    for event in _events():
        bus.publish(event)
    recorder.detach()
    target = EventBus()
    replayed = []
    target.subscribe(replayed.append)
    assert recorder.replay_into(target) == 2
    assert replayed == recorder.events


def test_clear():
    recorder = SessionRecorder()
    recorder.events.extend(_events())
    recorder.clear()
    assert len(recorder) == 0
