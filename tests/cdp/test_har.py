"""Tests for HAR export."""

import json

from repro.browser import Browser
from repro.cdp import EventBus, SessionRecorder
from repro.cdp.har import events_to_har, save_har
from repro.net.http import ResourceType
from repro.web.blueprint import PageBlueprint, ResourceNode, SocketPlan

PAGE = "https://pub.example.com/"


def _record_visit():
    script = ResourceNode(url="https://cdn.chat.example/widget.js",
                          sets_cookie=True)
    script.sockets.append(SocketPlan(
        ws_url="wss://ws.chat.example/socket", profile="chat",
    ))
    page = PageBlueprint(url=PAGE, resources=[
        ResourceNode(url=f"{PAGE}style.css",
                     resource_type=ResourceType.STYLESHEET,
                     mime_type="text/css"),
        script,
    ])
    bus = EventBus()
    recorder = SessionRecorder(bus)
    Browser(version=57, bus=bus).visit(page)
    return recorder.events


def test_har_structure():
    har = events_to_har(_record_visit())
    log = har["log"]
    assert log["version"] == "1.2"
    assert log["entries"]
    urls = [e["request"]["url"] for e in log["entries"]]
    assert PAGE in urls
    assert "wss://ws.chat.example/socket" in urls


def test_http_entries_have_responses():
    har = events_to_har(_record_visit())
    css = next(e for e in har["log"]["entries"]
               if e["request"]["url"].endswith("style.css"))
    assert css["response"]["status"] == 200
    assert css["response"]["content"]["mimeType"] == "text/css"
    assert css["_resourceType"] == "stylesheet"


def test_websocket_entry_has_messages_and_handshake():
    har = events_to_har(_record_visit())
    ws = next(e for e in har["log"]["entries"]
              if e["_resourceType"] == "websocket")
    header_names = {h["name"] for h in ws["request"]["headers"]}
    assert "Sec-WebSocket-Key" in header_names
    assert ws["_initiator"] == "https://cdn.chat.example/widget.js"
    types = {m["type"] for m in ws["_webSocketMessages"]}
    assert types <= {"send", "receive"}
    assert ws["_webSocketMessages"]


def test_save_har_is_valid_json(tmp_path):
    path = save_har(tmp_path / "visit.har", _record_visit())
    with open(path) as handle:
        parsed = json.load(handle)
    assert parsed["log"]["creator"]["name"] == "repro-websockets-imc18"


def test_entries_in_request_order():
    har = events_to_har(_record_visit())
    times = [e["startedDateTime"] for e in har["log"]["entries"]]
    assert times == sorted(times)
