"""Tests for CDP event types and wire round-tripping."""

import pytest

from repro.cdp.events import (
    EVENT_TYPES,
    FrameNavigated,
    Initiator,
    RequestWillBeSent,
    ResponseReceived,
    ScriptParsed,
    WebSocketClosed,
    WebSocketCreated,
    WebSocketFrameReceived,
    WebSocketFrameSent,
    WebSocketHandshakeResponseReceived,
    WebSocketWillSendHandshakeRequest,
    parse_event,
)


def _samples():
    initiator = Initiator(
        type="script",
        url="https://cdn.ads.com/tag.js",
        script_id="7",
        stack_urls=("https://cdn.ads.com/tag.js", "https://pub.com/"),
    )
    return [
        ScriptParsed(timestamp=1.0, script_id="7",
                     url="https://cdn.ads.com/tag.js", frame_id="F1"),
        RequestWillBeSent(
            timestamp=2.0, request_id="1000.1",
            document_url="https://pub.com/",
            url="https://px.t.com/sync?uid=1", method="GET",
            resource_type="Image", frame_id="F1", initiator=initiator,
            headers={"User-Agent": "UA", "Cookie": "uid=1"},
        ),
        ResponseReceived(timestamp=3.0, request_id="1000.1",
                         url="https://px.t.com/sync?uid=1", status=200,
                         mime_type="image/gif", resource_type="Image",
                         frame_id="F1"),
        FrameNavigated(timestamp=4.0, frame_id="F2", parent_frame_id="F1",
                       url="https://ads.com/frame.html",
                       initiator_url="https://cdn.ads.com/tag.js"),
        WebSocketCreated(timestamp=5.0, request_id="1000.2",
                         url="wss://rt.t.com/socket", initiator=initiator,
                         frame_id="F1"),
        WebSocketWillSendHandshakeRequest(
            timestamp=6.0, request_id="1000.2",
            headers={"Upgrade": "websocket"}, wall_time=6.0),
        WebSocketHandshakeResponseReceived(
            timestamp=7.0, request_id="1000.2", status=101,
            headers={"Upgrade": "websocket"}),
        WebSocketFrameSent(timestamp=8.0, request_id="1000.2", opcode=1,
                           payload_data='{"a":1}', masked=True),
        WebSocketFrameReceived(timestamp=9.0, request_id="1000.2", opcode=2,
                               payload_data="\x00\x01", masked=False),
        WebSocketClosed(timestamp=10.0, request_id="1000.2"),
    ]


@pytest.mark.parametrize("event", _samples(), ids=lambda e: e.METHOD)
def test_round_trip(event):
    restored = parse_event(event.to_cdp())
    assert restored == event


def test_every_event_type_has_method():
    methods = {t.METHOD for t in EVENT_TYPES}
    assert len(methods) == len(EVENT_TYPES)
    assert all(m.count(".") == 1 for m in methods)


def test_wire_shape_has_method_and_params():
    message = _samples()[1].to_cdp()
    assert message["method"] == "Network.requestWillBeSent"
    assert message["params"]["request"]["url"].startswith("https://px.t.com")
    assert message["params"]["initiator"]["type"] == "script"


def test_initiator_stack_round_trip():
    initiator = Initiator(type="script", url="https://a/s.js",
                          script_id="3", stack_urls=("https://a/s.js",))
    assert Initiator.from_cdp(initiator.to_cdp()) == initiator


def test_parse_unknown_method_raises():
    with pytest.raises(KeyError):
        parse_event({"method": "Network.unknownThing", "params": {}})


def test_events_are_hashable_and_frozen():
    event = WebSocketClosed(timestamp=1.0, request_id="x")
    with pytest.raises(Exception):
        event.request_id = "y"
    assert hash(event)
