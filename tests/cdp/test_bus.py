"""Tests for the event bus."""

from repro.cdp.bus import EventBus
from repro.cdp.events import ScriptParsed, WebSocketClosed


def _script(i=0):
    return ScriptParsed(timestamp=float(i), script_id=str(i), url="u")


def test_publish_reaches_subscriber():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    bus.publish(_script())
    assert len(seen) == 1


def test_type_filter():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append, event_types=[WebSocketClosed])
    bus.publish(_script())
    bus.publish(WebSocketClosed(timestamp=0.0, request_id="r"))
    assert len(seen) == 1
    assert isinstance(seen[0], WebSocketClosed)


def test_unsubscribe():
    bus = EventBus()
    seen = []
    unsubscribe = bus.subscribe(seen.append)
    bus.publish(_script(1))
    unsubscribe()
    bus.publish(_script(2))
    assert len(seen) == 1
    unsubscribe()  # idempotent


def test_delivery_order_per_subscriber():
    bus = EventBus()
    order_a, order_b = [], []
    bus.subscribe(lambda e: order_a.append(e.script_id))
    bus.subscribe(lambda e: order_b.append(e.script_id))
    for i in range(5):
        bus.publish(_script(i))
    assert order_a == order_b == [str(i) for i in range(5)]


def test_counters():
    bus = EventBus()
    assert bus.subscriber_count == 0
    bus.subscribe(lambda e: None)
    assert bus.subscriber_count == 1
    bus.publish(_script())
    bus.publish(_script())
    assert bus.published_count == 2


def test_published_by_method():
    bus = EventBus()
    bus.publish(_script())
    bus.publish(_script())
    bus.publish(WebSocketClosed(timestamp=0.0, request_id="r"))
    assert bus.published_by_method == {
        "Debugger.scriptParsed": 2,
        "Network.webSocketClosed": 1,
    }
    # The property hands out a copy, not the live dict.
    bus.published_by_method["Debugger.scriptParsed"] = 99
    assert bus.published_by_method["Debugger.scriptParsed"] == 2


def test_delivered_count_respects_filters():
    bus = EventBus()
    bus.subscribe(lambda e: None)  # sees everything
    bus.subscribe(lambda e: None, event_types=[WebSocketClosed])
    bus.publish(_script())
    bus.publish(WebSocketClosed(timestamp=0.0, request_id="r"))
    assert bus.published_count == 2
    assert bus.delivered_count == 3  # 1 + 2


def test_subscribe_during_publish_takes_effect_next_publish():
    bus = EventBus()
    late = []

    def handler(event):
        if not late:
            bus.subscribe(late.append)

    bus.subscribe(handler)
    bus.publish(_script(1))
    # The snapshot in flight predates the subscription...
    assert late == []
    bus.publish(_script(2))
    # ...but the next publish rebuilds it.
    assert len(late) == 1


def test_unsubscribe_during_publish_is_safe():
    bus = EventBus()
    seen = []
    removers = []

    def self_removing(event):
        seen.append(event)
        removers[0]()

    removers.append(bus.subscribe(self_removing))
    bus.publish(_script(1))
    bus.publish(_script(2))
    assert len(seen) == 1
