"""Tests for the event bus."""

from repro.cdp.bus import EventBus
from repro.cdp.events import ScriptParsed, WebSocketClosed


def _script(i=0):
    return ScriptParsed(timestamp=float(i), script_id=str(i), url="u")


def test_publish_reaches_subscriber():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append)
    bus.publish(_script())
    assert len(seen) == 1


def test_type_filter():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append, event_types=[WebSocketClosed])
    bus.publish(_script())
    bus.publish(WebSocketClosed(timestamp=0.0, request_id="r"))
    assert len(seen) == 1
    assert isinstance(seen[0], WebSocketClosed)


def test_unsubscribe():
    bus = EventBus()
    seen = []
    unsubscribe = bus.subscribe(seen.append)
    bus.publish(_script(1))
    unsubscribe()
    bus.publish(_script(2))
    assert len(seen) == 1
    unsubscribe()  # idempotent


def test_delivery_order_per_subscriber():
    bus = EventBus()
    order_a, order_b = [], []
    bus.subscribe(lambda e: order_a.append(e.script_id))
    bus.subscribe(lambda e: order_b.append(e.script_id))
    for i in range(5):
        bus.publish(_script(i))
    assert order_a == order_b == [str(i) for i in range(5)]


def test_counters():
    bus = EventBus()
    assert bus.subscriber_count == 0
    bus.subscribe(lambda e: None)
    assert bus.subscriber_count == 1
    bus.publish(_script())
    bus.publish(_script())
    assert bus.published_count == 2
