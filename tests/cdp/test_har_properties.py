"""Property test: every visit's HAR is well-formed and complete."""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.browser import Browser
from repro.cdp import EventBus, SessionRecorder
from repro.cdp.events import RequestWillBeSent, WebSocketCreated
from repro.cdp.har import events_to_har


@given(st.integers(min_value=0, max_value=80),
       st.integers(min_value=0, max_value=3))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_har_entry_counts_match_events(tiny_web, site_index, crawl):
    sites = tiny_web.plan.placed_sites
    site = sites[site_index % len(sites)]
    bus = EventBus()
    browser = Browser(version=57, bus=bus)
    recorder = SessionRecorder(bus)
    browser.visit(tiny_web.blueprint(site, 0, crawl), crawl=crawl)
    har = events_to_har(recorder.events)
    requests = sum(
        1 for e in recorder.events if isinstance(e, RequestWillBeSent)
    )
    sockets = sum(
        1 for e in recorder.events if isinstance(e, WebSocketCreated)
    )
    entries = har["log"]["entries"]
    assert len(entries) == requests + sockets
    ws_entries = [e for e in entries if e["_resourceType"] == "websocket"]
    assert len(ws_entries) == sockets
    # Every entry is JSON-serializable and carries a URL and timestamp.
    json.dumps(har)
    for entry in entries:
        assert entry["request"]["url"]
        assert entry["startedDateTime"].startswith("2017-")
