"""Opt-in stats recording: the shared-snapshot thread-safety contract.

`repro serve` shares one compiled engine across worker threads, so
``match()`` must be read-only on the engine when the caller says so.
The default still records into ``engine.stats`` (every pre-serve call
site keeps its telemetry); ``stats=None`` makes the call mutate
nothing; a caller-owned ``EngineStats`` routes the charge there.
"""

import threading

from repro.filters import (
    CompiledFilterEngine,
    EngineStats,
    FilterEngine,
    parse_filter_list,
)
from repro.net.http import ResourceType

LIST_TEXT = """\
! test list
/banner/
||ads.example^
@@||ads.example/allowed.js
"""


def _engines():
    lists = [parse_filter_list("unit", LIST_TEXT)]
    return FilterEngine(lists), CompiledFilterEngine(lists)


def _snapshot(stats: EngineStats) -> tuple[int, int, int]:
    return stats.matches, stats.blocked, stats.exception_overrides


class TestOptInRecording:
    def test_default_records_into_engine_stats(self):
        for engine in _engines():
            verdict = engine.match(
                "https://ads.example/x.js", ResourceType.SCRIPT, ""
            )
            assert verdict.blocked
            assert engine.stats.matches == 1
            assert engine.stats.blocked == 1

    def test_stats_none_is_read_only(self):
        for engine in _engines():
            blocked = engine.match(
                "https://ads.example/x.js", ResourceType.SCRIPT, "",
                stats=None,
            )
            rescued = engine.match(
                "https://ads.example/allowed.js", ResourceType.SCRIPT, "",
                stats=None,
            )
            assert blocked.blocked and not rescued.blocked
            assert _snapshot(engine.stats) == (0, 0, 0)

    def test_caller_owned_stats_receive_the_charge(self):
        for engine in _engines():
            own = EngineStats()
            engine.match(
                "https://ads.example/x.js", ResourceType.SCRIPT, "",
                stats=own,
            )
            engine.match(
                "https://ads.example/allowed.js", ResourceType.SCRIPT, "",
                stats=own,
            )
            assert own.matches == 2
            assert own.blocked == 1
            assert own.exception_overrides == 1
            assert _snapshot(engine.stats) == (0, 0, 0)

    def test_verdicts_identical_across_stats_modes(self):
        for engine in _engines():
            urls = (
                "https://ads.example/x.js",
                "https://ads.example/allowed.js",
                "https://clean.example/app.js",
                "https://cdn.example/banner/ad.gif",
            )
            for url in urls:
                default = engine.match(url, ResourceType.SCRIPT, "")
                silent = engine.match(
                    url, ResourceType.SCRIPT, "", stats=None
                )
                assert (default.blocked, default.matched) == (
                    silent.blocked, silent.matched
                )


class TestConcurrentMatching:
    def test_threads_with_stats_none_never_touch_shared_state(self):
        _, engine = _engines()
        urls = [
            "https://ads.example/x.js",
            "https://ads.example/allowed.js",
            "https://clean.example/app.js",
            "https://cdn.example/banner/ad.gif",
        ] * 50
        expected = [
            engine.match(url, ResourceType.SCRIPT, "", stats=None).blocked
            for url in urls
        ]
        per_thread: dict[int, tuple] = {}
        failures: list[str] = []

        def worker(thread_id: int) -> None:
            own = EngineStats()
            verdicts = []
            for url in urls:
                verdicts.append(engine.match(
                    url, ResourceType.SCRIPT, "", stats=own
                ).blocked)
            if verdicts != expected:
                failures.append(f"thread {thread_id} verdicts diverged")
            per_thread[thread_id] = _snapshot(own)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert failures == []
        # The shared engine was never written: its counters are
        # untouched, and every thread's private counters agree exactly
        # (no lost updates — each thread did all the counting itself).
        assert _snapshot(engine.stats) == (0, 0, 0)
        assert len(per_thread) == 8
        assert len(set(per_thread.values())) == 1
        matches, blocked, overrides = per_thread[0]
        assert matches == len(urls)
        assert blocked == sum(expected)
        assert overrides == 50  # one rescued URL per cycle of 4
