"""Tests for rule pattern semantics."""

import re

from repro.filters.parser import parse_filter_line
from repro.filters.rules import pattern_to_regex


def _matches(pattern: str, url: str) -> bool:
    return re.search(pattern_to_regex(pattern), url, re.IGNORECASE) is not None


class TestPatternSemantics:
    def test_domain_anchor_matches_subdomains(self):
        assert _matches("||doubleclick.net^", "https://x.doubleclick.net/a")
        assert _matches("||doubleclick.net^", "https://doubleclick.net/a")

    def test_domain_anchor_rejects_superstrings(self):
        # ||ads.com must not match notads.com (host-label boundary).
        assert not _matches("||ads.com^", "https://notads.com/a")

    def test_domain_anchor_matches_ws_scheme(self):
        assert _matches("||tracker.io^", "wss://api.tracker.io/ws")

    def test_separator_matches_slash_and_end(self):
        assert _matches("||t.com^", "https://t.com/path")
        assert _matches("||t.com^", "https://t.com")
        assert not _matches("||t.co^", "https://t.com")  # m is alnum, not a separator

    def test_wildcard(self):
        assert _matches("/banner/*/ad", "https://x.com/banner/300x250/ad")

    def test_start_anchor(self):
        assert _matches("|https://exact", "https://exact.com/x")
        assert not _matches("|https://exact", "http://other/https://exact")

    def test_end_anchor(self):
        assert _matches("swf|", "https://x.com/movie.swf")
        assert not _matches("swf|", "https://x.com/movie.swf?x=1")

    def test_plain_substring(self):
        assert _matches("/ads/", "https://x.com/ads/banner.png")


class TestAnchorDomain:
    def test_extracts_registrable_domain(self):
        rule = parse_filter_line("||x.doubleclick.net/path^")
        assert rule.anchor_domain() == "doubleclick.net"

    def test_non_anchored_rule_has_none(self):
        assert parse_filter_line("/banner/").anchor_domain() is None


class TestIndexTokens:
    def test_tokens_from_literal_spans(self):
        rule = parse_filter_line("||doubleclick.net/ads^")
        tokens = rule.index_tokens()
        assert "doubleclick" in tokens
        assert "ads" in tokens

    def test_wildcards_break_tokens(self):
        rule = parse_filter_line("/ba*nner/")
        tokens = rule.index_tokens()
        assert "banner" not in tokens
        # "nner" abuts the wildcard on its left, so a matching URL may
        # extend it ("/bazoonner/" tokenizes to "bazoonner") — it is NOT
        # a reliable index token. Same for "ba". No reliable tokens at
        # all: the rule must go to the generic bucket.
        assert tokens == []

    def test_short_chunks_skipped(self):
        rule = parse_filter_line("/ad^")
        assert rule.index_tokens() == []  # "ad" is under 3 chars


class TestRegexCompilation:
    def test_case_insensitive_by_default(self):
        rule = parse_filter_line("/Banner/")
        assert rule.matches_url("https://x.com/BANNER/1.png")

    def test_match_case(self):
        rule = parse_filter_line("/Banner/$match-case")
        assert rule.matches_url("https://x.com/Banner/1.png")
        assert not rule.matches_url("https://x.com/banner/1.png")
