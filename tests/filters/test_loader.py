"""Tests for filter-list file loading."""

import pytest

from repro.filters.loader import load_filter_engine, load_filter_file
from repro.net.http import ResourceType


def test_load_file(tmp_path):
    path = tmp_path / "easylist.txt"
    path.write_text("! header\n||ads.example^\n", encoding="utf-8")
    filter_list = load_filter_file(path)
    assert filter_list.name == "easylist"
    assert len(filter_list) == 1


def test_bom_tolerated(tmp_path):
    path = tmp_path / "list.txt"
    path.write_bytes("﻿||t.example^\n".encode("utf-8"))
    assert len(load_filter_file(path)) == 1


def test_engine_from_files(tmp_path):
    a = tmp_path / "a.txt"
    a.write_text("||ads.example^\n")
    b = tmp_path / "b.txt"
    b.write_text("||tracker.example^$websocket\n")
    engine = load_filter_engine([a, b])
    assert engine.would_block("https://x.ads.example/t.js",
                              ResourceType.SCRIPT, "https://pub.example/")
    assert engine.would_block("wss://tracker.example/s",
                              ResourceType.WEBSOCKET, "https://pub.example/")


def test_empty_engine_rejected():
    with pytest.raises(ValueError):
        load_filter_engine([])
