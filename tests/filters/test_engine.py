"""Tests for the filter matching engine."""

from hypothesis import given
from hypothesis import strategies as st

from repro.filters.engine import FilterEngine
from repro.filters.parser import parse_filter_list
from repro.net.http import ResourceType

PAGE = "https://news-site.com/"


def _engine(*lines: str) -> FilterEngine:
    return FilterEngine([parse_filter_list("t", "\n".join(lines))])


class TestBlocking:
    def test_blocks_matching_third_party(self):
        engine = _engine("||ads.example^$third-party")
        assert engine.would_block(
            "https://cdn.ads.example/tag.js", ResourceType.SCRIPT, PAGE
        )

    def test_first_party_escapes_third_party_rule(self):
        engine = _engine("||news-site.com/ads^$third-party")
        assert not engine.would_block(
            "https://news-site.com/ads/self.js", ResourceType.SCRIPT, PAGE
        )

    def test_type_constraint(self):
        engine = _engine("||t.example^$image")
        assert engine.would_block("https://t.example/px.gif", ResourceType.IMAGE, PAGE)
        assert not engine.would_block("https://t.example/app.js", ResourceType.SCRIPT, PAGE)

    def test_websocket_rule(self):
        engine = _engine("||rt.example^$websocket")
        assert engine.would_block(
            "wss://rt.example/socket", ResourceType.WEBSOCKET, PAGE
        )
        assert not engine.would_block(
            "https://rt.example/app.js", ResourceType.SCRIPT, PAGE
        )

    def test_exception_overrides_block(self):
        engine = _engine("||ads.example^", "@@||ads.example/ok/$script")
        result = engine.match(
            "https://ads.example/ok/loader.js", ResourceType.SCRIPT, PAGE
        )
        assert not result.blocked
        assert result.matched  # a block rule did match
        assert result.exception_rule is not None

    def test_domain_scoped_rule(self):
        engine = _engine("/sponsored/$domain=news-site.com")
        assert engine.would_block(
            "https://cdn.example/sponsored/1.js", ResourceType.SCRIPT, PAGE
        )
        assert not engine.would_block(
            "https://cdn.example/sponsored/1.js", ResourceType.SCRIPT,
            "https://other-site.com/",
        )

    def test_no_match(self):
        engine = _engine("||ads.example^")
        result = engine.match("https://benign.example/app.js",
                              ResourceType.SCRIPT, PAGE)
        assert not result.blocked and not result.matched

    def test_list_name_reported(self):
        engine = FilterEngine([
            parse_filter_list("easylist", "||ads.example^"),
            parse_filter_list("easyprivacy", "||tracker.example^"),
        ])
        result = engine.match("https://tracker.example/px.gif",
                              ResourceType.IMAGE, PAGE)
        assert result.blocked
        assert result.list_name == "easyprivacy"

    def test_rule_count(self):
        engine = _engine("||a.example^", "||b.example^", "@@||a.example/ok/")
        assert engine.rule_count == 3


class TestTokenIndex:
    def test_generic_rules_always_tried(self):
        # A pattern with no >=3-char literal token lands in the generic
        # bucket and must still match.
        engine = _engine("/a1*b2^$image")
        assert engine.would_block("https://x.example/a1zzb2/", ResourceType.IMAGE, PAGE)

    def test_many_rules_still_correct(self):
        lines = [f"||domain{i}.example^" for i in range(500)]
        engine = _engine(*lines)
        assert engine.would_block(
            "https://sub.domain250.example/x", ResourceType.SCRIPT, PAGE
        )
        assert not engine.would_block(
            "https://unlisted.example/x", ResourceType.SCRIPT, PAGE
        )


@given(st.integers(min_value=0, max_value=499))
def test_index_equivalence_property(i):
    """Token-indexed matching agrees with naive per-rule matching."""
    lines = [f"||site{j}.example^" for j in range(0, 500, 7)]
    engine = _engine(*lines)
    url = f"https://cdn.site{i}.example/asset.js"
    naive = any(
        rule.matches_url(url)
        for flist in engine.lists
        for rule in flist.block_rules
    )
    assert engine.would_block(url, ResourceType.SCRIPT, PAGE) == naive


class TestEngineStats:
    def test_match_accounting(self):
        engine = _engine("||ads.example^", "@@||ads.example/ok/$script")
        engine.would_block("https://ads.example/tag.js",
                           ResourceType.SCRIPT, PAGE)
        engine.would_block("https://ads.example/ok/tag.js",
                           ResourceType.SCRIPT, PAGE)
        engine.would_block("https://benign.example/app.js",
                           ResourceType.SCRIPT, PAGE)
        stats = engine.stats
        assert stats.matches == 3
        assert stats.blocked == 1
        assert stats.exception_overrides == 1

    def test_candidate_accounting_measures_index_selectivity(self):
        lines = [f"||domain{i}.example^" for i in range(50)]
        engine = _engine(*lines)
        engine.would_block("https://domain7.example/x",
                           ResourceType.SCRIPT, PAGE)
        stats = engine.stats
        # The token index should offer far fewer than all 50 rules.
        assert 1 <= stats.token_candidates < 50
        assert stats.token_buckets >= 1

    def test_generic_bucket_charged_when_reached(self):
        engine = _engine("/a1*b2^$image")
        engine.would_block("https://x.example/a1zzb2/",
                           ResourceType.IMAGE, PAGE)
        assert engine.stats.generic_candidates >= 1

    def test_as_counts_keys(self):
        engine = _engine("||a.example^")
        counts = engine.stats.as_counts()
        assert set(counts) == {
            "matches", "blocked", "exception_overrides", "token_buckets",
            "token_candidates", "generic_candidates",
            "block_token_buckets", "block_token_candidates",
            "block_generic_candidates", "exception_token_buckets",
            "exception_token_candidates", "exception_generic_candidates",
            "host_candidates",
        }
        assert all(v == 0 for v in counts.values())

    def test_polarity_split_sums_to_combined(self):
        engine = _engine(
            "||ads.example^", "@@||ads.example^$script", "/tracker123/"
        )
        engine.would_block(
            "https://ads.example/tracker123/", ResourceType.SCRIPT, PAGE
        )
        engine.would_block(
            "https://ads.example/pixel", ResourceType.IMAGE, PAGE
        )
        stats = engine.stats
        assert stats.token_buckets == (
            stats.block_token_buckets + stats.exception_token_buckets
        )
        assert stats.token_candidates == (
            stats.block_token_candidates + stats.exception_token_candidates
        )
        assert stats.generic_candidates == (
            stats.block_generic_candidates + stats.exception_generic_candidates
        )
        assert stats.block_token_candidates >= 1
        assert stats.exception_token_candidates >= 1
