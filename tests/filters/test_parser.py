"""Tests for ABP filter-list parsing."""

import pytest

from repro.filters.parser import FilterParseError, parse_filter_line, parse_filter_list
from repro.net.http import ResourceType


class TestParseLine:
    def test_comment_returns_none(self):
        assert parse_filter_line("! comment") is None
        assert parse_filter_line("[Adblock Plus 2.0]") is None
        assert parse_filter_line("") is None

    def test_element_hiding_skipped(self):
        assert parse_filter_line("example.com##.ad-banner") is None
        assert parse_filter_line("example.com#@#.whitelisted") is None

    def test_basic_domain_anchor(self):
        rule = parse_filter_line("||doubleclick.net^")
        assert rule is not None
        assert not rule.is_exception
        assert rule.pattern == "||doubleclick.net^"

    def test_exception_rule(self):
        rule = parse_filter_line("@@||google.com/recaptcha/$script")
        assert rule.is_exception
        assert rule.options.resource_types == frozenset({ResourceType.SCRIPT})

    def test_type_options(self):
        rule = parse_filter_line("||t.com^$image,websocket")
        assert rule.options.resource_types == frozenset(
            {ResourceType.IMAGE, ResourceType.WEBSOCKET}
        )

    def test_negated_type_options(self):
        rule = parse_filter_line("||t.com^$~image")
        assert ResourceType.IMAGE not in rule.options.resource_types
        assert ResourceType.SCRIPT in rule.options.resource_types

    def test_third_party_option(self):
        assert parse_filter_line("||t.com^$third-party").options.third_party is True
        assert parse_filter_line("||t.com^$~third-party").options.third_party is False
        assert parse_filter_line("||t.com^").options.third_party is None

    def test_domain_option(self):
        rule = parse_filter_line("/ads/$domain=news.com|~blog.news.com")
        # Entries keep their full hostname so the negation stays more
        # specific than the include it carves out of.
        assert rule.options.include_domains == ("news.com",)
        assert rule.options.exclude_domains == ("blog.news.com",)

    def test_negated_subdomain_carves_out_include(self):
        rule = parse_filter_line("/ads/$domain=news.com|~blog.news.com")
        applies = rule.options.applies_to
        assert applies(ResourceType.SCRIPT, True, "news.com")
        assert applies(ResourceType.SCRIPT, True, "sports.news.com")
        assert not applies(ResourceType.SCRIPT, True, "blog.news.com")
        assert not applies(ResourceType.SCRIPT, True, "a.blog.news.com")
        assert not applies(ResourceType.SCRIPT, True, "other.com")

    def test_exclude_only_domain_option(self):
        rule = parse_filter_line("/ads/$domain=~news.com")
        applies = rule.options.applies_to
        assert applies(ResourceType.SCRIPT, True, "other.com")
        assert not applies(ResourceType.SCRIPT, True, "news.com")
        assert not applies(ResourceType.SCRIPT, True, "blog.news.com")

    def test_domain_option_empty_entries_ignored(self):
        rule = parse_filter_line("/ads/$domain=news.com||~|shop.com")
        assert rule.options.include_domains == ("news.com", "shop.com")
        assert rule.options.exclude_domains == ()

    def test_options_only_exception(self):
        rule = parse_filter_line("@@$document,domain=partner.com")
        assert rule is not None
        assert rule.is_exception
        assert rule.pattern == "*"
        assert rule.options.include_domains == ("partner.com",)
        assert rule.options.resource_types == frozenset(
            {ResourceType.MAIN_FRAME}
        )

    def test_exception_with_multiple_options(self):
        rule = parse_filter_line(
            "@@||cdn.example^$script,third-party,domain=site.com"
        )
        assert rule.is_exception
        assert rule.options.third_party is True
        assert rule.options.include_domains == ("site.com",)

    def test_whitespace_in_pattern_rejected(self):
        assert parse_filter_line("||bad rule.com^") is None

    def test_trailing_dollar_is_literal(self):
        rule = parse_filter_line("/path$")
        assert rule is not None
        assert rule.pattern == "/path$"

    def test_unknown_option_skips_rule(self):
        assert parse_filter_line("||t.com^$frobnicate") is None

    def test_match_case(self):
        rule = parse_filter_line("/BannerAd/$match-case")
        assert rule.options.match_case

    def test_subdocument_maps_to_sub_frame(self):
        rule = parse_filter_line("||t.com^$subdocument")
        assert rule.options.resource_types == frozenset({ResourceType.SUB_FRAME})

    def test_default_types_exclude_main_frame(self):
        rule = parse_filter_line("||t.com^")
        assert ResourceType.MAIN_FRAME not in rule.options.resource_types
        assert ResourceType.WEBSOCKET in rule.options.resource_types


class TestParseList:
    TEXT = """\
[Adblock Plus 2.0]
! Title: test list
||ads.example^$third-party
@@||ads.example/ok/$script
example.com##.banner
||weird.example^$unsupportedoption
/track/$ping
"""

    def test_counts(self):
        parsed = parse_filter_list("test", self.TEXT)
        assert len(parsed) == 3
        assert parsed.hiding_rule_count == 1
        assert parsed.skipped_lines == ["||weird.example^$unsupportedoption"]
        assert len(parsed.block_rules) == 2
        assert len(parsed.exception_rules) == 1

    def test_strict_mode_raises(self):
        with pytest.raises(FilterParseError):
            parse_filter_list("test", "||x.com^$bogusopt", strict=True)

    def test_line_numbers_recorded(self):
        parsed = parse_filter_list("test", self.TEXT)
        assert [rule.line for rule in parsed.rules] == [3, 4, 7]

    def test_bom_stripped(self):
        parsed = parse_filter_list("test", "﻿||ads.example^\n")
        assert len(parsed) == 1
        assert parsed.rules[0].pattern == "||ads.example^"
