"""Fuzz/property tests for the filter stack."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters.engine import FilterEngine
from repro.filters.parser import parse_filter_line, parse_filter_list
from repro.net.http import ResourceType

_RULE_CHARS = st.text(
    alphabet="abcdefghijklmnop./*^|$@!#~=,-_0123456789 ", max_size=60
)


@given(_RULE_CHARS)
@settings(max_examples=300)
def test_parse_filter_line_never_crashes(line):
    rule = parse_filter_line(line)
    if rule is not None:
        # Any parsed rule must compile and be matchable.
        rule.matches_url("https://example.com/some/path?q=1")
        rule.index_tokens()


@given(st.lists(_RULE_CHARS, max_size=20))
@settings(max_examples=50)
def test_engine_from_fuzzed_list_never_crashes(lines):
    parsed = parse_filter_list("fuzz", "\n".join(lines))
    engine = FilterEngine([parsed])
    engine.match("https://example.com/x?y=1", ResourceType.SCRIPT,
                 "https://pub.example/")
    engine.match("wss://example.com/socket", ResourceType.WEBSOCKET,
                 "https://pub.example/")


@given(
    st.from_regex(r"[a-z]{3,10}\.(com|net|io)", fullmatch=True),
    st.from_regex(r"(/[a-z0-9]{1,8}){1,3}", fullmatch=True),
)
@settings(max_examples=100)
def test_domain_anchor_invariant(domain, path):
    """``||domain^`` blocks every URL on the domain and its subdomains,
    and nothing on unrelated domains."""
    engine = FilterEngine([parse_filter_list("t", f"||{domain}^")])
    page = "https://unrelated-party.example/"
    assert engine.would_block(f"https://{domain}{path}",
                              ResourceType.SCRIPT, page)
    assert engine.would_block(f"https://sub.{domain}{path}",
                              ResourceType.IMAGE, page)
    assert not engine.would_block(f"https://other-{domain}{path}",
                                  ResourceType.SCRIPT, page)


@given(st.from_regex(r"[a-z]{3,10}\.(com|net)", fullmatch=True))
@settings(max_examples=100)
def test_exception_always_wins(domain):
    text = f"||{domain}^\n@@||{domain}/allowed/"
    engine = FilterEngine([parse_filter_list("t", text)])
    page = "https://pub.example/"
    assert engine.would_block(f"https://{domain}/x", ResourceType.SCRIPT, page)
    assert not engine.would_block(f"https://{domain}/allowed/x",
                                  ResourceType.SCRIPT, page)
