"""The three-matcher equivalence contract, property-tested.

``linear_match`` (brute force) is the executable specification;
:class:`FilterEngine` (interpreted token index) and
:class:`CompiledFilterEngine` (compiled index: least-loaded tokens,
host trie lane, bit-mask pre-filters) must return the same verdict AND
the same decisive rules for every request. This suite pins that with
hypothesis over structured rule grammars and URL corpora, with the
shrunk seeds of the PR-9 token-index false-negative bug as explicit
regressions, and audits that the *old* longest-any-token scheme really
did miss them.
"""

import pickle
import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters.compiled import CompiledFilterEngine
from repro.filters.engine import FilterEngine, linear_match
from repro.filters.parser import parse_filter_list
from repro.net.http import ResourceType
from repro.web.filterlists import generate_filter_lists, generate_request_corpus

PAGE = "https://pub.example/"


def _lists(*lines):
    return [parse_filter_list("t", "\n".join(lines))]


def _triple(lists, url, rtype, page):
    interp = FilterEngine(lists).match(url, rtype, page)
    comp = CompiledFilterEngine(lists).match(url, rtype, page)
    linear = linear_match(lists, url, rtype, page)
    return interp, comp, linear


def _assert_agree(lists, url, rtype, page):
    interp, comp, linear = _triple(lists, url, rtype, page)
    for result in (interp, comp):
        assert result.blocked == linear.blocked, (url, rtype, page)
        # Decisive-rule identity: same FilterRule *instances*, since all
        # three matchers consume the same parsed lists.
        assert result.rule is linear.rule, (url, rtype, page)
        assert result.exception_rule is linear.exception_rule, (
            url, rtype, page,
        )
        if linear.rule is not None or linear.exception_rule is not None:
            assert result.list_name == linear.list_name
    return linear


# ---------------------------------------------------------------------------
# Explicit regression seeds (shrunk from the token-index bug)
# ---------------------------------------------------------------------------

class TestTokenBugRegressions:
    def test_wildcard_extends_token_run(self):
        """The canonical PR-9 bug: ``/ads*banner`` must block a URL
        whose token run *extends* the pattern's literal ``banner``."""
        lists = _lists("/ads*banner")
        linear = _assert_agree(
            lists, "https://x.example/adsbanner123", ResourceType.SCRIPT, PAGE
        )
        assert linear.blocked

    def test_old_longest_token_scheme_missed_it(self):
        """Audit: the pre-fix scheme indexed ``/ads*banner`` under its
        longest literal run (``banner``), a token the matching URL's
        token set does not contain — the bucket was never offered."""
        rule_runs = re.findall(r"[a-z0-9]{3,}", "/ads*banner")
        old_index_token = max(rule_runs, key=len)
        url_tokens = re.findall(
            r"[a-z0-9]{3,}", "https://x.example/adsbanner123"
        )
        assert old_index_token == "banner"
        assert old_index_token not in url_tokens
        # ...even though the rule genuinely matches:
        assert linear_match(
            _lists("/ads*banner"),
            "https://x.example/adsbanner123",
            ResourceType.SCRIPT,
            PAGE,
        ).blocked

    def test_separator_bounded_tokens_stay_indexed(self):
        """Breaker-bounded runs are reliable — the fix must not dump
        every rule into the generic bucket."""
        lists = _lists("/banner/ads.gif")
        engine = FilterEngine(lists)
        assert engine._blocks._generic == []
        linear = _assert_agree(
            lists, "https://x.example/banner/ads.gif",
            ResourceType.IMAGE, PAGE,
        )
        assert linear.blocked

    def test_edge_token_unanchored_is_unreliable(self):
        lists = _lists("banner.gif")
        linear = _assert_agree(
            lists, "https://x.example/megabanner.gif",
            ResourceType.IMAGE, PAGE,
        )
        assert linear.blocked

    def test_anchored_edge_token_is_reliable(self):
        lists = _lists("||banner.example^ads")
        linear = _assert_agree(
            lists, "https://banner.example/adstuff",
            ResourceType.SCRIPT, PAGE,
        )
        assert linear.blocked


class TestHostLaneSeeds:
    def test_short_host_rule_blocks_subdomains(self):
        lists = _lists("||ab.io^")
        for url, expect in [
            ("https://ab.io/x", True),
            ("https://sub.ab.io/x", True),
            ("https://xab.io/x", False),
            ("https://ab.iox/x", False),
        ]:
            linear = _assert_agree(lists, url, ResourceType.SCRIPT, PAGE)
            assert linear.blocked is expect, url

    def test_bare_short_host_prefix_semantics(self):
        lists = _lists("||ab.io")
        linear = _assert_agree(
            lists, "https://ab.iolite.example/x", ResourceType.SCRIPT, PAGE
        )
        assert linear.blocked  # ``||host`` without ^ is a prefix match

    def test_userinfo_url_not_fooled(self):
        """The trie lane must mirror the raw-string regex semantics,
        including for userinfo-bearing URLs."""
        lists = _lists("||ads.example^")
        _assert_agree(
            lists, "https://ads.example@evil.example/x",
            ResourceType.SCRIPT, PAGE,
        )

    def test_uppercase_scheme_and_host(self):
        lists = _lists("||doubleclick.net^")
        linear = _assert_agree(
            lists, "HTTP://DoubleClick.NET/ad", ResourceType.SCRIPT, PAGE
        )
        assert linear.blocked


class TestMatchCaseSeeds:
    def test_match_case_pattern_is_case_sensitive(self):
        lists = _lists("banner$match-case")
        assert not _assert_agree(
            lists, "https://x.example/BANNER", ResourceType.SCRIPT, PAGE
        ).blocked
        assert _assert_agree(
            lists, "https://x.example/banner", ResourceType.SCRIPT, PAGE
        ).blocked

    def test_match_case_scheme_host_stay_insensitive(self):
        lists = _lists("||ads.example/banner$match-case")
        linear = _assert_agree(
            lists, "HTTPS://ADS.EXAMPLE/banner", ResourceType.SCRIPT, PAGE
        )
        assert linear.blocked


# ---------------------------------------------------------------------------
# Hypothesis: structured rule grammar × URL corpus
# ---------------------------------------------------------------------------

_word = st.from_regex(r"[a-z0-9]{1,8}", fullmatch=True)
_label = st.from_regex(r"[a-z]{1,6}", fullmatch=True)
_domain = st.builds(
    lambda a, b, tld: f"{a}.{tld}" if not b else f"{a}.{b}.{tld}",
    _label, st.one_of(st.none(), _label), st.sampled_from(["com", "io", "net"]),
)

_body = st.one_of(
    st.builds(lambda d: f"||{d}^", _domain),
    st.builds(lambda d: f"||{d}", _domain),
    st.builds(lambda d, w, x: f"||{d}^{w}/{x}", _domain, _word, _word),
    st.builds(lambda w, x: f"/{w}/{x}", _word, _word),
    st.builds(lambda w, x: f"{w}*{x}", _word, _word),
    st.builds(lambda w, x: f"/{w}*{x}^", _word, _word),
    st.builds(lambda w, x: f"-{w}-{x}.", _word, _word),
    st.builds(lambda d, w: f"|https://{d}/{w}|", _domain, _word),
    st.builds(lambda d, w: f"|https://{d}/{w}", _domain, _word),
    st.builds(lambda w: f"^{w}^", _word),
)

_option = st.one_of(
    st.just("third-party"),
    st.just("~third-party"),
    st.sampled_from(["script", "image", "websocket", "xmlhttprequest"]),
    st.just("match-case"),
    st.builds(lambda d: f"domain={d}", _domain),
    st.builds(lambda d, e: f"domain={d}|~{e}", _domain, _domain),
)

_rule_line = st.builds(
    lambda exc, body, opts: (
        ("@@" if exc else "")
        + body
        + (f"${','.join(opts)}" if opts else "")
    ),
    st.booleans(),
    _body,
    st.lists(_option, max_size=2),
)

_url = st.builds(
    lambda scheme, host, path, upper: (
        f"{scheme}://{host}{path}".upper() if upper
        else f"{scheme}://{host}{path}"
    ),
    st.sampled_from(["http", "https", "ws", "wss"]),
    _domain,
    st.from_regex(r"(/[a-z0-9]{0,8}){0,3}(\?[a-z0-9=&]{0,8})?", fullmatch=True),
    st.booleans(),
)

_page = st.builds(lambda d: f"https://{d}/", _domain)
_rtype = st.sampled_from(list(ResourceType))


@given(
    st.lists(_rule_line, min_size=1, max_size=12),
    st.lists(st.tuples(_url, _rtype, _page), min_size=1, max_size=4),
)
@settings(max_examples=200, deadline=None)
def test_compiled_interpreted_linear_agree(lines, requests):
    lists = _lists(*lines)
    interp = FilterEngine(lists)
    comp = CompiledFilterEngine(lists)
    for url, rtype, page in requests:
        a = interp.match(url, rtype, page)
        b = comp.match(url, rtype, page)
        c = linear_match(lists, url, rtype, page)
        for result in (a, b):
            assert result.blocked == c.blocked, (lines, url, rtype, page)
            assert result.rule is c.rule, (lines, url, rtype, page)
            assert result.exception_rule is c.exception_rule, (
                lines, url, rtype, page,
            )


@given(
    st.lists(_rule_line, min_size=1, max_size=8),
    _url,
    _rtype,
    _page,
)
@settings(max_examples=150, deadline=None)
def test_list_order_is_decisive(lines, url, rtype, page):
    """Splitting one list into many must not change the decisive rule:
    global order is file order across lists."""
    one = [parse_filter_list("all", "\n".join(lines))]
    many = [
        parse_filter_list(f"part{i}", line) for i, line in enumerate(lines)
    ]
    a = CompiledFilterEngine(one).match(url, rtype, page)
    b = CompiledFilterEngine(many).match(url, rtype, page)
    assert a.blocked == b.blocked
    assert (a.rule.raw if a.rule else None) == (b.rule.raw if b.rule else None)
    assert (a.exception_rule.raw if a.exception_rule else None) == (
        b.exception_rule.raw if b.exception_rule else None
    )


# ---------------------------------------------------------------------------
# Generated-list equivalence + legacy-delta audit + pickling
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def generated_10k():
    lists = generate_filter_lists(10_000, seed=2018)
    corpus = generate_request_corpus(lists, 250, seed=2018)
    return lists, corpus


class _LegacyEngine:
    """Replica of the pre-PR-9 index: every rule sharded under its
    longest literal ``[a-z0-9]{3,}`` run regardless of boundaries,
    first candidate wins. Kept only to *demonstrate* the false
    negatives the boundary-aware index fixes."""

    def __init__(self, lists):
        self._lists = lists
        self._by_token = {}
        self._generic = []
        for fl in lists:
            for rule in fl.rules:
                runs = re.findall(r"[a-z0-9]{3,}", rule.pattern.lower())
                if runs:
                    token = max(runs, key=len)
                    self._by_token.setdefault(token, []).append(rule)
                else:
                    self._generic.append(rule)

    def _candidates(self, url):
        for token in set(re.findall(r"[a-z0-9]{3,}", url.lower())):
            yield from self._by_token.get(token, ())
        yield from self._generic

    def match_verdicts(self, url, rtype, page, third_party, page_host):
        matched = exception = False
        for rule in self._candidates(url):
            which = rule.is_exception
            if (exception if which else matched):
                continue
            if rule.options.applies_to(
                rtype, third_party, page_host
            ) and rule.matches_url(url):
                if which:
                    exception = True
                else:
                    matched = True
        return matched, matched and not exception


def test_generated_10k_list_equivalence(generated_10k):
    lists, corpus = generated_10k
    interp = FilterEngine(lists)
    comp = CompiledFilterEngine(lists)
    blocked = 0
    for url, rtype, page in corpus:
        a = interp.match(url, rtype, page)
        b = comp.match(url, rtype, page)
        c = linear_match(lists, url, rtype, page)
        assert (a.blocked, a.rule, a.exception_rule) == (
            c.blocked, c.rule, c.exception_rule,
        ), (url, rtype, page)
        assert (b.blocked, b.rule, b.exception_rule) == (
            c.blocked, c.rule, c.exception_rule,
        ), (url, rtype, page)
        blocked += c.blocked
    # The corpus must actually exercise the engine, not be all misses.
    assert blocked >= 25


def test_artifact_delta_is_exactly_old_false_negatives(generated_10k):
    """Every verdict that changed vs the pre-fix engine is a request the
    old token index wrongly failed to match — the fix only *adds*
    matches the linear-scan spec always demanded, never removes or
    alters correct ones. (This is the acceptance argument for the
    study-artifact delta: artifacts consume only these verdicts.)"""
    from repro.net.domains import is_third_party
    from repro.util.urls import parse_url

    lists, corpus = generated_10k
    comp = CompiledFilterEngine(lists)
    legacy = _LegacyEngine(lists)
    differences = 0
    for url, rtype, page in corpus:
        new = comp.match(url, rtype, page)
        third_party = is_third_party(url, page)
        old_matched, old_blocked = legacy.match_verdicts(
            url, rtype, page, third_party, parse_url(page).host
        )
        if (new.matched, new.blocked) == (old_matched, old_blocked):
            continue
        differences += 1
        # Any difference must be a strict old-miss: the new engine
        # matched where the old one silently didn't.
        assert new.matched and not old_matched, (url, rtype, page)
        # ...and the spec agrees with the new engine, not the old one.
        spec = linear_match(lists, url, rtype, page)
        assert spec.matched and spec.blocked == new.blocked
    # The corpus is known to contain wildcard-shape old-misses; if this
    # ever drops to zero the audit has gone vacuous — regenerate it.
    assert differences >= 1


def test_compiled_engine_pickles(generated_10k):
    lists, corpus = generated_10k
    comp = CompiledFilterEngine(lists)
    clone = pickle.loads(pickle.dumps(comp))
    assert clone.rule_count == comp.rule_count
    for url, rtype, page in corpus[:50]:
        a = comp.match(url, rtype, page)
        b = clone.match(url, rtype, page)
        assert a.blocked == b.blocked
        assert (a.rule.raw if a.rule else None) == (
            b.rule.raw if b.rule else None
        )
    # The clone's stats are independent of the original's.
    assert clone.stats.matches == 50
