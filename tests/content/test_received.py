"""Tests for received-data classification."""

import pytest

from repro.content.items import ReceivedClass
from repro.content.received import (
    classify_frame,
    classify_http_response,
    classify_socket_received,
)
from repro.inclusion.node import FrameData


def _frame(payload, opcode=1, sent=False):
    return FrameData(sent=sent, opcode=opcode, payload=payload)


class TestFrameClassification:
    def test_html_fragment(self):
        assert classify_frame(_frame("<div class='chat'>hi</div>")) == ReceivedClass.HTML
        assert classify_frame(_frame("<li>v</li>")) == ReceivedClass.HTML
        assert classify_frame(_frame("<!DOCTYPE html><html>")) == ReceivedClass.HTML

    def test_json_object_and_array(self):
        assert classify_frame(_frame('{"a": 1}')) == ReceivedClass.JSON
        assert classify_frame(_frame('[{"a": 1}]')) == ReceivedClass.JSON

    def test_socketio_framing_is_not_json(self):
        assert classify_frame(_frame('42["update",{"a":1}]')) is None

    def test_javascript(self):
        assert classify_frame(
            _frame("(function(){var x=document.createElement('s');})()")
        ) == ReceivedClass.JAVASCRIPT

    def test_binary(self):
        assert classify_frame(_frame("\x00\x01\x02", opcode=2)) == ReceivedClass.BINARY

    def test_binary_image_magic(self):
        assert classify_frame(_frame("\x89PNG\r\n", opcode=2)) == ReceivedClass.IMAGE

    def test_data_uri_image(self):
        assert classify_frame(
            _frame("data:image/png;base64,AAA")
        ) == ReceivedClass.IMAGE

    def test_plain_text_is_none(self):
        assert classify_frame(_frame("ok 200")) is None
        assert classify_frame(_frame("1::keepalive")) is None

    def test_empty_is_none(self):
        assert classify_frame(_frame("")) is None


class TestSocketAggregation:
    def test_union_over_received_only(self):
        classes = classify_socket_received([
            _frame('{"a":1}', sent=True),   # sent: ignored
            _frame("<div/>"),
            _frame('{"b":2}'),
        ])
        assert classes == {ReceivedClass.HTML, ReceivedClass.JSON}

    def test_empty(self):
        assert classify_socket_received([]) == set()


class TestHttpClassification:
    @pytest.mark.parametrize("mime,expected", [
        ("text/html", ReceivedClass.HTML),
        ("text/html; charset=utf-8", ReceivedClass.HTML),
        ("application/json", ReceivedClass.JSON),
        ("application/javascript", ReceivedClass.JAVASCRIPT),
        ("text/javascript", ReceivedClass.JAVASCRIPT),
        ("image/gif", ReceivedClass.IMAGE),
        ("image/png", ReceivedClass.IMAGE),
        ("application/octet-stream", ReceivedClass.BINARY),
        ("video/mp4", ReceivedClass.BINARY),
        ("text/css", None),
        ("font/woff2", None),
        ("text/plain", None),
    ])
    def test_mime_mapping(self, mime, expected):
        assert classify_http_response(mime) == expected
