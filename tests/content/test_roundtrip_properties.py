"""Property tests: generated wire content must be detectable.

The generators (payload profiles) and the analyzer (regex library) were
written independently against real wire formats; these properties pin
the contract between them — if either side drifts, Table 5 silently
decays, so we test the round trip explicitly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.content.items import SentItem
from repro.content.received import classify_frame
from repro.content.regexlib import scan_sent_text
from repro.inclusion.node import FrameData
from repro.net.useragent import DeviceProfile
from repro.net.websocket import FrameDirection
from repro.util.rng import RngStream
from repro.web.payloads import PayloadContext, render_profile


def _ctx(seed, cookie="a1b2c3d4e5f60718293a4b5c", user_id="u000000000042"):
    return PayloadContext(
        device=DeviceProfile(user_agent="Mozilla/5.0 (X11) Chrome/57.0"),
        page_url="https://pub.example/",
        receiver_host="rt.example.com",
        cookie_value=cookie,
        cookie_first_seen=1491100000.0,
        user_id=user_id,
        client_ip="155.33.17.68",
        dom_html="<html><body>x</body></html>",
        scroll_position=777,
        timestamp=1491100100.0,
        rng=RngStream(seed, "prop"),
    )


def _sent_text(frames):
    return " ".join(
        f.payload for f in frames if f.direction == FrameDirection.SENT
    )


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60)
def test_fingerprint_frames_always_detected(seed):
    frames = render_profile("fingerprint", _ctx(seed))
    found = scan_sent_text(_sent_text(frames))
    # Every fingerprint payload must trip the fingerprint detectors.
    for item in (SentItem.SCREEN, SentItem.RESOLUTION, SentItem.VIEWPORT,
                 SentItem.SCROLL_POSITION, SentItem.ORIENTATION,
                 SentItem.DEVICE, SentItem.BROWSER, SentItem.FIRST_SEEN):
        assert item in found, item


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60)
def test_session_replay_dom_detected_iff_present(seed):
    frames = render_profile("session_replay", _ctx(seed))
    text = _sent_text(frames)
    found = scan_sent_text(text)
    assert (SentItem.DOM in found) == ("<html>" in text)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60)
def test_chat_cookie_detected_when_session_starts(seed):
    frames = render_profile("chat", _ctx(seed))
    text = _sent_text(frames)
    found = scan_sent_text(text)
    if "session.start" in text:
        assert SentItem.COOKIE in found
        assert SentItem.USER_AGENT in found


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60)
def test_analytics_beacon_ip_and_ids_detected(seed):
    frames = render_profile("analytics_beacon", _ctx(seed))
    found = scan_sent_text(_sent_text(frames))
    assert SentItem.IP in found
    assert SentItem.USER_ID in found


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60)
def test_chat_received_frames_classify_cleanly(seed):
    frames = render_profile("chat", _ctx(seed))
    for frame in frames:
        if frame.direction != FrameDirection.RECEIVED:
            continue
        cls = classify_frame(FrameData(sent=False, opcode=int(frame.opcode),
                                       payload=frame.payload))
        # Chat pushes HTML bubbles, JSON statuses, keepalive text, or
        # avatar data URIs — never JavaScript or binary.
        assert cls is None or cls.value in ("HTML", "JSON", "Image")


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40)
def test_empty_cookie_never_detected_as_cookie(seed):
    frames = render_profile("chat", _ctx(seed, cookie=""))
    found = scan_sent_text(_sent_text(frames))
    assert SentItem.COOKIE not in found
