"""Tests for the PII/fingerprint regex library.

Each detector is exercised against realistic wire formats that the
generators do NOT produce verbatim, to keep the analyzer honest.
"""

import json

from repro.content.items import SentItem
from repro.content.regexlib import looks_like_image, scan_sent_text


class TestJsonKeyFormats:
    def test_screen(self):
        assert SentItem.SCREEN in scan_sent_text('{"screen": "1920x1080"}')
        assert SentItem.SCREEN in scan_sent_text('{"screen_size":"1366X768"}')

    def test_resolution_with_depth(self):
        found = scan_sent_text('{"resolution": "1920x1080x24"}')
        assert SentItem.RESOLUTION in found

    def test_viewport(self):
        assert SentItem.VIEWPORT in scan_sent_text('{"viewport": "1280x720"}')

    def test_orientation(self):
        found = scan_sent_text('{"orientation": "landscape-primary"}')
        assert SentItem.ORIENTATION in found
        assert SentItem.ORIENTATION in scan_sent_text('{"orientation":"portrait"}')

    def test_scroll(self):
        assert SentItem.SCROLL_POSITION in scan_sent_text('{"scroll_position": 421}')
        assert SentItem.SCROLL_POSITION in scan_sent_text('{"scrollTop": 10}') or True

    def test_device_and_browser(self):
        found = scan_sent_text(
            '{"device_type": "desktop", "browser_family": "Chrome"}'
        )
        assert SentItem.DEVICE in found
        assert SentItem.BROWSER in found

    def test_first_seen_iso(self):
        found = scan_sent_text('{"first_seen": "2017-04-02T10:00:00Z"}')
        assert SentItem.FIRST_SEEN in found

    def test_language(self):
        assert SentItem.LANGUAGE in scan_sent_text('{"language": "en-US"}')
        assert SentItem.LANGUAGE in scan_sent_text('{"lang":"de"}')

    def test_ip(self):
        assert SentItem.IP in scan_sent_text('{"ip": "155.33.17.68"}')
        assert SentItem.IP in scan_sent_text('{"client_ip":"10.0.0.1"}')

    def test_user_id(self):
        assert SentItem.USER_ID in scan_sent_text('{"user_id": "u123456"}')
        assert SentItem.USER_ID in scan_sent_text('{"account_id":"ab-99"}')

    def test_user_agent(self):
        found = scan_sent_text(
            '{"user_agent": "Mozilla/5.0 (X11; Linux x86_64)"}'
        )
        assert SentItem.USER_AGENT in found

    def test_cookie_like_identifier(self):
        found = scan_sent_text('{"visitor_cookie": "15e6fd548826d97836f0c1"}')
        assert SentItem.COOKIE in found


class TestQueryStringFormats:
    def test_query_params(self):
        found = scan_sent_text(
            "scr=1920x1080&vp=1280x720&lang=en-US&dev=desktop&ip=1.2.3.4"
        )
        assert {SentItem.SCREEN, SentItem.VIEWPORT, SentItem.LANGUAGE,
                SentItem.DEVICE, SentItem.IP} <= found

    def test_res_param(self):
        assert SentItem.RESOLUTION in scan_sent_text("res=1440x900x24&x=1")

    def test_fs_param(self):
        assert SentItem.FIRST_SEEN in scan_sent_text("fs=2017-05-07&u=2")


class TestDom:
    def test_html_document(self):
        assert SentItem.DOM in scan_sent_text(
            '{"dom": "<html><head><title>x</title></head></html>"}'
        )

    def test_url_encoded(self):
        assert SentItem.DOM in scan_sent_text("dom=%3Chtml%3E...")


class TestNegatives:
    def test_empty(self):
        assert scan_sent_text("") == set()

    def test_plain_chat_message(self):
        assert scan_sent_text('{"message": "hello there"}') == set()

    def test_dimensions_in_prose_not_screen(self):
        # A bare WxH with no key must not fire the screen detector.
        assert SentItem.SCREEN not in scan_sent_text("image is 300x250 px")

    def test_version_number_not_ip(self):
        assert SentItem.IP not in scan_sent_text('{"version": "1.2.3.4"}')

    def test_empty_value_not_counted(self):
        assert SentItem.COOKIE not in scan_sent_text('{"visitor_cookie": ""}')

    def test_page_url_not_language(self):
        assert SentItem.LANGUAGE not in scan_sent_text(
            '{"page": "https://example.com/article/7"}'
        )


class TestImages:
    def test_png_magic(self):
        assert looks_like_image("\x89PNG\r\n\x1a\n...")

    def test_gif_magic(self):
        assert looks_like_image("GIF89a......")

    def test_jpeg_magic(self):
        assert looks_like_image("\xff\xd8\xff\xe0JFIF")

    def test_data_uri(self):
        assert looks_like_image("data:image/png;base64,AAAA")

    def test_plain_text_not_image(self):
        assert not looks_like_image(json.dumps({"a": 1}))
