"""Tests for the sent-data analyzer."""

from repro.content.items import SentItem
from repro.content.sent import SentDataAnalyzer
from repro.inclusion.node import FrameData, WebSocketRecord

UA = "Mozilla/5.0 (X11; Linux x86_64) Chrome/57.0"


def _record(frames=(), headers=None):
    return WebSocketRecord(
        url="wss://rt.t.com/s",
        handshake_headers=headers if headers is not None
        else {"User-Agent": UA},
        frames=list(frames),
    )


def test_user_agent_from_handshake():
    items = SentDataAnalyzer().analyze_socket(_record())
    assert items == {SentItem.USER_AGENT}


def test_cookie_from_handshake_header():
    record = _record(headers={"User-Agent": UA, "Cookie": "uid=abc"})
    items = SentDataAnalyzer().analyze_socket(record)
    assert SentItem.COOKIE in items


def test_empty_cookie_header_not_counted():
    record = _record(headers={"User-Agent": UA, "Cookie": ""})
    assert SentItem.COOKIE not in SentDataAnalyzer().analyze_socket(record)


def test_binary_frame_flags_binary():
    record = _record(frames=[FrameData(sent=True, opcode=2, payload="\x00\x01")])
    assert SentItem.BINARY in SentDataAnalyzer().analyze_socket(record)


def test_binary_frames_are_not_text_scanned():
    record = _record(frames=[
        FrameData(sent=True, opcode=2, payload='"screen":"1920x1080"'),
    ])
    items = SentDataAnalyzer().analyze_socket(record)
    assert SentItem.SCREEN not in items


def test_received_frames_not_scanned_as_sent():
    record = _record(frames=[
        FrameData(sent=False, opcode=1, payload='{"ip": "1.2.3.4"}'),
    ])
    assert SentItem.IP not in SentDataAnalyzer().analyze_socket(record)


def test_items_unioned_across_frames():
    record = _record(frames=[
        FrameData(sent=True, opcode=1, payload='{"screen":"800x600"}'),
        FrameData(sent=True, opcode=1, payload='{"lang":"en-US"}'),
    ])
    items = SentDataAnalyzer().analyze_socket(record)
    assert {SentItem.SCREEN, SentItem.LANGUAGE} <= items


def test_socket_sent_nothing():
    analyzer = SentDataAnalyzer()
    assert analyzer.socket_sent_nothing(_record())
    assert not analyzer.socket_sent_nothing(
        _record(frames=[FrameData(sent=True, opcode=1, payload="x")])
    )


def test_fingerprinting_criterion():
    analyzer = SentDataAnalyzer()
    assert analyzer.is_fingerprinting(
        {SentItem.SCREEN, SentItem.VIEWPORT, SentItem.ORIENTATION}
    )
    assert not analyzer.is_fingerprinting({SentItem.SCREEN, SentItem.COOKIE})


def test_analyze_http_combines_sources():
    analyzer = SentDataAnalyzer()
    items = analyzer.analyze_http(
        url_query="scr=1024x768",
        headers={"User-Agent": UA, "Cookie": "uid=1"},
        post_data='{"dom": "<html></html>"}',
    )
    assert {SentItem.SCREEN, SentItem.USER_AGENT, SentItem.COOKIE,
            SentItem.DOM} <= items
