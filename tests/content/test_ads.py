"""Tests for ad-unit extraction and the §4.3 ad-delivery analysis."""

import json

from repro.content.ads import AdUnit, extract_ad_units
from repro.inclusion.node import FrameData


def _recv(payload):
    return FrameData(sent=False, opcode=1, payload=payload)


def test_extracts_lockerdome_shape():
    payload = json.dumps({
        "op": "ads", "slot": "slot-1",
        "ads": [{
            "image": "https://cdn1.lockerdome.com/uploads/ad1234.jpg",
            "caption": "Odd Trick To Fix Sagging Skin",
            "width": 300, "height": 250,
            "click_url": "https://lockerdome.com/click/99",
        }],
    })
    units = extract_ad_units([_recv(payload)])
    assert units == [AdUnit(
        image_url="https://cdn1.lockerdome.com/uploads/ad1234.jpg",
        caption="Odd Trick To Fix Sagging Skin",
        width=300, height=250,
        click_url="https://lockerdome.com/click/99",
    )]


def test_alternate_key_spellings():
    payload = json.dumps({
        "creative": "https://cdn.ads.example/x.png",
        "headline": "Win an iPad", "w": 728, "h": 90,
    })
    units = extract_ad_units([_recv(payload)])
    assert units[0].image_url.endswith("x.png")
    assert units[0].caption == "Win an iPad"
    assert (units[0].width, units[0].height) == (728, 90)


def test_nested_units_found():
    payload = json.dumps({"data": {"slots": [
        {"ad": {"image": "https://c.example/1.jpg", "caption": "A"}},
        {"ad": {"image": "https://c.example/2.jpg", "caption": "B"}},
    ]}})
    assert len(extract_ad_units([_recv(payload)])) == 2


def test_ignores_sent_and_non_json_frames():
    frames = [
        FrameData(sent=True, opcode=1, payload=json.dumps(
            {"image": "https://c.example/up.jpg"})),
        _recv("<div>html</div>"),
        _recv("plain text"),
        _recv("{truncated json"),
    ]
    assert extract_ad_units(frames) == []


def test_chat_and_feed_payloads_have_no_units():
    frames = [
        _recv(json.dumps({"event": "update", "data": {"count": 3}})),
        _recv(json.dumps({"rec": "config", "sample": 0.25})),
    ]
    assert extract_ad_units(frames) == []


def test_relative_image_paths_ignored():
    payload = json.dumps({"image": "/img/agent3.png", "caption": "x"})
    assert extract_ad_units([_recv(payload)]) == []


class TestAdDeliveryOverStudy:
    def test_lockerdome_is_the_ad_network(self, tiny_study):
        from repro.analysis.ads import compute_ad_delivery

        stats = compute_ad_delivery(tiny_study.views,
                                    tiny_study.dataset.engine)
        assert stats.sockets_with_ads > 0
        top_receiver, _ = stats.receivers.most_common(1)[0]
        assert top_receiver == "lockerdome.com"

    def test_creatives_on_unlisted_cdn(self, tiny_study):
        from repro.analysis.ads import compute_ad_delivery

        stats = compute_ad_delivery(tiny_study.views,
                                    tiny_study.dataset.engine)
        # The §4.3 finding: cdn1.lockerdome.com is not blacklisted.
        assert "cdn1.lockerdome.com" in stats.creative_hosts
        assert stats.pct_unlisted_creatives > 90.0

    def test_render(self, tiny_study):
        from repro.analysis.ads import compute_ad_delivery, render_ad_delivery

        stats = compute_ad_delivery(tiny_study.views,
                                    tiny_study.dataset.engine)
        text = render_ad_delivery(stats)
        assert "circumvention" in text
        assert "lockerdome" in text
