"""Tests for browser-side tracking-item rendering and cookie modes."""

from repro.browser import Browser
from repro.cdp import SessionRecorder
from repro.cdp.events import (
    RequestWillBeSent,
    WebSocketFrameSent,
    WebSocketWillSendHandshakeRequest,
)
from repro.net.http import ResourceType
from repro.web.blueprint import HttpBeaconPlan, PageBlueprint, ResourceNode, SocketPlan

PAGE = "https://pub.example.com/"


def _beacon_page(items):
    node = ResourceNode(
        url="https://px.tracker.example/b",
        resource_type=ResourceType.IMAGE,
        sets_cookie=True,
        beacon=HttpBeaconPlan(query_items=tuple(items)),
    )
    return PageBlueprint(url=PAGE, resources=[node])


def _beacon_url(browser, items):
    recorder = SessionRecorder(browser.bus)
    browser.visit(_beacon_page(items))
    return next(
        e.url for e in recorder.events
        if isinstance(e, RequestWillBeSent) and "px.tracker" in e.url
    )


def test_device_profile_items_rendered(browser):
    url = _beacon_url(browser, ["screen", "viewport", "resolution",
                                "device", "browser", "ip"])
    assert "screen=1920x1080" in url
    assert "viewport=1920x948" in url
    assert "resolution=1920x1080x24" in url
    assert "device=desktop" in url
    assert "browser=Chrome" in url
    assert "ip=155.33.17.68" in url


def test_uid_stable_within_profile(browser):
    first = _beacon_url(browser, ["uid"])
    second = _beacon_url(browser, ["uid"])
    assert first.split("uid=")[1] == second.split("uid=")[1]


def test_uid_changes_across_profiles(browser):
    first = _beacon_url(browser, ["uid"])
    browser.new_profile("someone-else")
    second = _beacon_url(browser, ["uid"])
    assert first.split("uid=")[1] != second.split("uid=")[1]


def test_first_seen_renders_after_cookie_exists(browser):
    # First request mints via uid; first_seen then resolves.
    _beacon_url(browser, ["uid"])
    url = _beacon_url(browser, ["first_seen"])
    assert "first_seen=2017-" in url


def test_first_seen_empty_without_cookie(browser):
    url = _beacon_url(browser, ["first_seen"])
    assert "first_seen" not in url  # empty values are dropped


def _socket_page(cookie_enabled):
    script = ResourceNode(url="https://cdn.chat.example/w.js",
                          sets_cookie=cookie_enabled)
    script.sockets.append(SocketPlan(
        ws_url="wss://ws.chat.example/s", profile="chat",
        cookie_enabled=cookie_enabled,
    ))
    return PageBlueprint(url=PAGE, resources=[script])


def test_cookie_disabled_installation_sends_no_cookie():
    hits = 0
    for seed in range(20):
        browser = Browser(version=57, seed=seed)
        recorder = SessionRecorder(browser.bus)
        browser.visit(_socket_page(cookie_enabled=False))
        handshake = next(e for e in recorder.events
                         if isinstance(e, WebSocketWillSendHandshakeRequest))
        hits += "Cookie" in handshake.headers
    assert hits == 0


def test_cookie_enabled_installation_usually_sends_cookie():
    hits = 0
    for seed in range(20):
        browser = Browser(version=57, seed=seed)
        recorder = SessionRecorder(browser.bus)
        browser.visit(_socket_page(cookie_enabled=True))
        handshake = next(e for e in recorder.events
                         if isinstance(e, WebSocketWillSendHandshakeRequest))
        hits += "Cookie" in handshake.headers
    assert hits >= 18  # the widget script set the cookie beforehand


def test_cookieless_socket_payload_has_empty_identifier():
    browser = Browser(version=57, seed=3)
    recorder = SessionRecorder(browser.bus)
    browser.visit(_socket_page(cookie_enabled=False))
    sent = [e for e in recorder.events if isinstance(e, WebSocketFrameSent)]
    for frame in sent:
        assert '"visitor_cookie": ""' in frame.payload_data or \
            "visitor_cookie" not in frame.payload_data
