"""Tests for the miniature DOM (Figure 2's syntactic side)."""

from repro.browser.dom import DomNode, build_dom, serialize_document
from repro.net.http import ResourceType
from repro.web.blueprint import PageBlueprint, ResourceNode, SocketPlan

PAGE = "https://pub.example.com/"


def _page():
    css = ResourceNode(url=f"{PAGE}styles.css",
                       resource_type=ResourceType.STYLESHEET)
    ad_script = ResourceNode(url="https://ads.example.net/script.js")
    ad_script.children.append(ResourceNode(
        url="https://ads.example.net/image.img",
        resource_type=ResourceType.IMAGE,
    ))
    ad_script.sockets.append(SocketPlan(ws_url="ws://adnet.example.io/data.ws"))
    return PageBlueprint(
        url=PAGE, title="Sample", resources=[css, ad_script],
        dom_html='<input type="search" name="q" value="secret query"/>',
    )


def test_dom_places_stylesheet_in_head_script_in_body():
    dom = build_dom(_page())
    head = dom.children[0]
    body = dom.children[1]
    assert any(n.tag == "link" for n in head.children)
    assert any(n.tag == "script" for n in body.walk())


def test_figure2_contrast_with_inclusion_tree():
    """The DOM nests by markup; dynamically fetched resources are
    siblings, and the WebSocket does not exist in the DOM at all —
    exactly the Figure 2 distinction."""
    dom = build_dom(_page())
    script = next(n for n in dom.walk() if n.tag == "script")
    # The image the script fetched is NOT a DOM child of the script…
    assert all(child.tag != "img" for child in script.children)
    assert any(n.tag == "img" for n in dom.walk())
    # …and no element represents the socket.
    serialized = dom.serialize()
    assert "data.ws" not in serialized


def test_iframe_document_nests_syntactically():
    frame = ResourceNode(
        url="https://ads.example.net/frame.html",
        resource_type=ResourceType.SUB_FRAME,
        children=[ResourceNode(url="https://ads.example.net/creative.png",
                               resource_type=ResourceType.IMAGE)],
    )
    dom = build_dom(PageBlueprint(url=PAGE, resources=[frame]))
    iframe = next(n for n in dom.walk() if n.tag == "iframe")
    assert any(n.tag == "img" for n in iframe.walk())


def test_serialize_document_contains_sensitive_fragment():
    text = serialize_document(_page())
    assert text.startswith("<!DOCTYPE html>")
    assert "<html>" in text
    assert 'value="secret query"' in text
    assert "<title>Sample</title>" in text


def test_attribute_escaping():
    node = DomNode("img", {"src": 'x" onerror="alert(1)'})
    assert 'onerror=' not in node.serialize().replace("&quot;", '"')[:9]
    assert "&quot;" in node.serialize()


def test_inline_script_element():
    inline = ResourceNode(url="", inline=True,
                          resource_type=ResourceType.SCRIPT)
    dom = build_dom(PageBlueprint(url=PAGE, resources=[inline]))
    scripts = [n for n in dom.walk() if n.tag == "script"]
    assert scripts and scripts[0].text


def test_replay_payload_carries_real_document(browser):
    page = _page()
    result = browser.visit(page)
    # Force the serialization path via a replay socket.
    from repro.browser.dom import serialize_document as sd

    assert "secret query" in sd(page)
