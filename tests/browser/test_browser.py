"""Tests for the simulated browser's event emission."""

from repro.cdp.events import (
    FrameNavigated,
    RequestWillBeSent,
    ScriptParsed,
    WebSocketCreated,
    WebSocketFrameSent,
    WebSocketWillSendHandshakeRequest,
)
from repro.cdp.recorder import SessionRecorder
from repro.net.http import ResourceType
from repro.web.blueprint import HttpBeaconPlan, PageBlueprint, ResourceNode, SocketPlan

PAGE = "https://pub.example.com/"


def _page_with_socket(inline=False):
    script = ResourceNode(
        url="" if inline else "https://cdn.chat.example/widget.js",
        inline=inline,
        resource_type=ResourceType.SCRIPT,
        sets_cookie=True,
    )
    script.sockets.append(SocketPlan(
        ws_url="wss://ws.chat.example/socket", profile="chat",
    ))
    return PageBlueprint(url=PAGE, title="T", resources=[script],
                         dom_html="<html></html>")


def test_visit_emits_document_then_resources(browser, bus):
    recorder = SessionRecorder(bus)
    browser.visit(_page_with_socket())
    methods = [e.METHOD for e in recorder.events]
    assert methods[0] == "Network.requestWillBeSent"
    assert "Page.frameNavigated" in methods[:3]
    assert "Debugger.scriptParsed" in methods
    assert "Network.webSocketCreated" in methods
    assert "Network.webSocketClosed" in methods


def test_remote_script_parses_with_own_url(browser, bus):
    recorder = SessionRecorder(bus)
    browser.visit(_page_with_socket(inline=False))
    parsed = [e for e in recorder.events if isinstance(e, ScriptParsed)]
    assert parsed[0].url == "https://cdn.chat.example/widget.js"
    created = next(e for e in recorder.events
                   if isinstance(e, WebSocketCreated))
    assert created.initiator.url == "https://cdn.chat.example/widget.js"


def test_inline_script_parses_with_document_url(browser, bus):
    recorder = SessionRecorder(bus)
    browser.visit(_page_with_socket(inline=True))
    parsed = [e for e in recorder.events if isinstance(e, ScriptParsed)]
    assert parsed[0].url == PAGE
    assert parsed[0].is_inline
    created = next(e for e in recorder.events
                   if isinstance(e, WebSocketCreated))
    assert created.initiator.url == PAGE


def test_handshake_carries_ua_and_origin(browser, bus):
    recorder = SessionRecorder(bus)
    browser.visit(_page_with_socket())
    handshake = next(e for e in recorder.events
                     if isinstance(e, WebSocketWillSendHandshakeRequest))
    assert "Chrome/58." in handshake.headers["User-Agent"]
    assert handshake.headers["Origin"] == "https://pub.example.com"
    assert handshake.headers["Sec-WebSocket-Version"] == "13"


def test_chat_frames_flow(browser, bus):
    recorder = SessionRecorder(bus)
    result = browser.visit(_page_with_socket())
    assert result.sockets_opened == 1
    sent = [e for e in recorder.events if isinstance(e, WebSocketFrameSent)]
    assert result.frames_sent == len(sent)


def test_visit_counters(browser):
    result = browser.visit(_page_with_socket())
    assert result.requests == 2  # document + widget script
    assert result.sockets_opened == 1
    assert result.blocked_requests == 0


def test_beacon_query_rendered_with_cookie_value(browser, bus):
    node = ResourceNode(
        url="https://px.tracker.example/sync",
        resource_type=ResourceType.IMAGE,
        sets_cookie=True,
        beacon=HttpBeaconPlan(query_items=("uid", "language")),
    )
    page = PageBlueprint(url=PAGE, resources=[node])
    recorder = SessionRecorder(bus)
    browser.visit(page)
    request = next(
        e for e in recorder.events
        if isinstance(e, RequestWillBeSent) and "px.tracker" in e.url
    )
    assert "uid=" in request.url
    assert "language=en-US" in request.url


def test_post_beacon_renders_dom(browser, bus):
    node = ResourceNode(
        url="https://rec.replay.example/collect",
        resource_type=ResourceType.XHR,
        beacon=HttpBeaconPlan(post_items=("dom",)),
    )
    page = PageBlueprint(url=PAGE, resources=[node],
                         dom_html="<html><body>X</body></html>")
    recorder = SessionRecorder(bus)
    browser.visit(page)
    request = next(
        e for e in recorder.events
        if isinstance(e, RequestWillBeSent) and "collect" in e.url
    )
    assert request.method == "POST"
    assert "<html>" in request.post_data


def test_subframe_fetch_and_navigation(browser, bus):
    frame_node = ResourceNode(
        url="https://ads.example.net/frame.html",
        resource_type=ResourceType.SUB_FRAME,
        mime_type="text/html",
        children=[ResourceNode(
            url="https://ads.example.net/creative.png",
            resource_type=ResourceType.IMAGE, mime_type="image/png",
        )],
    )
    page = PageBlueprint(url=PAGE, resources=[frame_node])
    recorder = SessionRecorder(bus)
    browser.visit(page)
    navigations = [e for e in recorder.events if isinstance(e, FrameNavigated)]
    assert len(navigations) == 2  # main + iframe
    assert navigations[1].parent_frame_id == navigations[0].frame_id
    requests = [e.url for e in recorder.events
                if isinstance(e, RequestWillBeSent)]
    assert "https://ads.example.net/frame.html" in requests
    assert "https://ads.example.net/creative.png" in requests


def test_new_profile_clears_cookies(browser):
    browser.jar.ensure_tracking_id("t.example", "uid", 0.0)
    assert len(browser.jar) == 1
    browser.new_profile("fresh")
    assert len(browser.jar) == 0


def test_ws_pool_draws_one_endpoint(browser, bus):
    script = ResourceNode(url="https://game.example/loader.js")
    script.sockets.append(SocketPlan(
        ws_pool=("wss://s1.shard.example/g", "wss://s2.shard.example/g"),
        profile="game_state",
    ))
    page = PageBlueprint(url=PAGE, resources=[script])
    recorder = SessionRecorder(bus)
    browser.visit(page)
    created = next(e for e in recorder.events
                   if isinstance(e, WebSocketCreated))
    assert created.url in ("wss://s1.shard.example/g",
                           "wss://s2.shard.example/g")


def test_visit_deterministic_for_same_profile(bus):
    from repro.browser import Browser

    events_a, events_b = [], []
    for sink in (events_a, events_b):
        browser = Browser(version=58, seed=99)
        browser.bus.subscribe(sink.append)
        browser.new_profile("p")
        browser.visit(_page_with_socket())
    payloads_a = [e.payload_data for e in events_a
                  if hasattr(e, "payload_data")]
    payloads_b = [e.payload_data for e in events_b
                  if hasattr(e, "payload_data")]
    assert payloads_a == payloads_b
