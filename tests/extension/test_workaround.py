"""Tests for the uBO-Extra-style WebSocket-wrapper workaround."""

import pytest

from repro.browser import Browser
from repro.extension.workaround import WebSocketWrapperWorkaround
from repro.filters import FilterEngine, parse_filter_list
from repro.net.http import ResourceType
from repro.web.blueprint import PageBlueprint, ResourceNode, SocketPlan

PAGE = "https://pub.example/"


def _engine():
    return FilterEngine([
        parse_filter_list("test", "||socketspy.example^$websocket")
    ])


def _page(in_subframe=False):
    script = ResourceNode(url="https://cdn.helper.example/x.js")
    script.sockets.append(SocketPlan(
        ws_url="wss://rt.socketspy.example/ws", profile="silent",
    ))
    if in_subframe:
        frame = ResourceNode(
            url="https://frames.example/f.html",
            resource_type=ResourceType.SUB_FRAME, mime_type="text/html",
            children=[script],
        )
        return PageBlueprint(url=PAGE, resources=[frame])
    return PageBlueprint(url=PAGE, resources=[script])


class TestWrapperUnit:
    def test_blocks_listed_endpoint(self):
        wrapper = WebSocketWrapperWorkaround(_engine())
        allowed = wrapper.allow_socket(
            "wss://rt.socketspy.example/ws", PAGE,
            in_subframe=False, coverage_draw=0.0,
        )
        assert not allowed
        assert wrapper.stats.blocked == 1

    def test_allows_unlisted(self):
        wrapper = WebSocketWrapperWorkaround(_engine())
        assert wrapper.allow_socket("wss://benign.example/ws", PAGE,
                                    in_subframe=False, coverage_draw=0.0)

    def test_subframe_race_lets_sockets_escape(self):
        wrapper = WebSocketWrapperWorkaround(_engine(), subframe_coverage=0.5)
        # Draw above coverage: wrapper not installed in this realm yet.
        assert wrapper.allow_socket("wss://rt.socketspy.example/ws", PAGE,
                                    in_subframe=True, coverage_draw=0.9)
        assert wrapper.stats.escaped_subframe == 1
        # Draw below coverage: wrapped and blocked.
        assert not wrapper.allow_socket("wss://rt.socketspy.example/ws", PAGE,
                                        in_subframe=True, coverage_draw=0.1)

    def test_main_frame_never_escapes(self):
        wrapper = WebSocketWrapperWorkaround(_engine(), subframe_coverage=0.0)
        assert not wrapper.allow_socket("wss://rt.socketspy.example/ws", PAGE,
                                        in_subframe=False, coverage_draw=0.99)

    def test_detectable(self):
        assert WebSocketWrapperWorkaround(_engine()).is_detectable

    def test_coverage_validation(self):
        with pytest.raises(ValueError):
            WebSocketWrapperWorkaround(_engine(), subframe_coverage=1.5)


class TestWrapperInBrowser:
    def test_defeats_wrb_on_chrome_57(self):
        """The whole point: the wrapper works where webRequest cannot."""
        browser = Browser(version=57)
        browser.ws_workaround = WebSocketWrapperWorkaround(_engine())
        result = browser.visit(_page())
        assert result.sockets_opened == 0
        assert result.sockets_blocked == 1
        # webRequest never saw the socket — the wrapper did.
        assert browser.webrequest.suppressed_by_wrb == 0

    def test_subframe_escape_in_browser(self):
        hits = 0
        for seed in range(30):
            browser = Browser(version=57, seed=seed)
            browser.ws_workaround = WebSocketWrapperWorkaround(
                _engine(), subframe_coverage=0.5
            )
            result = browser.visit(_page(in_subframe=True))
            hits += result.sockets_opened
        # Roughly half the sub-frame sockets race past the wrapper.
        assert 5 <= hits <= 25

    def test_without_wrapper_wrb_wins(self):
        browser = Browser(version=57)
        result = browser.visit(_page())
        assert result.sockets_opened == 1
