"""Tests for the ad-blocker extension against the webRequest API."""

from repro.extension.adblocker import AdBlockerExtension
from repro.extension.webrequest import WebRequestApi
from repro.net.http import HttpRequest, ResourceType

PAGE = "https://pub.example/"


def _script():
    return HttpRequest(url="https://cdn.ads.example/tag.js",
                       resource_type=ResourceType.SCRIPT,
                       first_party_url=PAGE)


def _socket():
    return HttpRequest(url="wss://socketspy.example/ws",
                       resource_type=ResourceType.WEBSOCKET,
                       first_party_url=PAGE)


def test_blocks_listed_script(simple_engine):
    api = WebRequestApi(58)
    blocker = AdBlockerExtension(simple_engine)
    blocker.install(api)
    assert api.dispatch_on_before_request(_script()) is False
    assert blocker.stats.blocked == 1


def test_allows_unlisted(simple_engine):
    api = WebRequestApi(58)
    blocker = AdBlockerExtension(simple_engine)
    blocker.install(api)
    ok = HttpRequest(url="https://benign.example/app.js",
                     resource_type=ResourceType.SCRIPT, first_party_url=PAGE)
    assert api.dispatch_on_before_request(ok) is True


def test_exception_rule_allows(simple_engine):
    api = WebRequestApi(58)
    AdBlockerExtension(simple_engine).install(api)
    allowed = HttpRequest(url="https://ads.example/acceptable/x.js",
                          resource_type=ResourceType.SCRIPT,
                          first_party_url=PAGE)
    assert api.dispatch_on_before_request(allowed) is True


def test_ws_aware_blocker_blocks_socket_on_58(simple_engine):
    api = WebRequestApi(58)
    AdBlockerExtension(simple_engine, websocket_aware=True).install(api)
    assert api.dispatch_on_before_request(_socket()) is False


def test_http_only_patterns_miss_socket_even_on_58(simple_engine):
    # The Franken et al. pitfall: wrong URL patterns, patched browser.
    api = WebRequestApi(58)
    AdBlockerExtension(simple_engine, websocket_aware=False).install(api)
    assert api.dispatch_on_before_request(_socket()) is True


def test_wrb_defeats_even_ws_aware_blocker(simple_engine):
    # Pre-58: the circumvention the paper documents.
    api = WebRequestApi(57)
    blocker = AdBlockerExtension(simple_engine, websocket_aware=True)
    blocker.install(api)
    assert api.dispatch_on_before_request(_socket()) is True
    assert blocker.stats.inspected == 0  # never even saw it


def test_blocked_urls_recorded(simple_engine):
    api = WebRequestApi(58)
    blocker = AdBlockerExtension(simple_engine, keep_blocked_urls=True)
    blocker.install(api)
    api.dispatch_on_before_request(_script())
    assert blocker.stats.blocked_urls == ["https://cdn.ads.example/tag.js"]


def test_stats_reset(simple_engine):
    blocker = AdBlockerExtension(simple_engine, keep_blocked_urls=True)
    blocker.stats.blocked = 3
    blocker.stats.blocked_urls.append("x")
    blocker.stats.reset()
    assert blocker.stats.blocked == 0 and blocker.stats.blocked_urls == []
