"""Tests for the chrome.webRequest simulation — the WRB lives here."""

from repro.extension.webrequest import (
    WEBREQUEST_BUG_FIX_VERSION,
    BlockingResponse,
    RequestFilter,
    WebRequestApi,
)
from repro.net.http import HttpRequest, ResourceType


def _ws_request():
    return HttpRequest(
        url="wss://rt.tracker.example/socket",
        resource_type=ResourceType.WEBSOCKET,
        first_party_url="https://pub.example/",
    )


def _http_request():
    return HttpRequest(
        url="https://cdn.tracker.example/tag.js",
        resource_type=ResourceType.SCRIPT,
        first_party_url="https://pub.example/",
    )


def _block_all(request):
    return BlockingResponse(cancel=True)


class TestWebRequestBug:
    def test_fix_version_is_58(self):
        assert WEBREQUEST_BUG_FIX_VERSION == 58

    def test_pre_58_has_bug(self):
        assert WebRequestApi(57).has_webrequest_bug
        assert WebRequestApi(52).has_webrequest_bug

    def test_58_plus_fixed(self):
        assert not WebRequestApi(58).has_webrequest_bug
        assert not WebRequestApi(65).has_webrequest_bug

    def test_websocket_bypasses_listeners_pre_58(self):
        api = WebRequestApi(57)
        api.add_on_before_request(_block_all)
        # The listener would cancel — but it is never consulted.
        assert api.dispatch_on_before_request(_ws_request()) is True
        assert api.suppressed_by_wrb == 1

    def test_websocket_blocked_post_58(self):
        api = WebRequestApi(58)
        api.add_on_before_request(_block_all)
        assert api.dispatch_on_before_request(_ws_request()) is False

    def test_http_blocked_regardless_of_version(self):
        for version in (57, 58):
            api = WebRequestApi(version)
            api.add_on_before_request(_block_all)
            assert api.dispatch_on_before_request(_http_request()) is False


class TestRequestFilter:
    def test_all_urls(self):
        assert RequestFilter(("<all_urls>",)).matches(_http_request())
        assert RequestFilter(("<all_urls>",)).matches(_ws_request())

    def test_http_pattern_does_not_match_ws(self):
        # Franken et al.: extensions registering http://*, https://*
        # never see WebSocket requests even on patched Chrome.
        http_only = RequestFilter(("http://*", "https://*"))
        assert http_only.matches(_http_request())
        assert not http_only.matches(_ws_request())

    def test_ws_pattern_matches_ws(self):
        ws_aware = RequestFilter(("ws://*", "wss://*"))
        assert ws_aware.matches(_ws_request())
        assert not ws_aware.matches(_http_request())

    def test_host_pattern(self):
        f = RequestFilter(("https://cdn.tracker.example/*",))
        assert f.matches(_http_request())
        assert not f.matches(HttpRequest(
            url="https://other.example/x", resource_type=ResourceType.SCRIPT
        ))

    def test_resource_type_filter(self):
        f = RequestFilter(resource_types=(ResourceType.IMAGE,))
        assert not f.matches(_http_request())


class TestDispatch:
    def test_non_blocking_listener_cannot_cancel(self):
        api = WebRequestApi(58)
        api.add_on_before_request(_block_all, blocking=False)
        assert api.dispatch_on_before_request(_http_request()) is True

    def test_first_cancel_wins(self):
        api = WebRequestApi(58)
        calls = []

        def observer(request):
            calls.append(request.url)
            return None

        api.add_on_before_request(_block_all)
        api.add_on_before_request(observer)
        assert api.dispatch_on_before_request(_http_request()) is False
        assert calls == []  # second listener not reached after cancel

    def test_listener_count(self):
        api = WebRequestApi(58)
        api.add_on_before_request(_block_all)
        api.add_on_before_request(_block_all)
        assert api.listener_count == 2


class TestTelemetry:
    def test_cancelled_counter(self):
        api = WebRequestApi(58)
        api.add_on_before_request(_block_all)
        api.dispatch_on_before_request(_http_request())
        api.dispatch_on_before_request(_ws_request())
        counts = api.as_counts()
        assert counts["dispatched"] == 2
        assert counts["cancelled"] == 2
        assert counts["suppressed_wrb"] == 0

    def test_wrb_suppression_counted(self):
        api = WebRequestApi(57)  # pre-patch: sockets bypass webRequest
        api.add_on_before_request(_block_all)
        assert api.dispatch_on_before_request(_ws_request()) is True
        counts = api.as_counts()
        assert counts == {"dispatched": 0, "suppressed_wrb": 1,
                          "cancelled": 0}
