"""Integration: the WRB circumvention story, end to end in one browser.

This is the paper's core mechanism test: with an ad blocker installed,
a pre-patch browser lets the A&A WebSocket through while the same page
in a patched browser has the socket blocked.
"""

from repro.browser import Browser
from repro.extension.adblocker import AdBlockerExtension
from repro.filters import FilterEngine, parse_filter_list
from repro.web.blueprint import PageBlueprint, ResourceNode, SocketPlan

PAGE = "https://pub.example.com/"

# A list that covers the tracker's socket endpoint but NOT the script
# that opens it — the situation §4.2 describes ("the only way to stop
# these connections would be to block the WebSockets themselves").
LIST_TEXT = "||sneaky-ads.example^$websocket"


def _page():
    script = ResourceNode(url="https://cdn.sneakyhost.example/loader.js")
    script.sockets.append(SocketPlan(
        ws_url="wss://rt.sneaky-ads.example/serve", profile="ad_serving",
        user_id="u1",
    ))
    return PageBlueprint(url=PAGE, resources=[script],
                         dom_html="<html></html>")


def _blocker():
    engine = FilterEngine([parse_filter_list("easylist", LIST_TEXT)])
    return AdBlockerExtension(engine, websocket_aware=True)


def test_pre_patch_socket_circumvents_blocker():
    browser = Browser(version=57)
    _blocker().install(browser.webrequest)
    result = browser.visit(_page())
    assert result.sockets_opened == 1
    assert result.sockets_blocked == 0
    assert browser.webrequest.suppressed_by_wrb == 1


def test_patched_browser_blocks_socket():
    browser = Browser(version=58)
    _blocker().install(browser.webrequest)
    result = browser.visit(_page())
    assert result.sockets_opened == 0
    assert result.sockets_blocked == 1


def test_patched_browser_with_http_only_patterns_still_bypassed():
    browser = Browser(version=58)
    engine = FilterEngine([parse_filter_list("easylist", LIST_TEXT)])
    AdBlockerExtension(engine, websocket_aware=False).install(
        browser.webrequest
    )
    result = browser.visit(_page())
    assert result.sockets_opened == 1  # Franken et al.'s finding


def test_blocked_script_kills_whole_subtree():
    browser = Browser(version=58)
    engine = FilterEngine([
        parse_filter_list("easylist", "||sneakyhost.example^")
    ])
    AdBlockerExtension(engine, websocket_aware=True).install(
        browser.webrequest
    )
    result = browser.visit(_page())
    # The initiating script is blocked, so its socket never opens.
    assert result.blocked_requests == 1
    assert result.sockets_opened == 0
    assert result.sockets_blocked == 0


def test_no_blocker_everything_loads():
    browser = Browser(version=57)
    result = browser.visit(_page())
    assert result.requests == 2
    assert result.sockets_opened == 1
