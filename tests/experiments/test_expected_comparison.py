"""Tests for the paper-expected values and comparison rendering."""

from repro.experiments import expected
from repro.experiments.comparison import (
    compare_overall,
    compare_table1,
    compare_table2,
    compare_table3,
    compare_table4,
    compare_table5,
)


class TestExpectedData:
    def test_table1_rows_match_paper_chronology(self):
        labels = [r.label for r in expected.PAPER_TABLE1]
        assert labels == ["Apr 02-05, 2017", "Apr 11-16, 2017",
                          "May 07-12, 2017", "Oct 12-16, 2017"]
        assert [r.unique_aa_initiators for r in expected.PAPER_TABLE1] == \
            [75, 63, 19, 23]

    def test_tables_have_15_rows(self):
        assert len(expected.PAPER_TABLE2) == 15
        assert len(expected.PAPER_TABLE3) == 15
        assert len(expected.PAPER_TABLE4) == 15

    def test_aa_counts_bounded_by_totals(self):
        for total, aa, _ in expected.PAPER_TABLE2.values():
            assert aa <= total
        for total, aa, _ in expected.PAPER_TABLE3.values():
            assert aa <= total

    def test_table3_sorted_by_initiators(self):
        totals = [v[0] for v in expected.PAPER_TABLE3.values()]
        assert totals == sorted(totals, reverse=True)

    def test_table4_sorted_by_sockets(self):
        counts = list(expected.PAPER_TABLE4.values())
        assert counts == sorted(counts, reverse=True)

    def test_table5_percentages_sane(self):
        assert expected.PAPER_TABLE5_SENT_WS["User Agent"] == 100.0
        for value in expected.PAPER_TABLE5_SENT_WS.values():
            assert 0.0 <= value <= 100.0
        # WS exfiltrates more than HTTP for every private item.
        for item, ws_pct in expected.PAPER_TABLE5_SENT_WS.items():
            if item == "User Agent":
                continue
            assert ws_pct >= expected.PAPER_TABLE5_SENT_HTTP[item], item


class TestComparisonRendering:
    def test_all_blocks_render_markdown(self, tiny_study):
        blocks = [
            compare_table1(tiny_study.table1),
            compare_table2(tiny_study.table2),
            compare_table3(tiny_study.table3),
            compare_table4(tiny_study.table4),
            compare_table5(tiny_study.table5),
            compare_overall(tiny_study.overall, tiny_study.blocking,
                            tiny_study.figure3, tiny_study.table5),
        ]
        for block in blocks:
            lines = block.splitlines()
            assert lines[0].startswith("| ")
            assert set(lines[1]) <= {"|", "-"}
            widths = {line.count("|") for line in lines}
            assert len(widths) == 1  # consistent column count

    def test_table4_comparison_contains_self_row(self, tiny_study):
        block = compare_table4(tiny_study.table4)
        assert "A&A domain to itself" in block
        assert "36,056" in block
