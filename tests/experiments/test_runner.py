"""Tests for the study runner and configs."""


from repro.experiments import DEFAULT_CONFIG, FULL_CONFIG, TINY_CONFIG, StudyConfig
from repro.experiments.runner import crawl_configs


def test_presets_shape():
    assert TINY_CONFIG.scale < DEFAULT_CONFIG.scale <= FULL_CONFIG.scale
    assert FULL_CONFIG.scale == 1.0
    assert FULL_CONFIG.pages_per_site == 15  # the paper's budget


def test_sample_scale_defaults_to_scale():
    config = StudyConfig(scale=0.2, sample_scale=None)
    assert config.resolved_sample_scale == 0.2


def test_with_scale_copies():
    config = DEFAULT_CONFIG.with_scale(0.5)
    assert config.scale == 0.5
    assert config.pages_per_site == DEFAULT_CONFIG.pages_per_site


def test_crawl_configs_track_chrome_release(tiny_web):
    configs = crawl_configs(tiny_web, DEFAULT_CONFIG)
    assert [c.chrome_major for c in configs] == [57, 57, 58, 58]
    assert [c.start_date for c in configs] == [
        "2017-04-02", "2017-04-11", "2017-05-07", "2017-10-12",
    ]
    # Two crawls before the 2017-04-19 patch, two after.
    assert all(d < "2017-04-19" for d in
               [c.start_date for c in configs if c.chrome_major == 57])
    assert all(d > "2017-04-19" for d in
               [c.start_date for c in configs if c.chrome_major == 58])


def test_crawl_subset(tiny_web):
    config = StudyConfig(crawls=(0, 3))
    configs = crawl_configs(tiny_web, config)
    assert [c.index for c in configs] == [0, 3]


def test_study_result_complete(tiny_study):
    assert tiny_study.table1 and tiny_study.table2 and tiny_study.table3
    assert tiny_study.table4.rows
    assert tiny_study.table5.ws_total > 0
    assert tiny_study.figure3.bins
    assert tiny_study.overall.total_sockets == len(tiny_study.views)
    assert len(tiny_study.summaries) == 4


def test_labeling_rediscovers_expected_companies(tiny_study):
    """The pipeline must rediscover the ecosystem's A&A set from
    network behaviour alone."""
    expected = tiny_study.web.registry.expected_aa_domains()
    labeled = tiny_study.labeler.aa_domains
    hits = expected & labeled
    # Not every company is observed at tiny scale, but the overlap must
    # be substantial and include the headline receivers.
    assert len(hits) > len(expected) * 0.5
    for domain in ("intercom.io", "zopim.com", "33across.com",
                   "doubleclick.net", "hotjar.com"):
        assert domain in labeled, domain


def test_no_false_positive_labels(tiny_study):
    """Benign infrastructure must not be labeled A&A."""
    for domain in ("gstatic.com", "jquery.com", "slither.io",
                   "espncdn.com", "googleapis.com"):
        assert not tiny_study.labeler.is_aa(domain), domain


def test_cloudfront_mapping_correct(tiny_study):
    truth = {
        host: tiny_study.web.registry.companies[key].domain
        for host, key in tiny_study.web.registry.cloudfront_truth.items()
    }
    for host, domain in tiny_study.resolver.cloudfront_mapping.items():
        assert truth.get(host) == domain
