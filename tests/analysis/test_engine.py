"""Golden-equivalence tests for the streaming analysis engine.

The engine's one-sweep fold must agree byte-for-byte with the
materialized ``compute_*`` path (which `tiny_study` uses via the same
stages), whether the observations come from the live dataset, a saved
v2 file, a warm cache, or shard-local partial folds merged in any
order.
"""

from __future__ import annotations

import pytest

from repro.analysis.engine import (
    AnalysisEngine,
    DatasetSource,
    fold_shard,
    merge_stage_lists,
)
from repro.analysis.cache import StageCache
from repro.analysis.stage import (
    STUDY_STAGE_NAMES,
    StageContext,
    study_stages,
)
from repro.crawler.persistence import (
    dataset_fingerprint,
    file_fingerprint,
    open_dataset,
    save_dataset,
)
from repro.util.serialization import dumps


@pytest.fixture(scope="module")
def dataset_file(tiny_study, tmp_path_factory):
    """The tiny study's dataset saved in the v2 on-disk format."""
    path = tmp_path_factory.mktemp("engine") / "dataset.jsonl"
    save_dataset(path, tiny_study.dataset)
    return path


def _study_artifacts(study):
    return {
        "table1": study.table1,
        "table2": study.table2,
        "table3": study.table3,
        "table4": study.table4,
        "table5": study.table5,
        "figure3": study.figure3,
        "blocking": study.blocking,
        "overall": study.overall,
    }


class TestStreamingEquivalence:
    def test_file_stream_matches_live_study(self, tiny_study, dataset_file):
        engine = AnalysisEngine(stages=study_stages())
        outcome = engine.run(DatasetSource.from_file(dataset_file))
        for name, expected in _study_artifacts(tiny_study).items():
            assert dumps(outcome[name]) == dumps(expected), name

    def test_view_sink_preserves_record_order(self, tiny_study, dataset_file):
        views = []
        engine = AnalysisEngine(stages=[])
        engine.run(DatasetSource.from_file(dataset_file),
                   view_sink=views.append)
        assert dumps(views) == dumps(tiny_study.views)

    def test_fingerprints_agree_live_vs_file(self, tiny_study, dataset_file):
        assert (dataset_fingerprint(tiny_study.dataset)
                == file_fingerprint(dataset_file))

    def test_gzip_file_same_fingerprint(self, tiny_study, tmp_path):
        path = tmp_path / "dataset.jsonl.gz"
        save_dataset(path, tiny_study.dataset)
        assert file_fingerprint(path) == dataset_fingerprint(
            tiny_study.dataset
        )

    def test_reader_restores_aggregates(self, tiny_study, dataset_file):
        reader = open_dataset(dataset_file)
        live = tiny_study.dataset
        assert reader.meta == live.meta
        assert reader.dataset.tag_counter.aa == live.tag_counter.aa
        assert reader.dataset.http_requests_by_host == \
            live.http_requests_by_host
        assert reader.dataset.chain_signatures == live.chain_signatures


class TestCaching:
    def test_cold_then_warm_is_byte_identical(self, dataset_file, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = AnalysisEngine(stages=study_stages(),
                              cache=StageCache(cache_dir))
        first = cold.run(DatasetSource.from_file(dataset_file))
        assert set(first.computed) == set(STUDY_STAGE_NAMES)
        assert first.cached == ()
        assert first.views_folded > 0

        warm_cache = StageCache(cache_dir)
        warm = AnalysisEngine(stages=study_stages(), cache=warm_cache)
        second = warm.run(DatasetSource.from_file(dataset_file))
        assert second.computed == ()
        assert set(second.cached) == set(STUDY_STAGE_NAMES)
        assert second.views_folded == 0  # the sweep was skipped
        assert warm_cache.hits == len(STUDY_STAGE_NAMES)
        for name in STUDY_STAGE_NAMES:
            assert dumps(first[name]) == dumps(second[name]), name

    def test_warm_run_matches_uncached_run(self, dataset_file, tmp_path):
        cache_dir = tmp_path / "cache"
        AnalysisEngine(stages=study_stages(),
                       cache=StageCache(cache_dir)).run(
            DatasetSource.from_file(dataset_file))
        cached = AnalysisEngine(stages=study_stages(),
                                cache=StageCache(cache_dir)).run(
            DatasetSource.from_file(dataset_file))
        uncached = AnalysisEngine(stages=study_stages()).run(
            DatasetSource.from_file(dataset_file))
        for name in STUDY_STAGE_NAMES:
            assert dumps(cached[name]) == dumps(uncached[name]), name

    def test_dataset_edit_invalidates_every_stage(
        self, dataset_file, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        AnalysisEngine(stages=study_stages(),
                       cache=StageCache(cache_dir)).run(
            DatasetSource.from_file(dataset_file))
        # Drop the last socket record: a different dataset must not
        # reuse any cached artifact.
        edited = tmp_path / "edited.jsonl"
        lines = dataset_file.read_text(encoding="utf-8").splitlines(True)
        edited.write_text("".join(lines[:-1]), encoding="utf-8")
        assert file_fingerprint(edited) != file_fingerprint(dataset_file)
        result = AnalysisEngine(stages=study_stages(),
                                cache=StageCache(cache_dir)).run(
            DatasetSource.from_file(edited))
        assert result.cached == ()
        assert set(result.computed) == set(STUDY_STAGE_NAMES)


class TestShardMerge:
    def test_merged_shards_match_sequential(self, tiny_study):
        views = tiny_study.views
        thirds = len(views) // 3
        chunks = [views[:thirds], views[thirds:2 * thirds],
                  views[2 * thirds:]]
        parts = [fold_shard(study_stages(), chunk) for chunk in chunks]
        # Merge in a non-sequential order: associativity and
        # order-insensitivity must hold.
        merged = merge_stage_lists([parts[2], parts[0], parts[1]])
        sequential = fold_shard(study_stages(), views)
        ctx = StageContext(
            meta=tiny_study.dataset.meta,
            labeler=tiny_study.labeler,
            resolver=tiny_study.resolver,
            engine=tiny_study.dataset.engine,
            dataset=tiny_study.dataset,
        )
        for merged_stage, seq_stage in zip(merged, sequential):
            assert dumps(merged_stage.finalize(ctx)) == \
                dumps(seq_stage.finalize(ctx)), merged_stage.name

    def test_merge_rejects_mismatched_lists(self):
        with pytest.raises(ValueError):
            merge_stage_lists([study_stages(), study_stages()[:-1]])

    def test_merge_rejects_reordered_lists(self):
        stages = study_stages()
        with pytest.raises(ValueError):
            merge_stage_lists([stages, list(reversed(study_stages()))])
