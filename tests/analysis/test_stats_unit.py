"""Unit tests for §4.1 statistics over hand-built socket views."""

from repro.analysis.classify import SocketView
from repro.analysis.stats import compute_overall_stats
from repro.analysis.table1 import compute_table1
from repro.crawler.dataset import DatasetMeta, SocketRecord


def _view(crawl, site, initiator, receiver, aa_init, aa_recv,
          cross=True, rank=100):
    record = SocketRecord(
        crawl=crawl, site_domain=site, rank=rank,
        page_url=f"https://www.{site}/",
        socket_host=f"ws.{receiver}", initiator_host=f"cdn.{initiator}",
        initiator_url=f"https://cdn.{initiator}/x.js",
        chain_hosts=(f"www.{site}", f"cdn.{initiator}", f"ws.{receiver}"),
        chain_script_urls=(), first_party_host=f"www.{site}",
        cross_origin=cross, handshake_cookie=False,
        sent_items=frozenset(), received_classes=frozenset(),
        sent_nothing=True, received_nothing=True,
    )
    return SocketView(
        record=record, initiator_domain=initiator, receiver_domain=receiver,
        aa_initiated=aa_init, aa_received=aa_recv, aa_chain=False,
    )


def _views():
    return [
        _view(0, "a.com", "tracker.com", "tracker.com", True, True),
        _view(0, "a.com", "tracker.com", "tracker.com", True, True),
        _view(0, "b.com", "b.com", "chat.io", False, True, cross=True),
        _view(0, "c.com", "c.com", "c.com", False, False, cross=False),
        _view(1, "a.com", "gone.net", "tracker.com", True, True),
        _view(1, "a.com", "tracker.com", "tracker.com", True, True),
    ]


def test_overall_counts():
    stats = compute_overall_stats(_views())
    assert stats.total_sockets == 6
    assert stats.unique_aa_initiators == 2  # tracker.com, gone.net
    assert stats.unique_aa_receivers == 2  # tracker.com, chat.io
    assert stats.pct_cross_origin == 100 * 5 / 6


def test_disappeared_between_first_and_last():
    stats = compute_overall_stats(_views())
    # crawl 0 initiators: {tracker.com}; crawl 1: {gone.net, tracker.com}.
    assert stats.disappeared_initiators == 0
    reversed_views = [
        _view(0, "a.com", "gone.net", "x.com", True, False),
        _view(3, "a.com", "tracker.com", "x.com", True, False),
    ]
    assert compute_overall_stats(reversed_views).disappeared_initiators == 1


def test_avg_sockets_per_site_per_crawl():
    stats = compute_overall_stats(_views())
    # (crawl0: a=2, b=1, c=1; crawl1: a=2) → 6 sockets over 4 site-crawls.
    assert stats.avg_sockets_per_socket_site == 6 / 4


def test_table1_denominators():
    crawl_sites = {
        0: [("a.com", 1), ("b.com", 2), ("c.com", 3), ("d.com", 4)],
        1: [("a.com", 1), ("b.com", 2), ("c.com", 3), ("d.com", 4)],
    }
    labels = {0: "first", 1: "second"}
    rows = compute_table1(
        _views(), DatasetMeta.from_mappings(crawl_sites, labels)
    )
    assert rows[0].pct_sites_with_sockets == 75.0  # a, b, c of 4
    assert rows[1].pct_sites_with_sockets == 25.0  # only a
    assert rows[0].pct_sockets_aa_initiators == 50.0  # 2 of 4
    assert rows[1].unique_aa_initiators == 2


def test_table1_empty_crawl():
    rows = compute_table1(
        [], DatasetMeta.from_mappings({0: [("a.com", 1)]}, {0: "x"})
    )
    assert rows[0].total_sockets == 0
    assert rows[0].pct_sites_with_sockets == 0.0


def test_aa_involvement_ratio():
    views = (
        [_view(0, "a.com", "busy-tracker.com", "x.io", True, False)] * 20
        + [_view(0, "b.com", "b.com", "y.io", False, False)]
        + [_view(0, "c.com", "c.com", "z.io", False, False)]
    )
    stats = compute_overall_stats(views)
    assert stats.sockets_per_aa_initiator == 20.0
    assert stats.sockets_per_non_aa_initiator == 1.0
    assert stats.aa_involvement_ratio == 20.0


def test_aa_involvement_ratio_edge_cases():
    assert compute_overall_stats([]).aa_involvement_ratio == 0.0
    only_aa = [_view(0, "a.com", "t.com", "x.io", True, False)]
    assert compute_overall_stats(only_aa).aa_involvement_ratio == float("inf")
