"""Tests for Figure 3, the blocking analysis, and §4.1 stats."""

from repro.analysis.figure3 import coarse_series


class TestFigure3:
    def test_bins_cover_top_million(self, tiny_study):
        series = tiny_study.figure3
        assert series.bins[0] == 0
        assert series.bins[-1] == 990_000
        assert len(series.bins) == 100

    def test_fractions_bounded(self, tiny_study):
        series = tiny_study.figure3
        for aa, non in zip(series.aa_fraction, series.non_aa_fraction):
            assert 0.0 <= aa <= 100.0
            assert 0.0 <= non <= 100.0

    def test_aa_more_prevalent_than_non_aa(self, tiny_study):
        # "the fraction of A&A sockets is twice that of non-A&A".
        assert tiny_study.figure3.overall_ratio > 1.2

    def test_top_10k_ratio_exceeds_overall(self, tiny_study):
        series = tiny_study.figure3
        # A&A sockets skew to top publishers (4.5x vs 2x in the paper).
        assert series.top10k_ratio >= series.overall_ratio * 0.8
        assert series.top10k_ratio > 1.5

    def test_top_ranks_busier_than_tail(self, tiny_study):
        series = tiny_study.figure3
        head = series.aa_fraction[0]
        tail_bins = [
            series.aa_fraction[i]
            for i in range(50, 100)
            if series.publishers_per_bin[i] > 0
        ]
        tail_avg = sum(tail_bins) / len(tail_bins) if tail_bins else 0.0
        assert head > tail_avg

    def test_coarse_series_shape(self, tiny_study):
        rows = coarse_series(tiny_study.figure3, groups=10)
        assert len(rows) == 10
        assert sum(r[3] for r in rows) == sum(
            tiny_study.figure3.publishers_per_bin
        )


class TestBlocking:
    def test_socket_chains_rarely_blocked(self, tiny_study):
        """§4.2: only ~5% of A&A socket chains would have been blocked —
        the scripts opening the sockets are not on the lists."""
        blocking = tiny_study.blocking
        assert 0.0 < blocking.pct_socket_chains_blocked < 15.0

    def test_overall_chains_blocked_much_more(self, tiny_study):
        """…in contrast with ~27% of all A&A chains."""
        blocking = tiny_study.blocking
        assert blocking.pct_aa_chains_blocked > 15.0
        assert (blocking.pct_aa_chains_blocked
                > 2 * blocking.pct_socket_chains_blocked)

    def test_counts_consistent(self, tiny_study):
        blocking = tiny_study.blocking
        assert blocking.socket_chains_blocked <= blocking.socket_chains
        assert blocking.aa_chains_blocked <= blocking.aa_chains


class TestOverallStats:
    def test_cross_origin_over_90(self, tiny_study):
        assert tiny_study.overall.pct_cross_origin > 85.0

    def test_aa_receivers_at_most_20(self, tiny_study):
        assert 10 <= tiny_study.overall.unique_aa_receivers <= 20

    def test_many_aa_initiators_disappear(self, tiny_study):
        overall = tiny_study.overall
        assert overall.disappeared_initiators > overall.unique_aa_initiators / 2

    def test_sockets_per_site_in_paper_band(self, tiny_study):
        # 6–12 in the paper; the tiny study visits fewer pages so allow
        # a wider low end.
        assert 1.0 < tiny_study.overall.avg_sockets_per_socket_site < 15.0

    def test_third_party_receivers_exceed_aa(self, tiny_study):
        overall = tiny_study.overall
        assert (overall.unique_third_party_receivers
                > overall.unique_aa_receivers)
