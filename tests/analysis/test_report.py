"""Tests for text rendering."""

from repro.analysis import report


def test_table1_renders(tiny_study):
    text = report.render_table1(tiny_study.table1)
    assert "Apr 02-05, 2017" in text
    assert "% Sites w/ Sockets" in text
    assert len(text.splitlines()) == 2 + len(tiny_study.table1)


def test_table2_stars_aa(tiny_study):
    text = report.render_table2(tiny_study.table2)
    assert "doubleclick*" in text


def test_table3_renders(tiny_study):
    text = report.render_table3(tiny_study.table3)
    assert "intercom" in text


def test_table4_self_row(tiny_study):
    text = report.render_table4(tiny_study.table4)
    assert "A&A domain to itself" in text


def test_table5_sections(tiny_study):
    text = report.render_table5(tiny_study.table5)
    assert "User Agent" in text
    assert "Fingerprinting:" in text
    assert "DOM exfiltration receivers:" in text
    assert "No data" in text


def test_figure3_renders(tiny_study):
    text = report.render_figure3(tiny_study.figure3)
    assert "Overall A&A / non-A&A ratio" in text


def test_overall_and_blocking_render(tiny_study):
    assert "Cross-origin sockets" in report.render_overall(tiny_study.overall)
    assert "blocked" in report.render_blocking(tiny_study.blocking)


def test_columns_aligned(tiny_study):
    text = report.render_table1(tiny_study.table1)
    lines = text.splitlines()
    assert len({len(line.rstrip()) <= len(lines[0]) + 40 for line in lines})


def test_figure3_chart_renders(tiny_study):
    from repro.analysis.report import render_figure3_chart

    chart = render_figure3_chart(tiny_study.figure3)
    assert "Alexa rank" in chart
    assert "0-10K" in chart and "500K-1M" in chart
    assert "█" in chart or "░" in chart
