"""Tests for socket classification against derived labels."""

from repro.analysis.classify import classify_one
from repro.crawler.dataset import SocketRecord
from repro.labeling.aa_labeler import AaLabeler
from repro.labeling.resolver import DomainResolver


def _record(initiator="cdn.intercom.io", receiver="nexus.intercom.io",
            chain=("www.pub.com", "cdn.intercom.io", "nexus.intercom.io")):
    return SocketRecord(
        crawl=0, site_domain="pub.com", rank=10, page_url="https://www.pub.com/",
        socket_host=receiver, initiator_host=initiator,
        initiator_url=f"https://{initiator}/x.js",
        chain_hosts=chain, chain_script_urls=(),
        first_party_host="www.pub.com", cross_origin=True,
        handshake_cookie=True, sent_items=frozenset(),
        received_classes=frozenset(), sent_nothing=False,
        received_nothing=False,
    )


_LABELER = AaLabeler(aa_domains=frozenset({"intercom.io", "doubleclick.net"}))
_RESOLVER = DomainResolver(
    cloudfront_mapping={"d10lpsik1i8c69.cloudfront.net": "luckyorange.com"}
)


def test_both_sides_aa():
    view = classify_one(_record(), _LABELER, _RESOLVER)
    assert view.aa_initiated and view.aa_received and view.is_aa_socket
    assert view.is_self_pair


def test_publisher_initiated_aa_received():
    view = classify_one(
        _record(initiator="www.pub.com",
                chain=("www.pub.com", "nexus.intercom.io")),
        _LABELER, _RESOLVER,
    )
    assert not view.aa_initiated
    assert view.aa_received
    assert not view.is_self_pair


def test_chain_ancestor_makes_aa_socket():
    # googleapis → sportingindex with a doubleclick ancestor (§4.2).
    view = classify_one(
        _record(
            initiator="ajax.googleapis.com",
            receiver="push.sportingindex.com",
            chain=("www.sportingindex.com", "securepubads.doubleclick.net",
                   "ajax.googleapis.com", "push.sportingindex.com"),
        ),
        _LABELER, _RESOLVER,
    )
    assert not view.aa_initiated
    assert not view.aa_received
    assert view.aa_chain
    assert view.is_aa_socket


def test_receiver_itself_does_not_count_as_chain_ancestor():
    view = classify_one(
        _record(
            initiator="www.pub.com",
            receiver="nexus.intercom.io",
            chain=("www.pub.com", "nexus.intercom.io"),
        ),
        _LABELER, _RESOLVER,
    )
    assert not view.aa_chain  # ancestors exclude the socket itself
    assert view.is_aa_socket  # …but the receiver is A&A


def test_cloudfront_initiator_resolves_to_tenant():
    view = classify_one(
        _record(
            initiator="d10lpsik1i8c69.cloudfront.net",
            receiver="visitors.luckyorange.com",
            chain=("www.pub.com", "d10lpsik1i8c69.cloudfront.net",
                   "visitors.luckyorange.com"),
        ),
        AaLabeler(aa_domains=frozenset({"luckyorange.com"})),
        _RESOLVER,
    )
    assert view.initiator_domain == "luckyorange.com"
    assert view.aa_initiated


def test_benign_socket():
    view = classify_one(
        _record(
            initiator="www.pub.com", receiver="ws.streamly.io",
            chain=("www.pub.com", "ws.streamly.io"),
        ),
        _LABELER, _RESOLVER,
    )
    assert not view.is_aa_socket
