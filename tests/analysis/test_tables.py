"""Tests for the table computations over the tiny study."""

from repro.analysis.table3 import aa_initiator_share
from repro.net.domains import registrable_domain


class TestTable1:
    def test_four_rows_in_order(self, tiny_study):
        rows = tiny_study.table1
        assert [r.crawl for r in rows] == [0, 1, 2, 3]
        assert rows[0].label == "Apr 02-05, 2017"

    def test_percentages_in_range(self, tiny_study):
        for row in tiny_study.table1:
            assert 0 < row.pct_sites_with_sockets < 100
            assert 0 < row.pct_sockets_aa_initiators < 100
            assert 0 < row.pct_sockets_aa_receivers < 100

    def test_initiator_drop_after_patch(self, tiny_study):
        rows = {r.crawl: r for r in tiny_study.table1}
        # The paper's headline: initiators collapse after Chrome 58.
        assert rows[2].unique_aa_initiators < rows[0].unique_aa_initiators / 2
        assert rows[3].unique_aa_initiators < rows[0].unique_aa_initiators / 2

    def test_receiver_counts_stable(self, tiny_study):
        counts = [r.unique_aa_receivers for r in tiny_study.table1]
        assert max(counts) - min(counts) <= 4

    def test_share_of_aa_sockets_stable(self, tiny_study):
        shares = [r.pct_sockets_aa_initiators for r in tiny_study.table1]
        assert max(shares) - min(shares) < 20


class TestTable2:
    def test_sorted_by_receiver_count(self, tiny_study):
        totals = [r.receivers_total for r in tiny_study.table2]
        assert totals == sorted(totals, reverse=True)

    def test_aa_receivers_bounded_by_total(self, tiny_study):
        for row in tiny_study.table2:
            assert 0 <= row.receivers_aa <= row.receivers_total

    def test_major_platforms_present(self, tiny_study):
        names = {r.initiator for r in tiny_study.table2}
        assert "facebook" in names
        assert "doubleclick" in names

    def test_aa_flag_matches_labeler(self, tiny_study):
        for row in tiny_study.table2:
            assert row.is_aa == tiny_study.labeler.is_aa(row.initiator_domain)


class TestTable3:
    def test_all_rows_are_aa_receivers(self, tiny_study):
        for row in tiny_study.table3:
            assert tiny_study.labeler.is_aa(row.receiver_domain)

    def test_sorted_by_initiator_count(self, tiny_study):
        totals = [r.initiators_total for r in tiny_study.table3]
        assert totals == sorted(totals, reverse=True)

    def test_intercom_has_most_initiators(self, tiny_study):
        assert tiny_study.table3[0].receiver == "intercom"

    def test_aa_initiator_share_bounded(self, tiny_study):
        # The paper reports ~2.5% at full scale; at tiny scale the
        # pinned A&A entities dominate the scaled-down publisher pool,
        # so we only assert the share is a proper minority-to-majority
        # bound, not the full-scale value.
        share = aa_initiator_share(tiny_study.views)
        assert 0 < share < 80


class TestTable4:
    def test_self_pairs_aggregated(self, tiny_study):
        table = tiny_study.table4
        assert table.self_pair_sockets > 0
        for row in table.rows:
            assert row.initiator != row.receiver

    def test_sorted_by_socket_count(self, tiny_study):
        counts = [r.socket_count for r in tiny_study.table4.rows]
        assert counts == sorted(counts, reverse=True)

    def test_self_row_dominates(self, tiny_study):
        # "A&A domain to itself" dwarfs every cross pair (36,056 row).
        table = tiny_study.table4
        assert table.self_pair_sockets > table.rows[0].socket_count

    def test_at_least_one_party_aa_or_chain(self, tiny_study):
        # Every listed pair came from an A&A socket.
        views_by_pair = {}
        for view in tiny_study.views:
            if view.is_aa_socket and not view.is_self_pair:
                key = (registrable_domain(view.initiator_domain),
                       registrable_domain(view.receiver_domain))
                views_by_pair.setdefault(key, view)
        assert views_by_pair


class TestTable5:
    def test_user_agent_is_100_percent(self, tiny_study):
        from repro.content.items import SentItem

        cell = tiny_study.table5.sent_ws[SentItem.USER_AGENT]
        assert cell.percent == 100.0

    def test_cookie_majority_but_not_all(self, tiny_study):
        from repro.content.items import SentItem

        cell = tiny_study.table5.sent_ws[SentItem.COOKIE]
        assert 40.0 < cell.percent < 95.0

    def test_ws_exfiltrates_more_than_http(self, tiny_study):
        """The paper's key Table 5 claim: a greater share of private
        information flows over WebSockets than over HTTP/S."""
        from repro.content.items import SentItem

        table = tiny_study.table5
        for item in (SentItem.COOKIE, SentItem.SCREEN, SentItem.VIEWPORT,
                     SentItem.ORIENTATION, SentItem.DOM):
            assert table.sent_ws[item].percent > table.sent_http[item].percent, item

    def test_http_receives_more_js_and_images(self, tiny_study):
        from repro.content.items import ReceivedClass

        table = tiny_study.table5
        assert (table.received_http[ReceivedClass.JAVASCRIPT].percent
                > table.received_ws[ReceivedClass.JAVASCRIPT].percent)
        assert (table.received_http[ReceivedClass.IMAGE].percent
                > table.received_ws[ReceivedClass.IMAGE].percent)
        assert (table.received_ws[ReceivedClass.HTML].percent
                > table.received_http[ReceivedClass.HTML].percent)

    def test_fingerprinting_goes_to_33across(self, tiny_study):
        table = tiny_study.table5
        assert table.fingerprinting_sockets > 0
        assert table.fingerprinting_top_receiver == "33across.com"
        assert table.fingerprinting_top_receiver_share > 80.0

    def test_dom_receivers_are_the_three_replay_services(self, tiny_study):
        assert set(tiny_study.table5.dom_receivers) <= {
            "hotjar.com", "luckyorange.com", "truconversion.com"
        }
        assert "hotjar.com" in tiny_study.table5.dom_receivers
