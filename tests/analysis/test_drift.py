"""Tests for initiator drift analysis."""

from repro.analysis.drift import compute_initiator_drift, render_drift


def test_drift_on_tiny_study(tiny_study):
    drift = compute_initiator_drift(tiny_study.views)
    # The registry's activity windows: 75/63/19/23 unique initiators.
    assert {c: len(d) for c, d in drift.per_crawl.items()} == {
        0: 75, 1: 63, 2: 19, 3: 23
    }
    # The paper's "56 disappeared" compares crawl 0 to crawl 3; the
    # pre∖post union set is larger (it also counts crawl-1-only tails).
    gone_0_to_3 = drift.per_crawl[0] - drift.per_crawl[3]
    assert len(gone_0_to_3) == 56
    assert len(drift.disappeared_after_patch) >= 56
    majors = {"doubleclick.net", "facebook.net", "google.com",
              "addthis.com"}
    assert majors <= drift.disappeared_after_patch


def test_persistent_core(tiny_study):
    drift = compute_initiator_drift(tiny_study.views)
    # The WebSocket-dependent services never leave.
    for domain in ("zopim.com", "intercom.io", "hotjar.com", "disqus.com"):
        assert domain in drift.persistent, domain
    assert len(drift.persistent) >= 15


def test_survival_rate_low(tiny_study):
    drift = compute_initiator_drift(tiny_study.views)
    assert 0.1 < drift.survival_rate < 0.5  # most of the tail vanished


def test_churn_keys(tiny_study):
    drift = compute_initiator_drift(tiny_study.views)
    assert set(drift.churn) == {(0, 1), (1, 2), (2, 3)}
    gained, lost = drift.churn[(1, 2)]  # the patch boundary
    assert lost > 40


def test_render(tiny_study):
    text = render_drift(compute_initiator_drift(tiny_study.views))
    assert "disappeared after the patch" in text
    assert "survival rate" in text


def test_empty_views():
    drift = compute_initiator_drift([])
    assert drift.per_crawl == {}
    assert drift.survival_rate == 0.0
