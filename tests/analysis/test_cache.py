"""Unit tests for stage keys and the content-addressed artifact cache."""

from __future__ import annotations

import json

from repro.analysis.cache import CACHE_FORMAT_VERSION, StageCache, stage_key
from repro.analysis.stage import register_stage
from repro.analysis.table2 import Table2Stage
from repro.analysis.table5 import Table5Stage

FP = "a" * 64
OTHER_FP = "b" * 64


class TestStageKey:
    def test_dataset_edit_mints_a_new_key(self):
        stage = Table5Stage()
        assert stage_key(FP, stage) != stage_key(OTHER_FP, stage)

    def test_version_bump_mints_a_new_key(self):
        class Bumped(Table5Stage):
            version = "2"

        assert stage_key(FP, Table5Stage()) != stage_key(FP, Bumped())

    def test_config_change_mints_a_new_key(self):
        assert (stage_key(FP, Table2Stage(top=15))
                != stage_key(FP, Table2Stage(top=5)))

    def test_key_is_stable(self):
        assert stage_key(FP, Table5Stage()) == stage_key(FP, Table5Stage())

    def test_distinct_stages_get_distinct_keys(self):
        assert stage_key(FP, Table5Stage()) != stage_key(FP, Table2Stage())


class TestStageCache:
    def test_miss_on_empty_cache(self, tmp_path):
        cache = StageCache(tmp_path)
        key = stage_key(FP, Table5Stage())
        assert cache.load("table5", key) is None
        assert (cache.hits, cache.misses) == (0, 1)

    def test_store_then_load_round_trips(self, tmp_path):
        cache = StageCache(tmp_path)
        stage = Table2Stage()
        key = stage_key(FP, stage)
        artifact = [{"initiator": "x", "socket_count": 3}]
        path = cache.store(stage, key, artifact)
        assert path.exists()
        assert cache.load("table2", key) == artifact
        assert cache.hits == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = StageCache(tmp_path)
        stage = Table2Stage()
        key = stage_key(FP, stage)
        path = cache.store(stage, key, {"rows": []})
        path.write_text("{truncated", encoding="utf-8")
        assert cache.load("table2", key) is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        """A 16-hex-prefix collision must never serve a wrong artifact."""
        cache = StageCache(tmp_path)
        stage = Table2Stage()
        key = stage_key(FP, stage)
        path = cache.store(stage, key, {"rows": []})
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["key"] = stage_key(OTHER_FP, stage)
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.load("table2", key) is None

    def test_format_bump_is_a_miss(self, tmp_path):
        cache = StageCache(tmp_path)
        stage = Table2Stage()
        key = stage_key(FP, stage)
        path = cache.store(stage, key, {"rows": []})
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["cache_format"] = CACHE_FORMAT_VERSION + 1
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.load("table2", key) is None

    def test_entry_names_are_human_scannable(self, tmp_path):
        cache = StageCache(tmp_path)
        stage = Table5Stage()
        key = stage_key(FP, stage)
        path = cache.store(stage, key, {})
        assert path.name == f"table5-{key[:16]}.json"


class TestRegistry:
    def test_duplicate_name_with_other_class_rejected(self):
        try:
            @register_stage
            class Impostor(Table5Stage):
                name = "table2"
        except ValueError as error:
            assert "table2" in str(error)
        else:
            raise AssertionError("duplicate stage name was accepted")

    def test_reregistering_same_class_is_idempotent(self):
        assert register_stage(Table2Stage) is Table2Stage
