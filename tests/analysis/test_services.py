"""Tests: behavioral classification rediscovers the registry roles."""

from repro.analysis.services import profile_receivers, render_service_taxonomy


def test_roles_rediscovered_from_behaviour(tiny_study):
    profiles = profile_receivers(tiny_study.views)
    roles = {domain: p.inferred_role for domain, p in profiles.items()}

    # Ground truth from the registry — which the classifier never sees.
    assert roles.get("lockerdome.com") == "ad_server"
    assert roles.get("hotjar.com") == "session_replay"
    assert roles.get("33across.com") == "fingerprinting"
    for chat in ("zopim.com", "intercom.io", "smartsupp.com"):
        if chat in roles:
            assert roles[chat] == "chat_or_comments", chat
    assert roles.get("disqus.com") == "chat_or_comments"


def test_profiles_have_consistent_shares(tiny_study):
    for profile in profile_receivers(tiny_study.views).values():
        for share in (profile.html_share, profile.json_share,
                      profile.dom_share, profile.fingerprint_share,
                      profile.ad_unit_share, profile.cookie_share):
            assert 0.0 <= share <= 1.0
        assert profile.sockets >= 3


def test_min_sockets_threshold(tiny_study):
    few = profile_receivers(tiny_study.views, min_sockets=10_000)
    assert few == {}


def test_render(tiny_study):
    text = render_service_taxonomy(profile_receivers(tiny_study.views))
    assert "session_replay" in text
    assert "chat_or_comments" in text
