"""Unit tests for Table 5 computation over a hand-built dataset."""

from collections import Counter

from repro.analysis.classify import SocketView
from repro.analysis.table5 import compute_table5
from repro.content.items import ReceivedClass, SentItem
from repro.crawler.dataset import SocketRecord, StudyDataset
from repro.filters import FilterEngine, parse_filter_list
from repro.labeling.aa_labeler import AaLabeler
from repro.labeling.resolver import DomainResolver

CF = "d10lpsik1i8c69.cloudfront.net"


def _dataset():
    engine = FilterEngine([parse_filter_list("t", "||tracker.example^")])
    dataset = StudyDataset(engine=engine)
    dataset.http_requests_by_host.update({
        "px.tracker.example": 10,       # A&A
        CF: 5,                          # A&A via cloudfront mapping
        "cdn.benign.example": 100,      # not A&A
    })
    dataset.http_items_by_host["px.tracker.example"] = Counter({
        SentItem.USER_AGENT: 10, SentItem.COOKIE: 4,
    })
    dataset.http_received_by_host["px.tracker.example"] = Counter({
        ReceivedClass.IMAGE: 8,
    })
    dataset.http_received_by_host[CF] = Counter({
        ReceivedClass.JAVASCRIPT: 5,
    })
    return dataset


def _view(sent_items=frozenset(), received=frozenset(), receiver="tracker.example",
          sent_nothing=False):
    record = SocketRecord(
        crawl=0, site_domain="pub.example", rank=1,
        page_url="https://pub.example/",
        socket_host=f"ws.{receiver}", initiator_host=f"cdn.{receiver}",
        initiator_url=f"https://cdn.{receiver}/x.js",
        chain_hosts=("pub.example", f"cdn.{receiver}", f"ws.{receiver}"),
        chain_script_urls=(), first_party_host="pub.example",
        cross_origin=True, handshake_cookie=False,
        sent_items=frozenset(sent_items),
        received_classes=frozenset(received),
        sent_nothing=sent_nothing, received_nothing=not received,
    )
    labeled = receiver == "tracker.example"
    return SocketView(record=record, initiator_domain=f"{receiver}",
                      receiver_domain=receiver, aa_initiated=labeled,
                      aa_received=labeled, aa_chain=False)


def test_http_counts_respect_labels_and_cloudfront():
    labeler = AaLabeler(aa_domains=frozenset({"tracker.example",
                                              "tenant.example"}))
    resolver = DomainResolver(cloudfront_mapping={CF: "tenant.example"})
    views = [_view({SentItem.USER_AGENT})]
    table = compute_table5(_dataset(), views, labeler, resolver)
    # 10 tracker requests + 5 cloudfront-tenant requests; benign excluded.
    assert table.http_total == 15
    assert table.sent_http[SentItem.COOKIE].count == 4
    assert table.received_http[ReceivedClass.JAVASCRIPT].count == 5
    assert table.received_http[ReceivedClass.IMAGE].count == 8


def test_ws_denominator_is_aa_sockets_only():
    labeler = AaLabeler(aa_domains=frozenset({"tracker.example"}))
    resolver = DomainResolver()
    views = [
        _view({SentItem.USER_AGENT, SentItem.COOKIE}),
        _view({SentItem.USER_AGENT}, receiver="benign.example"),
    ]
    table = compute_table5(_dataset(), views, labeler, resolver)
    assert table.ws_total == 1  # the benign socket is excluded
    assert table.sent_ws[SentItem.COOKIE].percent == 100.0


def test_no_data_rows():
    labeler = AaLabeler(aa_domains=frozenset({"tracker.example"}))
    views = [
        _view(sent_nothing=True),
        _view({SentItem.USER_AGENT}, received={ReceivedClass.HTML}),
    ]
    table = compute_table5(_dataset(), views, labeler, DomainResolver())
    assert table.ws_sent_nothing.count == 1
    assert table.ws_received_nothing.count == 1
    assert table.received_ws[ReceivedClass.HTML].percent == 50.0


def test_fingerprinting_pair_accounting():
    labeler = AaLabeler(aa_domains=frozenset({"tracker.example"}))
    fp_items = {SentItem.SCREEN, SentItem.VIEWPORT, SentItem.ORIENTATION,
                SentItem.USER_AGENT}
    views = [_view(fp_items), _view(fp_items), _view({SentItem.USER_AGENT})]
    table = compute_table5(_dataset(), views, labeler, DomainResolver())
    assert table.fingerprinting_sockets == 2
    assert table.fingerprinting_pairs == 1
    assert table.fingerprinting_top_receiver == "tracker.example"
