"""Property tests: every registered stage's fold is a commutative
monoid up to ``finalize``.

For any multiset of real classified views, any partition of it into
shards, and any merge order of those shards, the merged accumulator
must finalize to the same encoded artifact as one sequential fold —
this is what makes the engine's shard-parallel path byte-identical to
the sequential one.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stage import StageContext, registered_stages
from repro.util.serialization import dumps

MAX_VIEWS = 48
MAX_SHARDS = 4


@pytest.fixture(scope="module")
def view_pool(tiny_study):
    """Real views (domain-consistent A&A flags) to draw from."""
    views = tiny_study.views
    # A stratified slice: keep the pool small but cover all crawls.
    pool = [view for index, view in enumerate(views) if index % 7 == 0]
    assert len(pool) >= MAX_VIEWS
    return pool


@pytest.fixture(scope="module")
def ctx(tiny_study):
    return StageContext(
        meta=tiny_study.dataset.meta,
        labeler=tiny_study.labeler,
        resolver=tiny_study.resolver,
        engine=tiny_study.dataset.engine,
        dataset=tiny_study.dataset,
    )


@st.composite
def sharded_folds(draw):
    """(view indices, shard assignment, shard merge order)."""
    indices = draw(st.lists(
        st.integers(min_value=0, max_value=MAX_VIEWS - 1),
        min_size=0, max_size=MAX_VIEWS,
    ))
    assignment = draw(st.lists(
        st.integers(min_value=0, max_value=MAX_SHARDS - 1),
        min_size=len(indices), max_size=len(indices),
    ))
    order = draw(st.permutations(range(MAX_SHARDS)))
    return indices, assignment, order


@pytest.mark.parametrize(
    "stage_name", sorted(registered_stages())
)
@given(plan=sharded_folds())
@settings(max_examples=20, deadline=None)
def test_merge_is_associative_and_order_insensitive(
    stage_name, plan, view_pool, ctx
):
    stage_cls = registered_stages()[stage_name]
    indices, assignment, order = plan

    sequential = stage_cls()
    for index in indices:
        sequential.fold(view_pool[index])

    shards = [stage_cls() for _ in range(MAX_SHARDS)]
    for index, shard in zip(indices, assignment):
        shards[shard].fold(view_pool[index])
    merged = stage_cls()
    for shard_index in order:
        merged.merge(shards[shard_index])

    assert dumps(merged.encode_artifact(merged.finalize(ctx))) == \
        dumps(sequential.encode_artifact(sequential.finalize(ctx)))
