"""Importer contract: byte-identity, idempotence, crash healing."""

from __future__ import annotations

import pytest

from repro.crawler.persistence import (
    dataset_fingerprint,
    file_fingerprint,
    open_dataset,
)
from repro.spool.importer import ImportState, import_spool


@pytest.fixture()
def imported(spool_copy, tmp_path):
    dataset = tmp_path / "dataset.jsonl"
    result = import_spool(spool_copy, dataset)
    return spool_copy, dataset, result


class TestImport:
    def test_import_reproduces_the_in_memory_dataset(
        self, spooled, imported
    ):
        _root, result = spooled
        _spool, dataset, import_result = imported
        # The keystone byte-identity: replaying the spool produces
        # exactly the dataset the uninterrupted study held in memory.
        assert file_fingerprint(dataset) == dataset_fingerprint(
            result.dataset
        )
        assert import_result.fingerprint == file_fingerprint(dataset)
        assert import_result.new_records == len(
            result.dataset.socket_records
        )

    def test_reimport_is_a_no_op(self, imported):
        spool, dataset, first = imported
        second = import_spool(spool, dataset)
        assert second.no_op
        assert second.imported_segments == []
        assert file_fingerprint(dataset) == first.fingerprint

    def test_one_dataset_per_spool(self, imported, tmp_path):
        spool, _dataset, _result = imported
        with pytest.raises(ValueError, match="one dataset per spool"):
            import_spool(spool, tmp_path / "other.jsonl")

    def test_slices_are_contiguous_and_content_addressed(self, imported):
        spool, dataset, result = imported
        state = ImportState.load(spool, dataset)
        reader = open_dataset(dataset)
        cursor = 0
        for entry in state.slices:
            assert entry.start == cursor
            count, sha = reader.record_range_sha(entry.start, entry.stop)
            assert count == entry.stop - entry.start
            # The journal's content address matches what the reader
            # recomputes from the file — the invariant incremental
            # analysis keys its state cache on.
            assert sha == entry.lines_sha
            cursor = entry.stop
        assert cursor == result.new_records

    def test_journal_crash_heals_by_deduped_replay(self, imported):
        # Simulate a crash between the dataset rename and the journal
        # write: the dataset has the records, the journal does not.
        spool, dataset, first = imported
        state = ImportState.load(spool, dataset)
        state.entries.pop()
        state.save()
        healed = import_spool(spool, dataset)
        assert not healed.no_op
        assert healed.imported_segments  # re-replayed, not skipped
        assert healed.new_records == 0  # every site deduped
        assert healed.deduped_sites > 0
        assert file_fingerprint(dataset) == first.fingerprint

    def test_stale_journal_entry_is_dropped_on_load(self, imported):
        # A dataset regenerated outside the importer invalidates the
        # trailing journal entries rather than poisoning eviction.
        spool, dataset, _first = imported
        dataset.write_text(dataset.read_text() + "\n")
        state = ImportState.load(spool, dataset)
        assert state.dropped > 0
        assert state.entries == []
