"""Spool test fixtures.

One small spooled study runs per session and feeds the importer,
incremental-analysis, and crash-resume tests; everything that mutates
spool state works on a copy, never the session spool itself.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.experiments import StudyConfig
from repro.experiments.runner import run_study
from repro.spool import SpoolStore
from repro.spool.segment import list_segments, read_segment

SPOOL_STUDY_CONFIG = StudyConfig(
    scale=0.004, sample_scale=0.002, pages_per_site=2, name="spool-test"
)


@pytest.fixture(scope="session")
def spooled(tmp_path_factory):
    """(spool root, StudyResult) of one spooled smoke-scale study."""
    root = tmp_path_factory.mktemp("spooled-study") / "spool"
    result = run_study(SPOOL_STUDY_CONFIG, spool_dir=root)
    return root, result


@pytest.fixture()
def spool_copy(spooled, tmp_path):
    """A private, mutable copy of the session spool."""
    src, _result = spooled
    dst = tmp_path / "spool"
    shutil.copytree(src, dst)
    return dst


def respool(src: Path, dst: Path, segment_bytes: int) -> SpoolStore:
    """Re-append every payload of ``src`` into ``dst`` with smaller
    segments — the pattern tests use to get many segments per shard
    out of one small study."""
    store = SpoolStore.open(dst, segment_bytes=segment_bytes)
    for info in list_segments(src):
        for payload in read_segment(info.path):
            store.append(info.shard, payload)
    store.seal_active()
    return store
