"""Incremental analysis over spool slices.

The growth shape here matters: the tail of crawl 2 (the blocking
crawl) is hidden and then imported, because that growth leaves the
derived A&A label set unchanged — the precondition for per-slice
state reuse. Growth that shifts the labeler must (and does) refold
everything; that safety path is asserted too, indirectly, by keying
on the labeler fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.analysis.cache import StageCache, StateCache, labeler_fingerprint
from repro.analysis.engine import AnalysisEngine, DatasetSource
from repro.analysis.stage import study_stages
from repro.cli import _spool_slices
from repro.spool.importer import import_spool
from repro.spool.segment import list_segments
from repro.util.serialization import dumps

from tests.spool.conftest import respool

SEGMENT_BYTES = 192 * 1024

ARTIFACTS = (
    "table1", "table2", "table3", "table4", "table5",
    "figure3", "blocking", "overall",
)


@dataclass
class Scenario:
    late_ids: list[str]
    slices_phase1: int
    cold: object
    warm: object
    third: object
    full: object
    study: object


@pytest.fixture(scope="module")
def scenario(spooled, tmp_path_factory) -> Scenario:
    src, study = spooled
    base = tmp_path_factory.mktemp("incremental")
    spool = base / "spool"
    respool(src, spool, SEGMENT_BYTES)
    dataset = base / "dataset.jsonl"

    crawl02 = [
        info for info in list_segments(spool) if info.shard == "crawl02"
    ]
    assert len(crawl02) >= 2, "need a crawl02 tail to hide"
    late = crawl02[-max(1, len(crawl02) // 2):]
    stash = base / "stash"
    stash.mkdir()
    for info in late:
        info.path.rename(stash / info.path.name)

    import_spool(spool, dataset)
    state_cache = StateCache(base / "state-cache")
    engine = AnalysisEngine(stages=study_stages())
    cold = engine.run_incremental(
        DatasetSource.from_file(dataset),
        _spool_slices(spool, dataset),
        state_cache,
    )
    slices_phase1 = cold.segments_folded + cold.segments_cached

    for info in late:
        (stash / info.path.name).rename(info.path)
    import_spool(spool, dataset)
    warm = engine.run_incremental(
        DatasetSource.from_file(dataset),
        _spool_slices(spool, dataset),
        state_cache,
    )
    third = engine.run_incremental(
        DatasetSource.from_file(dataset),
        _spool_slices(spool, dataset),
        state_cache,
    )
    full = AnalysisEngine(stages=study_stages()).run(
        DatasetSource.from_file(dataset)
    )
    return Scenario(
        late_ids=[info.segment_id for info in late],
        slices_phase1=slices_phase1,
        cold=cold,
        warm=warm,
        third=third,
        full=full,
        study=study,
    )


class TestIncrementalGrowth:
    def test_labeler_is_stable_across_the_growth(self, scenario):
        # The precondition the growth shape was chosen for: adding
        # crawl02's tail must not move any domain over the A&A
        # threshold, or every state key below would miss.
        cold_fp = labeler_fingerprint(
            scenario.cold.labeler, scenario.cold.resolver
        )
        warm_fp = labeler_fingerprint(
            scenario.warm.labeler, scenario.warm.resolver
        )
        assert cold_fp == warm_fp

    def test_cold_run_folds_every_slice(self, scenario):
        assert scenario.cold.segments_cached == 0
        assert scenario.cold.segments_folded == scenario.slices_phase1

    def test_warm_run_folds_only_the_new_segments(self, scenario):
        assert scenario.warm.segments_folded == len(scenario.late_ids)
        assert scenario.warm.segments_cached == scenario.slices_phase1

    def test_warm_run_decodes_only_the_new_records(self, scenario):
        assert 0 < scenario.warm.views_folded < scenario.full.views_folded

    def test_third_run_is_fully_cached(self, scenario):
        assert scenario.third.segments_folded == 0
        assert scenario.third.views_folded == 0

    def test_incremental_artifacts_match_full_refold(self, scenario):
        for name in ARTIFACTS:
            assert dumps(scenario.warm[name]) == dumps(
                scenario.full[name]
            ), name

    def test_incremental_artifacts_match_the_live_study(self, scenario):
        # The grown spool is the whole study again, so the incremental
        # artifacts must equal the uninterrupted study's, byte for byte.
        for name in ARTIFACTS:
            assert dumps(scenario.warm[name]) == dumps(
                getattr(scenario.study, name)
            ), name


class TestArtifactCacheShortCircuit:
    def test_artifact_cache_skips_slices_entirely(
        self, spooled, tmp_path_factory
    ):
        src, _study = spooled
        base = tmp_path_factory.mktemp("short-circuit")
        spool = base / "spool"
        respool(src, spool, SEGMENT_BYTES)
        dataset = base / "dataset.jsonl"
        import_spool(spool, dataset)
        engine = AnalysisEngine(
            stages=study_stages(), cache=StageCache(base / "artifacts")
        )
        state_cache = StateCache(base / "state")
        slices = _spool_slices(spool, dataset)
        first = engine.run_incremental(
            DatasetSource.from_file(dataset), slices, state_cache
        )
        second = engine.run_incremental(
            DatasetSource.from_file(dataset), slices, state_cache
        )
        assert first.computed and not first.cached
        assert second.cached == tuple(
            stage.name for stage in engine.stages
        )
        assert second.segments_folded == 0
        assert second.segments_cached == 0
        for name in ARTIFACTS:
            assert dumps(first[name]) == dumps(second[name]), name
