"""Segment writer, rotation, and naming unit tests."""

from __future__ import annotations

import pytest

from repro.spool.format import encode_frame, header_payload
from repro.spool.segment import (
    OPEN_SUFFIX,
    SEALED_SUFFIX,
    SegmentWriter,
    list_segments,
    parse_segment_id,
    read_segment,
    seal_segment,
    segment_name,
    truncate_segment,
)


class TestNaming:
    def test_segment_name_round_trips(self):
        name = segment_name("crawl02", 7)
        assert name == "crawl02-000007"
        assert parse_segment_id(name) == ("crawl02", 7)

    def test_parse_rejects_foreign_names(self):
        with pytest.raises(ValueError):
            parse_segment_id("not-a-segment-name-xx")


class TestWriter:
    def test_append_then_read_round_trips(self, tmp_path):
        writer = SegmentWriter(tmp_path, "crawl00", 1)
        items = [{"t": "site", "n": index} for index in range(5)]
        for payload in items:
            writer.append(payload)
        sealed = writer.seal()
        assert sealed is not None
        assert sealed.suffix == SEALED_SUFFIX
        assert read_segment(sealed) == items

    def test_rotation_seals_and_advances_seq(self, tmp_path):
        frame = encode_frame({"t": "site", "n": 0})
        writer = SegmentWriter(
            tmp_path, "crawl00", 1, segment_bytes=3 * len(frame)
        )
        for index in range(10):
            writer.append({"t": "site", "n": index})
        writer.seal()
        infos = list_segments(tmp_path)
        assert len(infos) > 1
        assert [info.seq for info in infos] == list(
            range(1, len(infos) + 1)
        )
        assert all(info.sealed for info in infos)
        replayed = [
            payload
            for info in infos
            for payload in read_segment(info.path)
        ]
        assert replayed == [{"t": "site", "n": i} for i in range(10)]

    def test_empty_segment_is_discarded_not_sealed(self, tmp_path):
        writer = SegmentWriter(tmp_path, "crawl00", 1)
        writer.append({"t": "site", "n": 0})
        writer.seal()
        # Sealing again with nothing appended must not leave a
        # header-only segment behind.
        assert writer.seal() is None
        assert len(list_segments(tmp_path)) == 1

    def test_read_segment_validates_header(self, tmp_path):
        path = tmp_path / ("crawl00-000001" + OPEN_SUFFIX)
        path.write_bytes(encode_frame({"format": "other"}))
        with pytest.raises(ValueError, match="not a repro.spool"):
            read_segment(path)


class TestFileOps:
    def test_truncate_segment_cuts_exactly(self, tmp_path):
        path = tmp_path / ("crawl00-000001" + OPEN_SUFFIX)
        header = encode_frame(header_payload("crawl00", 1))
        path.write_bytes(header + b"junk-tail")
        truncate_segment(path, len(header))
        assert path.read_bytes() == header

    def test_seal_renames_open_to_seg(self, tmp_path):
        path = tmp_path / ("crawl01-000003" + OPEN_SUFFIX)
        path.write_bytes(encode_frame(header_payload("crawl01", 3)))
        sealed = seal_segment(path)
        assert sealed.name == "crawl01-000003" + SEALED_SUFFIX
        assert not path.exists()

    def test_list_segments_orders_by_shard_then_seq(self, tmp_path):
        for shard, seq in [("crawl01", 2), ("crawl00", 1), ("crawl01", 1)]:
            path = tmp_path / (segment_name(shard, seq) + SEALED_SUFFIX)
            path.write_bytes(encode_frame(header_payload(shard, seq)))
        ids = [info.segment_id for info in list_segments(tmp_path)]
        assert ids == ["crawl00-000001", "crawl01-000001", "crawl01-000002"]
