"""Injected spool faults: torn writes, crashes, and full disks.

These drive the same append path the study uses, with probabilities
pinned to 1 so each fault kind fires deterministically; recovery must
restore the invariant every time.
"""

from __future__ import annotations

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import NONE_PROFILE, FaultProfile
from repro.spool.segment import (
    SegmentWriter,
    SpoolCrash,
    SpoolDiskFull,
    SpoolTornWrite,
    read_segment,
)
from repro.spool.store import SpoolStore


def injector(**probabilities) -> FaultInjector:
    profile = FaultProfile(name="spool-test", **probabilities)
    return FaultInjector(profile, 2017, "spool")


class TestInjectedFaults:
    def test_torn_write_leaves_a_recoverable_prefix(self, tmp_path):
        writer = SegmentWriter(
            tmp_path, "crawl00", 1, injector=injector(spool_torn_write=1.0)
        )
        with pytest.raises(SpoolTornWrite):
            writer.append({"t": "site", "n": 0})
        writer.close()
        # A partial frame is on disk; recovery truncates it and the
        # header-only remnant is discarded on open.
        store = SpoolStore.open(tmp_path)
        assert store.recovery.torn_records == 1
        assert store.segments() == []

    def test_crash_after_append_keeps_the_record(self, tmp_path):
        writer = SegmentWriter(
            tmp_path, "crawl00", 1, injector=injector(spool_crash=1.0)
        )
        with pytest.raises(SpoolCrash):
            writer.append({"t": "site", "n": 7})
        writer.close()
        store = SpoolStore.open(tmp_path)
        assert store.recovery.torn_records == 0
        [info] = store.segments()
        assert read_segment(info.path) == [{"t": "site", "n": 7}]

    def test_disk_full_raises_before_writing(self, tmp_path):
        writer = SegmentWriter(
            tmp_path, "crawl00", 1, injector=injector(spool_disk_full=1.0)
        )
        with pytest.raises(SpoolDiskFull):
            writer.append({"t": "site", "n": 0})
        writer.close()
        store = SpoolStore.open(tmp_path)
        # Nothing but the header ever hit the disk.
        assert store.recovery.torn_records == 0
        assert store.segments() == []

    def test_none_profile_is_byte_identical_to_no_injector(self, tmp_path):
        items = [{"t": "site", "n": index} for index in range(6)]
        plain_root = tmp_path / "plain"
        none_root = tmp_path / "none"
        for root, inj in (
            (plain_root, None),
            (none_root, FaultInjector(NONE_PROFILE, 2017, "spool")),
        ):
            writer = SegmentWriter(root, "crawl00", 1, injector=inj)
            for payload in items:
                writer.append(payload)
            writer.seal()
        plain = (plain_root / "crawl00-000001.seg").read_bytes()
        none = (none_root / "crawl00-000001.seg").read_bytes()
        assert plain == none

    def test_torn_cut_is_a_strict_prefix(self, tmp_path):
        writer = SegmentWriter(
            tmp_path, "crawl00", 1, injector=injector(spool_torn_write=1.0)
        )
        with pytest.raises(SpoolTornWrite):
            writer.append({"t": "site", "payload": "x" * 64})
        size_with_partial = writer.active_path.stat().st_size
        writer.close()
        from repro.spool.format import encode_frame, header_payload

        header_len = len(encode_frame(header_payload("crawl00", 1)))
        frame_len = len(encode_frame({"t": "site", "payload": "x" * 64}))
        assert header_len < size_with_partial < header_len + frame_len
