"""End-to-end crash → recover → resume → import byte-identity.

The crash is simulated the way a real ``kill -9`` leaves the disk:
the spool of a finished study is rolled back to a snapshot taken
mid-crawl — earlier crawls sealed, the in-flight crawl's segment cut
at an arbitrary byte and still ``.open``, later crawls absent. A
rerun over that spool must recover, resume only the missing sites,
and import to exactly the uninterrupted dataset — under the clean
profile and under ``flaky`` faults alike.
"""

from __future__ import annotations

import shutil

import pytest

from repro.crawler.persistence import dataset_fingerprint, file_fingerprint
from repro.experiments.runner import run_study
from repro.spool.importer import import_spool
from repro.spool.segment import OPEN_SUFFIX, list_segments

from tests.spool.conftest import SPOOL_STUDY_CONFIG


def crash_snapshot(src, dst, cut_shard="crawl02", cut_fraction=0.61):
    """Roll a sealed spool back to a simulated mid-``cut_shard`` crash."""
    dst.mkdir(parents=True)
    for info in list_segments(src):
        if info.shard < cut_shard:
            shutil.copy2(info.path, dst / info.path.name)
        elif info.shard == cut_shard:
            data = info.path.read_bytes()
            cut = max(1, int(len(data) * cut_fraction))
            torn = dst / (info.path.stem + OPEN_SUFFIX)
            torn.write_bytes(data[:cut])
        # Later shards: the crash happened before they started.


@pytest.mark.parametrize("faults", ["none", "flaky"])
def test_crash_resume_import_is_byte_identical(faults, tmp_path):
    config = SPOOL_STUDY_CONFIG.with_faults(faults)

    base_spool = tmp_path / "base-spool"
    base = run_study(config, spool_dir=base_spool)
    base_dataset = tmp_path / "base-dataset.jsonl"
    import_spool(base_spool, base_dataset)
    expected = file_fingerprint(base_dataset)
    assert expected == dataset_fingerprint(base.dataset)

    crashed_spool = tmp_path / "crashed-spool"
    crash_snapshot(base_spool, crashed_spool)

    resumed = run_study(config, spool_dir=crashed_spool)
    # The resumed in-memory dataset is already identical...
    assert dataset_fingerprint(resumed.dataset) == expected
    # ...and so is the dataset imported from the resumed spool.
    resumed_dataset = tmp_path / "resumed-dataset.jsonl"
    result = import_spool(crashed_spool, resumed_dataset)
    assert file_fingerprint(resumed_dataset) == expected
    assert result.fingerprint == expected
    # A resume may re-record sites it restored from the journal; the
    # importer's first-wins replay absorbs the overlap.
    assert result.new_records == len(base.dataset.socket_records)
