"""Stage-state codec round-trip properties, over every registered stage.

``encode_state`` must survive a JSON round trip and ``restore_state``
must rebuild an accumulator that is behaviorally indistinguishable:
same re-encoded state, same artifacts after further folds and merges.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stage import StageContext, registered_stages
from repro.util.serialization import dumps

MAX_VIEWS = 40


@pytest.fixture(scope="module")
def view_pool(tiny_study):
    views = tiny_study.views
    pool = [view for index, view in enumerate(views) if index % 5 == 0]
    assert len(pool) >= MAX_VIEWS
    return pool[:MAX_VIEWS]


@pytest.fixture(scope="module")
def ctx(tiny_study):
    return StageContext(
        meta=tiny_study.dataset.meta,
        labeler=tiny_study.labeler,
        resolver=tiny_study.resolver,
        engine=tiny_study.dataset.engine,
        dataset=tiny_study.dataset,
    )


@pytest.mark.parametrize("stage_name", sorted(registered_stages()))
@given(
    indices=st.lists(
        st.integers(min_value=0, max_value=MAX_VIEWS - 1),
        max_size=MAX_VIEWS,
    ),
    extra=st.lists(
        st.integers(min_value=0, max_value=MAX_VIEWS - 1), max_size=8
    ),
)
@settings(max_examples=15, deadline=None)
def test_state_round_trips_through_json(
    stage_name, indices, extra, view_pool, ctx
):
    stage_cls = registered_stages()[stage_name]
    folded = stage_cls()
    for index in indices:
        folded.fold(view_pool[index])

    # The wire trip the state cache performs: encode → JSON → restore.
    payload = json.loads(json.dumps(folded.encode_state()))
    restored = stage_cls()
    restored.restore_state(payload)
    assert dumps(restored.encode_state()) == dumps(folded.encode_state())

    # Behavioral equivalence: further folds and the finalized artifact
    # cannot tell the restored accumulator from the original.
    for index in extra:
        folded.fold(view_pool[index])
        restored.fold(view_pool[index])
    assert dumps(restored.finalize(ctx)) == dumps(folded.finalize(ctx))


@pytest.mark.parametrize("stage_name", sorted(registered_stages()))
def test_restored_state_merges_like_the_original(
    stage_name, view_pool, ctx
):
    stage_cls = registered_stages()[stage_name]
    left, right = stage_cls(), stage_cls()
    for view in view_pool[: MAX_VIEWS // 2]:
        left.fold(view)
    for view in view_pool[MAX_VIEWS // 2:]:
        right.fold(view)

    direct = stage_cls()
    direct.merge(left)
    direct.merge(right)

    via_cache = stage_cls()
    thawed = stage_cls()
    thawed.restore_state(json.loads(json.dumps(left.encode_state())))
    via_cache.merge(thawed)
    via_cache.merge(right)

    assert dumps(via_cache.finalize(ctx)) == dumps(direct.finalize(ctx))
