"""Quota enforcement: graceful eviction, hard-breach refusal."""

from __future__ import annotations

import pytest

from repro.obs import Obs
from repro.spool.format import encode_frame
from repro.spool.quota import (
    EvictionReport,
    SpoolQuotaExceeded,
    enforce_quota,
)
from repro.spool.segment import SegmentWriter, list_segments
from repro.spool.store import SpoolStore


def build_spool(root, per_shard):
    """``per_shard`` sealed single-record segments on two shards."""
    for shard in ("crawl00", "crawl01"):
        writer = SegmentWriter(root, shard, 1, segment_bytes=1)
        for index in range(per_shard):
            writer.append({"t": "site", "shard": shard, "n": index})
        writer.close()
    return list_segments(root)


class TestEnforceQuota:
    def test_zero_budget_disables_enforcement(self, tmp_path):
        build_spool(tmp_path, per_shard=2)
        report = enforce_quota(tmp_path, 0, 10**9, set())
        assert report == EvictionReport()

    def test_under_budget_is_a_no_op(self, tmp_path):
        infos = build_spool(tmp_path, per_shard=2)
        total = sum(info.size for info in infos)
        report = enforce_quota(tmp_path, total + 100, 50, set())
        assert report.evicted_segments == []

    def test_evicts_oldest_imported_first(self, tmp_path):
        infos = build_spool(tmp_path, per_shard=3)
        imported = {info.segment_id for info in infos}
        total = sum(info.size for info in infos)
        one = infos[0].size
        report = enforce_quota(tmp_path, total, one, imported)
        # Room for one incoming frame: the lowest-seq segments go
        # first, and nothing unimported is ever touched.
        assert report.evicted_segments
        assert report.evicted_segments == sorted(
            report.evicted_segments,
            key=lambda segment_id: segment_id.split("-")[-1],
        )
        remaining = {info.segment_id for info in list_segments(tmp_path)}
        assert remaining | set(report.evicted_segments) == imported

    def test_nothing_evictable_raises_hard_breach(self, tmp_path):
        infos = build_spool(tmp_path, per_shard=2)
        total = sum(info.size for info in infos)
        with pytest.raises(SpoolQuotaExceeded) as excinfo:
            enforce_quota(tmp_path, total, 1, set())
        assert excinfo.value.max_bytes == total
        assert excinfo.value.needed == total + 1
        # Degraded, never corrupted: every segment survives intact.
        assert {i.segment_id for i in list_segments(tmp_path)} == {
            info.segment_id for info in infos
        }

    def test_unimported_segments_are_never_evicted(self, tmp_path):
        infos = build_spool(tmp_path, per_shard=2)
        imported = {infos[0].segment_id}
        total = sum(info.size for info in infos)
        with pytest.raises(SpoolQuotaExceeded):
            # Evicting the single imported segment is not enough.
            enforce_quota(tmp_path, infos[0].size, total, imported)
        remaining = {info.segment_id for info in list_segments(tmp_path)}
        assert imported - remaining == imported  # the imported one went
        assert remaining == {i.segment_id for i in infos[1:]}


class TestStoreQuota:
    def test_append_past_quota_with_nothing_imported_raises(self, tmp_path):
        payload = {"t": "site", "n": 0}
        frame = len(encode_frame(payload))
        obs = Obs()
        store = SpoolStore.open(
            tmp_path, quota_bytes=4 * frame, segment_bytes=2 * frame,
            obs=obs,
        )
        with pytest.raises(SpoolQuotaExceeded):
            for index in range(50):
                store.append("crawl00", {"t": "site", "n": index})
        # The spool survives the refusal readable and recoverable:
        # every appended record is still there, in order.
        store.close()
        reopened = SpoolStore.open(tmp_path)
        from repro.spool.segment import read_segment

        replayed = [
            payload["n"]
            for info in reopened.segments()
            for payload in read_segment(info.path)
        ]
        assert replayed == list(range(len(replayed)))
        assert frame > 0
