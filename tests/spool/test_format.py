"""Frame-format unit and property tests.

The format's load-bearing claim: cutting a valid frame stream at any
byte offset produces a decodable prefix of whole frames plus exactly
one detectable torn tail — and nothing else.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spool.format import (
    MAX_FRAME_BYTES,
    PREFIX_BYTES,
    Frame,
    FrameError,
    check_header,
    encode_frame,
    header_payload,
    scan_frames,
)

payloads = st.lists(
    st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(st.integers(), st.text(max_size=16), st.booleans()),
        max_size=4,
    ),
    min_size=1,
    max_size=8,
)


def encode_stream(items: list[dict]) -> bytes:
    return b"".join(encode_frame(payload) for payload in items)


class TestRoundTrip:
    def test_scan_inverts_encode(self):
        items = [header_payload("crawl00", 1), {"t": "site", "n": 1}]
        frames = list(scan_frames(encode_stream(items)))
        assert [frame.payload for frame in frames] == items
        assert frames[0].offset == 0
        assert frames[1].offset == frames[0].end

    def test_empty_stream_yields_nothing(self):
        assert list(scan_frames(b"")) == []

    def test_header_checks(self):
        check_header(header_payload("crawl00", 3), "seg")
        with pytest.raises(ValueError, match="not a repro.spool"):
            check_header({"format": "other"}, "seg")
        with pytest.raises(ValueError, match="version"):
            check_header({"format": "repro.spool", "version": 99}, "seg")


class TestDamageKinds:
    def test_cut_length_prefix_is_torn(self):
        data = encode_stream([{"a": 1}])
        with pytest.raises(FrameError) as excinfo:
            list(scan_frames(data + b"\x00\x00"))
        assert excinfo.value.kind == "torn"
        assert excinfo.value.offset == len(data)

    def test_cut_payload_is_torn(self):
        data = encode_stream([{"a": 1}, {"b": 2}])
        with pytest.raises(FrameError) as excinfo:
            list(scan_frames(data[:-3]))
        assert excinfo.value.kind == "torn"

    def test_checksum_mismatch_is_corrupt(self):
        data = bytearray(encode_stream([{"a": 1}]))
        data[-1] ^= 0x40  # flip a payload bit; the frame stays complete
        with pytest.raises(FrameError) as excinfo:
            list(scan_frames(bytes(data)))
        assert excinfo.value.kind == "corrupt"

    def test_absurd_length_is_corrupt_even_with_bytes_present(self):
        bogus = struct.pack(">II", MAX_FRAME_BYTES + 1, 0)
        data = bogus + b"\x00" * 64
        with pytest.raises(FrameError) as excinfo:
            list(scan_frames(data))
        assert excinfo.value.kind == "corrupt"

    def test_non_object_payload_is_corrupt(self):
        body = b"[1,2]"
        import zlib

        frame = struct.pack(">II", len(body), zlib.crc32(body)) + body
        with pytest.raises(FrameError) as excinfo:
            list(scan_frames(frame))
        assert excinfo.value.kind == "corrupt"


class TestTruncationProperty:
    @settings(max_examples=120, deadline=None)
    @given(items=payloads, data=st.data())
    def test_any_cut_leaves_whole_prefix_plus_torn_tail(self, items, data):
        stream = encode_stream(items)
        cut = data.draw(st.integers(min_value=0, max_value=len(stream)))
        frames: list[Frame] = []
        torn = False
        try:
            for frame in scan_frames(stream[:cut]):
                frames.append(frame)
        except FrameError as error:
            assert error.kind == "torn"
            torn = True
        # The decoded prefix is exactly the frames that fit whole.
        assert [f.payload for f in frames] == items[: len(frames)]
        if frames:
            assert frames[-1].end <= cut
        # A cut on a frame boundary is clean; anywhere else is torn.
        boundaries = {0}
        offset = 0
        for payload in items:
            offset += len(encode_frame(payload))
            boundaries.add(offset)
        assert torn == (cut not in boundaries)
        if torn:
            # The torn tail starts exactly at the last whole frame's end.
            tail_start = frames[-1].end if frames else 0
            assert cut - tail_start < PREFIX_BYTES + len(
                encode_frame(items[len(frames)])
            )
