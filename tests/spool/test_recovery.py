"""Crash-recovery property tests and the corrupt-segment fuzz corpus.

The recovery contract under test:

* truncation at ANY byte offset is repaired by cutting exactly one
  torn tail record, after which appends resume cleanly and the
  surviving records are exactly the whole-frame prefix;
* bit corruption inside a complete frame is NEVER repaired — it
  raises :class:`SpoolCorruptionError` and leaves the file untouched.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spool.format import PREFIX_BYTES, encode_frame, header_payload
from repro.spool.recovery import (
    SpoolCorruptionError,
    recover_spool,
)
from repro.spool.segment import (
    OPEN_SUFFIX,
    read_segment,
    segment_name,
)
from repro.spool.store import SpoolStore

records = st.lists(
    st.integers(min_value=0, max_value=10**6), min_size=1, max_size=12
)


def write_open_segment(root, shard, seq, values) -> bytes:
    """One .open segment holding ``values`` as records; returns bytes."""
    data = encode_frame(header_payload(shard, seq))
    for value in values:
        data += encode_frame({"t": "site", "n": value})
    path = root / (segment_name(shard, seq) + OPEN_SUFFIX)
    path.write_bytes(data)
    return data


class TestTruncationRecovery:
    @settings(max_examples=80, deadline=None)
    @given(values=records, data=st.data())
    def test_arbitrary_byte_cut_recovers_prefix_and_resumes(
        self, values, data, tmp_path_factory
    ):
        root = tmp_path_factory.mktemp("cut")
        stream = write_open_segment(root, "crawl00", 1, values)
        cut = data.draw(st.integers(min_value=0, max_value=len(stream) - 1))
        path = root / ("crawl00-000001" + OPEN_SUFFIX)
        path.write_bytes(stream[:cut])

        report = recover_spool(root)
        assert report.torn_records <= 1

        # Survivors are a prefix of the originals, and the spool is
        # appendable again: resume writes the remainder and the union
        # reads back byte-identically to an uninterrupted run.
        store = SpoolStore.open(root)
        survivors = [
            payload["n"]
            for info in store.segments()
            for payload in read_segment(info.path)
        ]
        assert survivors == values[: len(survivors)]
        for value in values[len(survivors):]:
            store.append("crawl00", {"t": "site", "n": value})
        store.seal_active()
        replayed = [
            payload["n"]
            for info in store.segments()
            for payload in read_segment(info.path)
        ]
        assert replayed == values

    def test_cut_inside_header_recovers_to_discarded_segment(self, tmp_path):
        stream = write_open_segment(tmp_path, "crawl00", 1, [1, 2])
        path = tmp_path / ("crawl00-000001" + OPEN_SUFFIX)
        path.write_bytes(stream[: PREFIX_BYTES - 1])
        store = SpoolStore.open(tmp_path)
        assert store.segments() == []

    def test_recovery_is_idempotent(self, tmp_path):
        stream = write_open_segment(tmp_path, "crawl00", 1, [1, 2, 3])
        path = tmp_path / ("crawl00-000001" + OPEN_SUFFIX)
        path.write_bytes(stream[:-2])
        first = recover_spool(tmp_path)
        assert first.torn_records == 1
        repaired = path.read_bytes()
        second = recover_spool(tmp_path)
        assert second.torn_records == 0
        assert path.read_bytes() == repaired


class TestCorruptionFuzz:
    @settings(max_examples=80, deadline=None)
    @given(values=records, data=st.data())
    def test_bit_flip_in_complete_frame_refuses_repair(
        self, values, data, tmp_path_factory
    ):
        root = tmp_path_factory.mktemp("flip")
        stream = bytearray(
            write_open_segment(root, "crawl00", 1, values)
        )
        # Flip one bit anywhere past a frame's length field: in the
        # crc or the payload of any complete frame. CRC32 catches
        # every single-bit error, so this must always surface as
        # corruption, never as a silently-truncated tail.
        flippable = []
        offset = 0
        frames = [header_payload("crawl00", 1)] + [
            {"t": "site", "n": value} for value in values
        ]
        for payload in frames:
            frame = encode_frame(payload)
            flippable.extend(range(offset + 4, offset + len(frame)))
            offset += len(frame)
        position = data.draw(st.sampled_from(flippable))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        stream[position] ^= 1 << bit
        path = root / ("crawl00-000001" + OPEN_SUFFIX)
        path.write_bytes(bytes(stream))

        before = path.read_bytes()
        with pytest.raises(SpoolCorruptionError):
            recover_spool(root)
        assert path.read_bytes() == before  # refused, not "repaired"

    def test_foreign_header_is_corruption(self, tmp_path):
        path = tmp_path / ("crawl00-000001" + OPEN_SUFFIX)
        path.write_bytes(encode_frame({"format": "not-spool"}))
        with pytest.raises(SpoolCorruptionError):
            recover_spool(tmp_path)

    def test_store_open_propagates_corruption(self, tmp_path):
        stream = bytearray(write_open_segment(tmp_path, "crawl00", 1, [7]))
        stream[-1] ^= 0x01
        path = tmp_path / ("crawl00-000001" + OPEN_SUFFIX)
        path.write_bytes(bytes(stream))
        with pytest.raises(SpoolCorruptionError):
            SpoolStore.open(tmp_path)
