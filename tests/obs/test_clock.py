"""Tests for the deterministic observability clock."""

import pytest

from repro.util.obsclock import TickClock, WallClock


class TestTickClock:
    def test_starts_at_zero(self):
        clock = TickClock()
        assert clock.now() == 0
        assert clock.deterministic

    def test_tick_advances(self):
        clock = TickClock()
        assert clock.tick() == 1
        assert clock.tick(5) == 6
        assert clock.now() == 6

    def test_now_does_not_advance(self):
        clock = TickClock()
        clock.tick()
        assert clock.now() == clock.now() == 1

    def test_custom_start(self):
        assert TickClock(start=10).now() == 10

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            TickClock(start=-1)

    def test_negative_tick_rejected(self):
        with pytest.raises(ValueError):
            TickClock().tick(-1)


class TestWallClock:
    def test_monotone_nondecreasing(self):
        clock = WallClock()
        assert not clock.deterministic
        a = clock.now()
        b = clock.tick()
        assert 0 <= a <= b

    def test_tick_ignores_n(self):
        clock = WallClock()
        # tick(1000) must NOT jump forward a thousand units: real time
        # advances itself.
        clock.tick(10**15)
        assert clock.now() < 10**15
