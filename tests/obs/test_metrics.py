"""Tests for counters, histograms, and the metrics registry."""

import pytest

from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.util.obsclock import TickClock


class TestCounter:
    def test_inc_and_add(self):
        counter = Counter("c")
        counter.inc()
        counter.add(4)
        assert counter.value == 5

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").add(-1)

    def test_ticks_clock(self):
        clock = TickClock()
        counter = Counter("c", clock)
        counter.inc()
        counter.add(100)  # one tick per call, not per unit
        assert clock.now() == 2


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram("h", bounds=(1, 10, 100))
        for value in (0, 1, 5, 50, 500):
            hist.observe(value)
        # <=1: {0, 1}; <=10: {5}; <=100: {50}; overflow: {500}.
        assert hist.counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.min == 0 and hist.max == 500

    def test_mean(self):
        hist = Histogram("h", bounds=(10,))
        assert hist.mean == 0.0
        hist.observe(2)
        hist.observe(4)
        assert hist.mean == 3.0

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(10, 1))

    def test_to_record_shape(self):
        hist = Histogram("h", bounds=(1, 2))
        hist.observe(1.5)
        record = hist.to_record()
        assert record == {
            "bounds": [1, 2], "counts": [0, 1, 0], "count": 1,
            "sum": 1.5, "min": 1.5, "max": 1.5,
        }


class TestRegistry:
    def test_memoizes_instruments(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        assert len(registry) == 2

    def test_record_counts_prefixes(self):
        registry = MetricsRegistry()
        registry.record_counts("cdp.publish", {"Network.webSocketCreated": 3})
        registry.record_counts("cdp.publish", {"Network.webSocketCreated": 2})
        values = registry.counter_values()
        assert values == {"cdp.publish.Network.webSocketCreated": 5}

    def test_snapshot_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("z.last").inc()
        registry.counter("a.first").inc()
        assert list(registry.counter_values()) == ["a.first", "z.last"]
        snapshot = registry.snapshot()
        assert set(snapshot) == {"counters", "histograms"}

    def test_shared_clock_ticks(self):
        clock = TickClock()
        registry = MetricsRegistry(clock)
        registry.counter("a").inc()
        registry.histogram("h").observe(1)
        assert clock.now() == 2
