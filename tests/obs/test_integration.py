"""End-to-end obs coverage: a real study's audit trail.

Runs one smoke-preset study (shared fixture) and checks that every
instrumented subsystem actually reported — spans nested correctly,
counters harvested, attribution attrs attached, report rendered.
"""

from repro.analysis.report import render_obs
from repro.obs.perf import build_flame, diff_traces
from repro.obs.recorder import read_trace, write_trace
from repro.obs.report import obs_summary_json, render_obs_summary


class TestStudySpans:
    def test_study_span_is_root(self, smoke_result):
        summary = smoke_result.obs
        assert summary is not None
        studies = summary.spans_named("study")
        assert len(studies) == 1
        study = studies[0]
        assert study.parent_id == 0 and study.depth == 0
        assert study.attrs == {"preset": "smoke", "seed": 2017}
        assert study.duration > 0

    def test_stage_spans_nest_under_study(self, smoke_result):
        summary = smoke_result.obs
        study_id = summary.spans_named("study")[0].span_id
        assert [s.parent_id for s in summary.spans_named("build-web")] == \
            [study_id]
        crawls = summary.spans_named("crawl")
        assert len(crawls) == 4
        assert all(s.parent_id == study_id for s in crawls)
        assert {s.attrs["chrome"] for s in crawls} == {57, 58}
        analyze = summary.spans_named("analyze")
        stages = {s.attrs["stage"] for s in analyze}
        assert {"labeling", "classify", "table1", "overall"} <= stages

    def test_crawl_attribution_attrs(self, smoke_result):
        for span in smoke_result.obs.spans_named("crawl"):
            assert span.attrs["sites"] > 0
            assert span.attrs["pages"] > 0
            assert span.attrs["sockets"] >= 0
            assert span.attrs["events"] > 0

    def test_site_and_page_spans_retained(self, smoke_result):
        summary = smoke_result.obs
        sites = summary.spans_named("site")
        pages = summary.spans_named("page")
        assert sites and pages
        assert summary.dropped_spans == 0  # smoke fits the budget
        site_ids = {s.span_id for s in sites}
        assert all(p.parent_id in site_ids for p in pages)

    def test_aggregates_cover_all_span_names(self, smoke_result):
        summary = smoke_result.obs
        names = {a.name for a in summary.aggregates}
        assert {"study", "build-web", "crawl", "site", "page",
                "analyze", "lint"} <= names
        page_agg = next(a for a in summary.aggregates if a.name == "page")
        assert page_agg.count == len(summary.spans_named("page"))


class TestHarvestedMetrics:
    def test_crawler_counters(self, smoke_result):
        counters = smoke_result.obs.counters
        assert counters["crawler.sites"] > 0
        assert counters["crawler.pages"] > 0
        assert counters["crawler.sockets"] > 0
        assert counters["crawler.sockets"] >= \
            counters["crawler.sockets_cross_origin"]

    def test_cdp_counters(self, smoke_result):
        summary = smoke_result.obs
        publish = summary.counters_with_prefix("cdp.publish")
        assert publish["Network.webSocketCreated"] == \
            summary.counters["crawler.sockets"]
        assert summary.counters["cdp.delivered"] > 0

    def test_filter_and_webrequest_counters(self, smoke_result):
        counters = smoke_result.obs.counters
        assert counters["filters.matches"] > 0
        assert counters["filters.token_candidates"] >= 0
        assert counters["webrequest.dispatched"] > 0
        # Chrome 57 crawls hit the WebSocket-blindspot: requests the
        # blocker never saw.
        assert counters["webrequest.suppressed_wrb"] > 0

    def test_analysis_counters(self, smoke_result):
        counters = smoke_result.obs.counters
        assert counters["analysis.views"] == len(smoke_result.views)
        assert counters["analysis.aa_sockets"] <= counters["analysis.views"]

    def test_histograms(self, smoke_result):
        histograms = smoke_result.obs.histograms
        sockets = histograms["crawler.sockets_per_page"]
        assert sockets["count"] == smoke_result.obs.counters["crawler.pages"]
        assert "filters.candidates_per_match" in histograms


class TestEventLog:
    def test_stage_events(self, smoke_result):
        stages = [e.attrs["stage"] for e in smoke_result.obs.events
                  if e.name == "stage"]
        assert stages == ["build-web", "crawls", "analyze"]

    def test_progress_events_cover_each_crawl(self, smoke_result):
        progress = [e for e in smoke_result.obs.events
                    if e.name == "crawl.progress"]
        assert {e.attrs["crawl"] for e in progress} == {0, 1, 2, 3}
        finals = [e for e in progress
                  if e.attrs["sites_done"] == e.attrs["sites_total"]]
        assert len(finals) >= 4


class TestRenderedReport:
    def test_report_sections(self, smoke_result):
        text = render_obs_summary(smoke_result.obs)
        assert "PER-STAGE TIMING" in text
        assert "PER-CRAWL ATTRIBUTION" in text
        assert "COUNTERS" in text
        assert "HISTOGRAMS" in text
        assert "crawl" in text and "page" in text

    def test_render_obs_delegates(self, smoke_result):
        assert render_obs(smoke_result.obs) == \
            render_obs_summary(smoke_result.obs)

    def test_summary_json_mirrors_text(self, smoke_result):
        payload = obs_summary_json(smoke_result.obs)
        assert payload["meta"]["preset"] == "smoke"
        assert payload["ticks"] == smoke_result.obs.ticks
        stages = {row["stage"] for row in payload["stages"]}
        assert {"crawl", "site", "page"} <= stages
        assert "study" not in stages  # the root is the 100% mark
        assert len(payload["crawls"]) == 4
        assert payload["counters"]["crawler.pages"] > 0

    def test_summary_json_top_keeps_heaviest(self, smoke_result):
        payload = obs_summary_json(smoke_result.obs, top=2)
        assert len(payload["stages"]) == 2
        ticks = [row["ticks"] for row in payload["stages"]]
        assert ticks == sorted(ticks, reverse=True)


class TestPerfObservatory:
    """The ISSUE acceptance criteria, against a real study trace."""

    def test_flame_attributes_at_least_95_pct(self, smoke_result):
        report = build_flame(smoke_result.obs)
        assert report.attribution >= 0.95
        # Smoke fits the retention budget, so attribution is exact.
        assert report.orphans == 0 and report.dropped_spans == 0
        assert report.attribution == 1.0

    def test_flame_finds_the_crawl_hot_path(self, smoke_result):
        report = build_flame(smoke_result.obs)
        assert 0 < report.total_ticks <= smoke_result.obs.ticks
        paths = [row.path for row in report.rows]
        assert ("study", "crawl", "site", "page") in paths
        names = [path[-1] for path, _ in report.critical_path]
        assert names[0] == "study"
        assert "page" in names or "analyze" in names

    def test_trace_round_trip_preserves_the_flame(self, smoke_result,
                                                  tmp_path):
        path = tmp_path / "smoke.trace.jsonl"
        write_trace(path, smoke_result.obs)
        reread = read_trace(path)
        flame_a = build_flame(smoke_result.obs)
        flame_b = build_flame(reread)
        # read_trace stamps the TRACE_VERSION into meta; everything
        # measured must survive the round trip byte-for-byte.
        flame_b.meta.pop("version", None)
        assert flame_a == flame_b

    def test_self_diff_of_a_real_trace_is_empty(self, smoke_result,
                                                tmp_path):
        path = tmp_path / "smoke.trace.jsonl"
        write_trace(path, smoke_result.obs)
        diff = diff_traces(smoke_result.obs, read_trace(path))
        assert diff.is_empty
        assert diff.suppressed == 0

    def test_site_overhead_share_is_measurable(self, smoke_result):
        # The per-site bookkeeping outside page spans (the accountant
        # fold/replay path) must be attributable as a share of crawl —
        # the ROADMAP's "~17% of crawl" claim becomes a query.
        report = build_flame(smoke_result.obs)
        by_path = {row.path: row for row in report.rows}
        crawl = by_path[("study", "crawl")]
        site = by_path[("study", "crawl", "site")]
        share = site.self_ticks / crawl.total_ticks
        assert 0.0 < share < 1.0
