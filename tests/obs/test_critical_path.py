"""Span-tree reconstruction and self-time attribution.

The load-bearing invariant (ISSUE satellite): for ANY well-nested span
forest — arbitrary nesting, arbitrary record order — the leaf/interior
self-times partition the root cumulative time exactly. Hypothesis
generates the forests; a tiny recursive builder guarantees
well-nestedness by construction.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.critical_path import SpanTree
from repro.obs.recorder import ObsSummary
from repro.obs.tracer import SpanRecord


def _span(span_id, parent_id, name, start, end, depth=0):
    return SpanRecord(span_id=span_id, parent_id=parent_id, name=name,
                      start=start, end=end, depth=depth, attrs={})


def _summary(spans, ticks=None):
    if ticks is None:
        ticks = max((s.end for s in spans), default=0)
    return ObsSummary(meta={"preset": "test"}, ticks=ticks,
                      spans=list(spans))


# --- deterministic shapes -------------------------------------------------


def test_single_span_is_its_own_critical_path():
    tree = SpanTree.from_summary(_summary([_span(1, 0, "study", 0, 10)]))
    assert tree.total_ticks == 10
    assert tree.attributed_self_ticks == 10
    assert tree.attribution() == 1.0
    assert [n.record.name for n in tree.critical_path()] == ["study"]


def test_self_time_is_duration_minus_children():
    # study[0,100] > crawl[10,70] > site[20,40]
    spans = [
        _span(1, 0, "study", 0, 100),
        _span(2, 1, "crawl", 10, 70, depth=1),
        _span(3, 2, "site", 20, 40, depth=2),
    ]
    tree = SpanTree.from_summary(_summary(spans))
    by_name = {n.record.name: n for root in tree.roots
               for n in _walk(root)}
    assert by_name["study"].self_ticks == 100 - 60
    assert by_name["crawl"].self_ticks == 60 - 20
    assert by_name["site"].self_ticks == 20
    assert tree.total_ticks == 100
    assert tree.attributed_self_ticks == 100


def test_critical_path_follows_heaviest_child():
    spans = [
        _span(1, 0, "study", 0, 100),
        _span(2, 1, "crawl", 0, 30, depth=1),
        _span(3, 1, "crawl", 40, 95, depth=1),   # heavier
        _span(4, 3, "site", 45, 60, depth=2),
        _span(5, 3, "site", 60, 90, depth=2),    # heavier
    ]
    tree = SpanTree.from_summary(_summary(spans))
    path = tree.critical_path()
    assert [n.record.span_id for n in path] == [1, 3, 5]


def test_critical_path_tie_breaks_on_earliest_span_id():
    spans = [
        _span(1, 0, "study", 0, 50),
        _span(2, 1, "a", 0, 20, depth=1),
        _span(3, 1, "b", 25, 45, depth=1),  # same duration as span 2
    ]
    tree = SpanTree.from_summary(_summary(spans))
    assert [n.record.span_id for n in tree.critical_path()] == [1, 2]


def test_orphan_spans_become_roots_and_are_counted():
    # Parent id 7 was dropped by the retention budget: the child must
    # still be accounted for, promoted to a root.
    spans = [
        _span(1, 0, "study", 0, 50),
        _span(9, 7, "page", 10, 20, depth=3),
    ]
    tree = SpanTree.from_summary(_summary(spans))
    assert tree.orphans == 1
    assert len(tree.roots) == 2
    assert tree.total_ticks == 50 + 10


def test_zero_duration_root_attributes_fully():
    tree = SpanTree.from_summary(_summary([_span(1, 0, "noop", 5, 5)]))
    assert tree.total_ticks == 0
    assert tree.attribution() == 1.0


def test_paths_aggregate_by_name_chain():
    spans = [
        _span(1, 0, "study", 0, 100),
        _span(2, 1, "crawl", 0, 40, depth=1),
        _span(3, 1, "crawl", 50, 80, depth=1),
    ]
    tree = SpanTree.from_summary(_summary(spans))
    stats = {s.path: s for s in tree.aggregate_paths()}
    crawl = stats[("study", "crawl")]
    assert crawl.count == 2
    assert crawl.total_ticks == 70
    assert crawl.max_ticks == 40
    assert stats[("study",)].self_ticks == 30


# --- the hypothesis property ----------------------------------------------

# Recipe for a well-nested forest: at each node, split [start, end]
# into child windows chosen from drawn fractions. The builder assigns
# span ids in creation order and shuffles the record list afterwards,
# so the tree code sees arbitrary ordering.

_shape = st.recursive(
    st.just([]),
    lambda children: st.lists(children, min_size=1, max_size=3),
    max_leaves=25,
)


def _build(shape, start, end, parent_id, depth, out, rnd):
    span_id = len(out) + 1
    out.append(_span(span_id, parent_id,
                     f"n{depth}", start, end, depth=depth))
    if not shape or end - start < 2 * len(shape):
        return
    width = (end - start) // len(shape)
    cursor = start
    for child in shape:
        # Leave a 1-tick gap so children never abut ambiguously.
        child_end = min(cursor + max(1, width - 1), end)
        _build(child, cursor, child_end, span_id, depth + 1, out, rnd)
        cursor = child_end + 1
        if cursor >= end:
            break


@given(shapes=st.lists(_shape, min_size=1, max_size=3),
       total=st.integers(min_value=10, max_value=10_000),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=150, deadline=None)
def test_self_times_partition_root_cumulative(shapes, total, seed):
    """Arbitrary nesting & ordering: Σ self == Σ root durations."""
    import random

    spans = []
    cursor = 0
    for shape in shapes:
        _build(shape, cursor, cursor + total, 0, 0, spans, None)
        cursor += total + 3
    random.Random(seed).shuffle(spans)

    tree = SpanTree.from_summary(_summary(spans))
    assert tree.orphans == 0
    assert tree.attributed_self_ticks == tree.total_ticks
    assert tree.attribution() == 1.0
    # Every span is reachable exactly once.
    assert sum(1 for root in tree.roots for _ in _walk(root)) == len(spans)


@given(depth=st.integers(min_value=500, max_value=2000))
@settings(max_examples=5, deadline=None)
def test_deep_chains_do_not_hit_recursion_limit(depth):
    spans = [_span(i + 1, i, "deep", i, 2 * depth - i, depth=i)
             for i in range(depth)]
    tree = SpanTree.from_summary(_summary(spans))
    assert tree.attributed_self_ticks == tree.total_ticks
    assert len(tree.critical_path()) == depth


def _walk(node):
    stack = [node]
    while stack:
        current = stack.pop()
        yield current
        stack.extend(current.children)
