"""Obs-test fixtures: one instrumented smoke study, shared."""

import pytest

from repro.experiments import SMOKE_CONFIG
from repro.experiments.runner import run_study


@pytest.fixture(scope="package")
def smoke_result():
    """A smoke-preset study run with the default obs context."""
    return run_study(SMOKE_CONFIG)
