"""Flame reports and trace diffing over synthetic summaries.

The diff properties here (identical traces ⇒ empty diff; thresholds
suppress-but-count) are what CI leans on when it compares worker-count
smoke traces; the acceptance-criteria integration against a *real*
study trace lives in ``test_integration.py``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.perf import (
    build_flame,
    diff_json,
    diff_traces,
    flame_json,
    format_path,
    render_diff,
    render_flame,
)
from repro.obs.recorder import ObsSummary
from repro.obs.tracer import SpanRecord


def _span(span_id, parent_id, name, start, end, depth=0):
    return SpanRecord(span_id=span_id, parent_id=parent_id, name=name,
                      start=start, end=end, depth=depth, attrs={})


def _summary(spans, counters=None, meta=None, dropped=0):
    return ObsSummary(meta=meta or {"preset": "test", "seed": 2017},
                      ticks=max((s.end for s in spans), default=0),
                      spans=list(spans), counters=dict(counters or {}),
                      dropped_spans=dropped)


def _study(scale=1):
    """study > 2×crawl > site > page — the pipeline in miniature."""
    s = scale
    return _summary([
        _span(1, 0, "study", 0, 100 * s),
        _span(2, 1, "crawl", 0, 40 * s, depth=1),
        _span(3, 2, "site", 5 * s, 35 * s, depth=2),
        _span(4, 1, "crawl", 45 * s, 95 * s, depth=1),
        _span(5, 4, "site", 50 * s, 90 * s, depth=2),
        _span(6, 5, "page", 55 * s, 80 * s, depth=3),
    ], counters={"pages": 4 * s, "sockets": 2})


# -- flame ------------------------------------------------------------------


def test_flame_rows_sorted_by_self_time():
    report = build_flame(_study())
    assert report.total_ticks == 100
    assert report.attribution == 1.0
    selfs = [row.self_ticks for row in report.rows]
    assert selfs == sorted(selfs, reverse=True)
    by_path = {row.path: row for row in report.rows}
    site = by_path[("study", "crawl", "site")]
    assert site.count == 2
    assert site.total_ticks == 30 + 40
    assert site.self_ticks == 30 + (40 - 25)
    assert site.pct_total == 70.0


def test_flame_critical_path_descends_heaviest_children():
    report = build_flame(_study())
    assert [list(path)[-1] for path, _ in report.critical_path] == \
        ["study", "crawl", "site", "page"]
    assert report.critical_path[0][1] == 100
    assert report.critical_path[-1][1] == 25


def test_flame_render_and_json_agree():
    report = build_flame(_study())
    text = render_flame(report, top=3)
    assert "100 root ticks" in text
    assert "100.0% attributed" in text
    assert "HOT PATHS (top 3 of 4" in text
    assert "CRITICAL PATH" in text
    assert format_path(("study", "crawl", "site")) in text
    payload = flame_json(report, top=3)
    assert payload["total_ticks"] == 100
    assert payload["attribution"] == 1.0
    assert len(payload["paths"]) == 3
    assert payload["paths"][0]["path"] == \
        list(report.rows[0].path)
    assert [c["path"][-1] for c in payload["critical_path"]] == \
        ["study", "crawl", "site", "page"]


def test_flame_qualifies_dropped_spans():
    summary = _study()
    summary.dropped_spans = 17
    text = render_flame(build_flame(summary))
    assert "17 dropped span(s)" in text


def test_flame_of_empty_trace():
    report = build_flame(_summary([]))
    assert report.total_ticks == 0
    assert report.attribution == 1.0
    assert "0 root ticks" in render_flame(report)


# -- diff -------------------------------------------------------------------


def test_diff_of_identical_summaries_is_empty():
    diff = diff_traces(_study(), _study())
    assert diff.is_empty
    assert diff.suppressed == 0
    assert "no differences" in render_diff(diff)
    assert diff_json(diff)["empty"] is True


def test_diff_reports_tick_and_counter_movement():
    a, b = _study(scale=1), _study(scale=2)
    diff = diff_traces(a, b)
    assert not diff.is_empty
    assert diff.ticks_a == 100 and diff.ticks_b == 200
    root = next(d for d in diff.paths if d.path == ("study",))
    assert root.delta_ticks == 100
    assert root.delta_pct == 100.0
    pages = next(c for c in diff.counters if c.name == "pages")
    assert pages.delta == 4
    text = render_diff(diff)
    assert "SPAN PATHS" in text and "COUNTERS" in text


def test_diff_paths_only_on_one_side():
    a = _study()
    b = _study()
    b.spans.append(_span(7, 1, "lint", 96, 99, depth=1))
    diff = diff_traces(a, b)
    lint = next(d for d in diff.paths if d.path == ("study", "lint"))
    assert (lint.count_a, lint.count_b) == (0, 1)
    assert lint.ticks_b == 3
    # study's self time shrank; its cumulative did not change.
    study = next(d for d in diff.paths if d.path == ("study",))
    assert study.delta_ticks == 0 and study.self_b < study.self_a


def test_diff_thresholds_suppress_but_count():
    a, b = _study(), _study()
    b.spans[5] = _span(6, 5, "page", 55, 81, depth=3)  # +1 tick
    diff = diff_traces(a, b, min_ticks=10)
    # page moved 1 tick; site/crawl self shifted — all sub-threshold.
    assert diff.paths == []
    assert diff.suppressed > 0
    assert "suppressed" in render_diff(diff)
    loose = diff_traces(a, b)
    assert any(d.path == ("study", "crawl", "site", "page")
               for d in loose.paths)


def test_diff_count_changes_bypass_tick_thresholds():
    a, b = _study(), _study()
    b.spans.append(_span(7, 5, "page", 80, 80, depth=3))  # zero-width
    diff = diff_traces(a, b, min_ticks=1_000_000, min_pct=99.0)
    assert len(diff.paths) == 1
    assert diff.paths[0].count_b - diff.paths[0].count_a == 1


def test_diff_min_count_gates_counters():
    a, b = _study(), _study()
    b.counters["sockets"] = 3
    assert diff_traces(a, b, min_count=5).is_empty
    assert not diff_traces(a, b).is_empty


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_diff_self_identity_for_arbitrary_traces(seed):
    """Any summary diffed against itself is empty (the CI property)."""
    import random

    rnd = random.Random(seed)
    spans = [_span(1, 0, "study", 0, 1000)]
    for i in range(2, rnd.randint(2, 30)):
        parent = rnd.choice(spans)
        lo = rnd.randint(parent.start, parent.end)
        hi = rnd.randint(lo, parent.end)
        spans.append(_span(i, parent.span_id,
                           rnd.choice("abcd"), lo, hi,
                           depth=parent.depth + 1))
    counters = {f"c{i}": rnd.randint(0, 99) for i in range(3)}
    summary = _summary(spans, counters=counters)
    diff = diff_traces(summary, summary)
    assert diff.is_empty
    assert diff.suppressed == 0
