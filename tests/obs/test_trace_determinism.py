"""CDP event ordering and trace byte-reproducibility.

These pin the two guarantees ``repro study --trace`` advertises: the
recorded CDP event stream respects the ``Network.webSocket*`` lifecycle
per socket, and two same-seed runs export byte-identical artifacts.
"""

from repro.experiments import SMOKE_CONFIG
from repro.experiments.runner import run_study
from repro.obs import Obs, write_metrics, write_trace

_LIFECYCLE = (
    "Network.webSocketCreated",
    "Network.webSocketWillSendHandshakeRequest",
    "Network.webSocketHandshakeResponseReceived",
    "Network.webSocketClosed",
)


class TestCdpEventOrdering:
    def test_websocket_lifecycle_order_per_socket(self, tiny_web, bus, browser):
        obs = Obs()
        recorder = obs.recorder_for(bus, keep_events=True)
        plan = next(iter(tiny_web.plan.site_plans.values()))
        # Sockets appear per-page probabilistically; a handful of pages
        # is guaranteed to hit at least one.
        for page in range(6):
            browser.visit(tiny_web.blueprint(plan.site, page, 0), crawl=0)
        socket_ids = {
            rid for method, rid, _ in recorder.sequence
            if method == "Network.webSocketCreated"
        }
        assert socket_ids, "fixture site should open at least one socket"
        for rid in socket_ids:
            methods = recorder.events_for(rid)
            milestones = [m for m in methods if m in _LIFECYCLE]
            assert milestones == list(_LIFECYCLE)
            # Data frames only flow between the 101 and the close.
            lo = methods.index(_LIFECYCLE[2])
            hi = methods.index(_LIFECYCLE[3])
            frame_positions = [
                i for i, m in enumerate(methods)
                if m.startswith("Network.webSocketFrame")
            ]
            assert all(lo < i < hi for i in frame_positions)

    def test_recorder_ticks_monotone(self, tiny_web, bus, browser):
        obs = Obs()
        recorder = obs.recorder_for(bus, keep_events=True)
        plan = next(iter(tiny_web.plan.site_plans.values()))
        browser.visit(tiny_web.blueprint(plan.site, 0, 0), crawl=0)
        ticks = [tick for _, _, tick in recorder.sequence]
        assert ticks == sorted(ticks)
        assert recorder.total == len(recorder.sequence)


class TestByteIdenticalRuns:
    def test_same_seed_runs_export_identical_artifacts(self, tmp_path):
        paths = {}
        for run in ("a", "b"):
            result = run_study(SMOKE_CONFIG)
            trace = tmp_path / f"{run}.jsonl"
            metrics = tmp_path / f"{run}.json"
            write_trace(trace, result.obs)
            write_metrics(metrics, result.obs)
            paths[run] = (trace, metrics)
        assert paths["a"][0].read_bytes() == paths["b"][0].read_bytes()
        assert paths["a"][1].read_bytes() == paths["b"][1].read_bytes()
