"""The benchmark history store and its regression gate.

Pins the ISSUE acceptance pair directly: a synthetic 2x slowdown
appended to a healthy history must trip the gate, and an unchanged
re-run must not.
"""

import json

import pytest

from repro.obs.history import (
    HIGHER_IS_BETTER,
    LOWER_IS_BETTER,
    BenchRecord,
    append_history,
    check_history,
    check_json,
    fingerprint_key,
    flatten_metrics,
    git_sha,
    hardware_fingerprint,
    metric_direction,
    read_history,
    records_for_payload,
    render_check,
)


def _rec(value, bench="parallel", metric="workers_4_seconds",
         hardware="hw1", context="bench"):
    return BenchRecord(bench=bench, metric=metric, value=value,
                       hardware=hardware, context=context)


# -- provenance -------------------------------------------------------------


def test_fingerprint_is_stable_and_short():
    hw = hardware_fingerprint()
    assert set(hw) == {"cpu_count", "platform", "python"}
    key = fingerprint_key(hw)
    assert key == fingerprint_key(hw)
    assert len(key) == 12
    assert int(key, 16) >= 0
    assert fingerprint_key({"cpu_count": 1}) != key


def test_git_sha_in_repo_and_fallback(tmp_path):
    sha = git_sha()
    assert len(sha) == 40 and int(sha, 16) >= 0
    # A bare tmp dir is not a repo: degrade, never raise.
    assert git_sha(tmp_path) == "unknown"


# -- payload flattening -----------------------------------------------------


def test_flatten_walks_nests_lists_and_skips_non_numbers():
    flat = flatten_metrics({
        "speedup": 1.4,
        "ok": True,                      # bool is not a metric
        "label": "smoke",                # nor is a string
        "nested": {"p99_ms": 12, "name": "x"},
        "rows": [{"sockets": 3}, {"sockets": 5}],
        "git_sha": "deadbeef",           # provenance, skipped
        "hardware": {"cpu_count": 64},   # provenance, skipped
    })
    assert flat == {
        "speedup": 1.4,
        "nested.p99_ms": 12,
        "rows.0.sockets": 3,
        "rows.1.sockets": 5,
    }


def test_records_for_payload_carries_provenance():
    records = records_for_payload(
        "faults", {"bare_seconds": 0.5}, sha="abc", hardware="hw",
        context="bench-smoke",
    )
    assert len(records) == 1
    record = records[0]
    assert record.group_key() == (
        "faults", "bare_seconds", "hw", "bench-smoke")
    assert record.git_sha == "abc"
    assert record.to_json()["version"] == 1


# -- store round-trip -------------------------------------------------------


def test_append_read_round_trip_skips_corrupt_lines(tmp_path):
    path = tmp_path / "deep" / "history.jsonl"
    first = records_for_payload("b", {"x_seconds": 1.0}, sha="s1")
    second = records_for_payload("b", {"x_seconds": 1.1}, sha="s2")
    assert append_history(path, first) == 1
    with path.open("a") as handle:
        handle.write("{not json\n")
        handle.write(json.dumps({"bench": "b"}) + "\n")  # incomplete
        handle.write("\n")
    append_history(path, second)
    records, skipped = read_history(path)
    assert [r.value for r in records] == [1.0, 1.1]
    assert [r.git_sha for r in records] == ["s1", "s2"]
    assert skipped == 2


def test_history_lines_are_canonical_json(tmp_path):
    path = tmp_path / "history.jsonl"
    append_history(path, [_rec(1.5)])
    line = path.read_text().strip()
    assert line == json.dumps(json.loads(line),
                              separators=(",", ":"), sort_keys=True)


# -- direction inference ----------------------------------------------------

@pytest.mark.parametrize("metric,expected", [
    ("workers_4_seconds", LOWER_IS_BETTER),
    ("timings.replay.p99_ms", LOWER_IS_BETTER),
    ("overhead_seconds", LOWER_IS_BETTER),
    ("trace_bytes", LOWER_IS_BETTER),
    ("speedup_workers_4", HIGHER_IS_BETTER),
    ("flame_throughput_spans_per_sec", HIGHER_IS_BETTER),
    ("budget_pct", None),               # a budget is a constant
    ("total_sockets", None),            # a count is a fact
    ("attribution_pct", None),
    # A _pct metric is already a ratio of two timings; ratio-gating it
    # compounds jitter. Its bench's own budget assert is the contract.
    ("zero_fault_overhead_pct", None),
])
def test_metric_direction(metric, expected):
    assert metric_direction(metric) == expected


def test_direction_uses_leaf_not_path():
    # The dotted path may mention seconds; only the leaf decides.
    assert metric_direction("workers_4_seconds.count") is None


# -- the gate ---------------------------------------------------------------


def _healthy(n=5, value=1.0):
    return [_rec(value) for _ in range(n)]


def test_unchanged_rerun_passes():
    check = check_history(_healthy(6))
    assert check.ok
    assert check.compared == 1
    assert "no regressions" in render_check(check)


def test_2x_slowdown_trips_the_gate():
    check = check_history(_healthy(5) + [_rec(2.0)])
    assert not check.ok
    regression = check.regressions[0]
    assert regression.ratio == 2.0
    assert regression.direction == LOWER_IS_BETTER
    assert regression.baseline == 1.0
    assert "2.00x" in regression.describe()
    assert "REGRESSION" in render_check(check)
    assert check_json(check)["ok"] is False


def test_speedup_collapse_trips_the_gate():
    series = [_rec(2.0, metric="speedup_workers_4") for _ in range(4)]
    series.append(_rec(0.8, metric="speedup_workers_4"))
    check = check_history(series)
    assert not check.ok
    assert check.regressions[0].direction == HIGHER_IS_BETTER
    # …and a speedup going UP is never a regression.
    assert check_history(series[:-1] + [_rec(4.0, metric="speedup_workers_4")]).ok


def test_tolerance_band_absorbs_noise():
    assert check_history(_healthy(5) + [_rec(1.4)]).ok       # +40% < 50%
    assert not check_history(_healthy(5) + [_rec(1.6)]).ok   # +60% > 50%
    assert check_history(_healthy(5) + [_rec(1.2)],
                         tolerance=0.1).regressions


def test_min_delta_guards_near_zero_baselines():
    series = [_rec(0.001) for _ in range(5)] + [_rec(0.004)]
    assert check_history(series).ok            # 4x, but |Δ| < 0.01
    assert not check_history(series, min_delta=0.0001).ok


def test_window_bounds_the_baseline():
    # Old slow records must age out of the rolling window.
    series = [_rec(9.0)] * 10 + [_rec(1.0)] * 6 + [_rec(2.0)]
    assert not check_history(series, window=5).ok
    assert check_history(series, window=16).ok  # median back in slow era


def test_first_appearance_is_fresh_not_compared():
    check = check_history([_rec(1.0)])
    assert check.ok
    assert check.fresh == 1 and check.compared == 0


def test_groups_do_not_cross_hardware_or_context():
    # 2x move, but on different hardware / preset: incomparable.
    series = _healthy(5) + [_rec(2.0, hardware="hw2")]
    assert check_history(series).ok
    series = _healthy(5) + [_rec(2.0, context="bench-smoke")]
    assert check_history(series).ok


def test_ungated_metrics_never_regress():
    series = [_rec(10, metric="total_sockets") for _ in range(5)]
    series.append(_rec(500, metric="total_sockets"))
    check = check_history(series)
    assert check.ok and check.ungated == 1
