"""Tests for nested spans and the structured event log."""

import pytest

from repro.obs.tracer import Tracer
from repro.util.obsclock import TickClock


class TestSpans:
    def test_nesting_and_parentage(self):
        tracer = Tracer()
        with tracer.span("study") as study:
            with tracer.span("crawl", index=0) as crawl:
                with tracer.span("site", domain="a.example"):
                    pass
        site, inner, outer = tracer.finished
        assert site.name == "site" and site.depth == 2
        assert inner is crawl.record and outer is study.record
        assert site.parent_id == crawl.record.span_id
        assert crawl.record.parent_id == study.record.span_id
        assert study.record.parent_id == 0

    def test_durations_are_ticks(self):
        clock = TickClock()
        tracer = Tracer(clock)
        with tracer.span("outer"):
            clock.tick(10)
            with tracer.span("inner"):
                clock.tick(3)
        inner, outer = tracer.finished
        assert inner.duration == 4  # 3 work ticks + its end boundary
        assert outer.duration > inner.duration
        assert outer.start < inner.start <= inner.end <= outer.end

    def test_attrs_via_set(self):
        tracer = Tracer()
        with tracer.span("crawl", index=1) as span:
            span.set(sites=10, sockets=3)
        record = tracer.finished[0]
        assert record.attrs == {"index": 1, "sites": 10, "sockets": 3}

    def test_aggregates_accumulate(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("page"):
                pass
        aggregate = tracer.aggregates["page"]
        assert aggregate.count == 3
        assert aggregate.total_ticks == sum(
            s.duration for s in tracer.spans_named("page")
        )

    def test_exception_unwinds_cleanly(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.current_span_id == 0
        assert {s.name for s in tracer.finished} == {"outer", "inner"}
        assert all(s.end >= s.start for s in tracer.finished)

    def test_retention_budget_keeps_aggregates_complete(self):
        tracer = Tracer(max_spans=2)
        for _ in range(5):
            with tracer.span("page"):
                pass
        assert len(tracer.finished) == 2
        assert tracer.dropped_spans == 3
        assert tracer.aggregates["page"].count == 5


class TestEvents:
    def test_event_carries_current_span(self):
        tracer = Tracer()
        with tracer.span("crawl") as span:
            event = tracer.event("crawl.progress", sites_done=5)
        assert event.span_id == span.record.span_id
        assert event.attrs == {"sites_done": 5}
        assert tracer.events == [event]

    def test_sink_streams_and_remover_detaches(self):
        tracer = Tracer()
        seen = []
        remove = tracer.add_sink(seen.append)
        tracer.event("a")
        remove()
        tracer.event("b")
        assert [e.name for e in seen] == ["a"]
        remove()  # idempotent

    def test_sorted_aggregates_largest_first(self):
        clock = TickClock()
        tracer = Tracer(clock)
        with tracer.span("big"):
            clock.tick(100)
        with tracer.span("small"):
            pass
        names = [a.name for a in tracer.sorted_aggregates()]
        assert names == ["big", "small"]
