"""Tests for the trace recorder and the trace file round trip."""

import pytest

from repro.cdp.events import ScriptParsed, WebSocketClosed, WebSocketCreated
from repro.obs import Obs, TraceRecorder, read_trace, write_metrics, write_trace
from repro.obs.recorder import ObsSummary
from repro.obs.tracer import ObsEvent, SpanAggregate, SpanRecord
from repro.util.obsclock import TickClock


def _created(rid):
    return WebSocketCreated(timestamp=0.0, request_id=rid,
                            url="wss://ws.example/")


class TestTraceRecorder:
    def test_counts_by_method(self, bus):
        recorder = TraceRecorder(bus)
        bus.publish(_created("r1"))
        bus.publish(_created("r2"))
        bus.publish(WebSocketClosed(timestamp=0.0, request_id="r1"))
        assert recorder.by_method == {
            "Network.webSocketCreated": 2,
            "Network.webSocketClosed": 1,
        }
        assert recorder.total == 3

    def test_detach_stops_accounting(self, bus):
        recorder = TraceRecorder(bus)
        bus.publish(_created("r1"))
        recorder.detach()
        bus.publish(_created("r2"))
        assert recorder.total == 1

    def test_sequence_and_events_for(self, bus):
        recorder = TraceRecorder(bus, clock=TickClock(), keep_events=True)
        bus.publish(_created("r1"))
        bus.publish(ScriptParsed(timestamp=0.0, script_id="s", url="u"))
        bus.publish(WebSocketClosed(timestamp=0.0, request_id="r1"))
        assert recorder.events_for("r1") == [
            "Network.webSocketCreated", "Network.webSocketClosed",
        ]
        ticks = [tick for _, _, tick in recorder.sequence]
        assert ticks == sorted(ticks)

    def test_sequence_off_by_default(self, bus):
        recorder = TraceRecorder(bus)
        bus.publish(_created("r1"))
        assert recorder.sequence == []


def _summary():
    obs = Obs()
    with obs.span("study", preset="x"):
        with obs.span("crawl", index=0) as crawl:
            obs.event("crawl.progress", sites_done=1)
            crawl.set(sites=1)
        obs.metrics.counter("crawler.pages").add(4)
        obs.metrics.histogram("crawler.sockets_per_page").observe(2)
    return obs.summary(preset="test", seed=7)


class TestTraceRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        summary = _summary()
        path = tmp_path / "trace.jsonl"
        lines = write_trace(path, summary)
        # meta + 2 spans + 2 aggs + 1 event + 1 counter + 1 hist.
        assert lines == 8
        loaded = read_trace(path)
        assert loaded.meta == {"version": 1, "preset": "test", "seed": 7}
        assert loaded.ticks == summary.ticks
        assert loaded.spans == summary.spans
        assert loaded.aggregates == summary.aggregates
        assert loaded.events == summary.events
        assert loaded.counters == summary.counters
        assert loaded.histograms == summary.histograms

    def test_rewrite_of_loaded_summary_is_identical(self, tmp_path):
        first = tmp_path / "a.jsonl"
        second = tmp_path / "b.jsonl"
        write_trace(first, _summary())
        write_trace(second, read_trace(first))
        assert second.read_bytes() == first.read_bytes()

    def test_metrics_json_stable(self, tmp_path):
        summary = _summary()
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_metrics(a, summary)
        write_metrics(b, summary)
        assert a.read_bytes() == b.read_bytes()
        assert b'"crawler.pages": 4' in a.read_bytes()

    def test_read_trace_requires_meta(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "counter", "name": "a", "value": 1}\n')
        with pytest.raises(ValueError, match="no meta record"):
            read_trace(path)

    def test_read_trace_rejects_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown trace record kind"):
            read_trace(path)


class TestObsSummaryHelpers:
    def test_spans_named(self):
        summary = _summary()
        assert [s.name for s in summary.spans_named("crawl")] == ["crawl"]

    def test_counters_with_prefix(self):
        summary = ObsSummary(counters={"a.x": 1, "a.y": 2, "ab.z": 3})
        assert summary.counters_with_prefix("a") == {"x": 1, "y": 2}


class TestObsFacade:
    def test_summary_freezes_state(self):
        summary = _summary()
        assert summary.ticks > 0
        assert summary.dropped_spans == 0
        assert [a.name for a in summary.aggregates] == ["crawl", "study"]
        assert isinstance(summary.spans[0], SpanRecord)
        assert isinstance(summary.aggregates[0], SpanAggregate)
        assert isinstance(summary.events[0], ObsEvent)

    def test_recorder_for_shares_clock(self, bus):
        obs = Obs()
        recorder = obs.recorder_for(bus, keep_events=True)
        before = obs.clock.now()
        bus.publish(_created("r1"))
        assert obs.clock.now() == before + 1
        assert recorder.sequence[0][2] == before + 1
