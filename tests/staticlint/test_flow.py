"""Zone contracts on fixture trees: one seeded violation per contract.

Each fixture builds a miniature ``repro`` package in a tmp dir whose
violation is *interprocedural* — the effect originates two or more
calls away from the zone entry point, where the per-file DET rules are
blind — and asserts the full call chain is rendered in the diagnostic.
"""

from pathlib import Path

import pytest

from repro.staticlint.flow import (
    DEFAULT_LAYERS,
    FlowConfig,
    analyze_self,
    analyze_tree,
)


def _tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return tmp_path / "repro"


_INITS = {
    "repro/__init__.py": "",
    "repro/util/__init__.py": "",
    "repro/crawler/__init__.py": "",
}


class TestDeterminismZone:
    def test_interprocedural_wallclock_leak(self, tmp_path):
        # crawl -> stamp -> now_ms -> time.time(): the wallclock read
        # sits TWO calls outside the zone; no single-file rule sees it.
        root = _tree(tmp_path, {
            **_INITS,
            "repro/util/helpers.py": (
                "import time\n"
                "def now_ms():\n"
                "    return int(time.time() * 1000)\n"
                "def stamp(record):\n"
                "    record['t'] = now_ms()\n"
            ),
            "repro/crawler/core.py": (
                "from repro.util.helpers import stamp\n"
                "def crawl(record):\n"
                "    stamp(record)\n"
            ),
        })
        analysis = analyze_tree(root, root=tmp_path)
        findings = analysis.flow_report.by_rule("FLOW-DET")
        assert len(findings) == 1
        diag = findings[0]
        assert diag.source == "repro/crawler/core.py:2"
        assert diag.trace == (
            "repro.crawler.core.crawl",
            "repro.util.helpers.stamp",
            "repro.util.helpers.now_ms",
        )
        # Chain and origin are rendered for humans too.
        assert ("repro.crawler.core.crawl -> repro.util.helpers.stamp "
                "-> repro.util.helpers.now_ms") in diag.message
        assert "time.time at repro/util/helpers.py:3" in diag.message
        assert diag.baseline_key == (
            "FLOW-DET::repro.crawler.core:crawl::wallclock"
        )

    def test_only_the_crossing_point_is_flagged(self, tmp_path):
        # outer -> crawl -> (out-of-zone) stamp: the effect enters the
        # zone at crawl; outer merely inherits it from an in-zone
        # callee and is not re-flagged.
        root = _tree(tmp_path, {
            **_INITS,
            "repro/util/helpers.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
            "repro/crawler/core.py": (
                "from repro.util.helpers import stamp\n"
                "def crawl():\n"
                "    return stamp()\n"
                "def outer():\n"
                "    return crawl()\n"
            ),
        })
        analysis = analyze_tree(root, root=tmp_path)
        flagged = [d.trace[0] for d in
                   analysis.flow_report.by_rule("FLOW-DET")]
        assert flagged == ["repro.crawler.core.crawl"]

    def test_sanctioned_rng_boundary_absorbs_entropy(self, tmp_path):
        root = _tree(tmp_path, {
            **_INITS,
            "repro/util/rng.py": (
                "import random\n"
                "def draw(seed):\n"
                "    return random.Random(seed).random()\n"
            ),
            "repro/crawler/core.py": (
                "from repro.util.rng import draw\n"
                "def crawl(seed):\n"
                "    return draw(seed)\n"
            ),
        })
        analysis = analyze_tree(root, root=tmp_path)
        assert analysis.flow_report.by_rule("FLOW-DET") == []
        # The sanctioned module itself still carries the effect —
        # only propagation across its boundary is masked.
        assert "rng" in analysis.effects["repro.util.rng:draw"]
        assert "rng" not in analysis.effects["repro.crawler.core:crawl"]


class TestAsyncReadiness:
    def test_interprocedural_blocking_io_on_hot_path(self, tmp_path):
        root = _tree(tmp_path, {
            **_INITS,
            "repro/browser/__init__.py": "",
            "repro/util/disk.py": (
                "def read_blob(path):\n"
                "    with open(path, 'rb') as f:\n"
                "        return f.read()\n"
                "def load_profile(path):\n"
                "    return read_blob(path)\n"
            ),
            "repro/browser/page.py": (
                "from repro.util.disk import load_profile\n"
                "def navigate(path):\n"
                "    return load_profile(path)\n"
            ),
        })
        analysis = analyze_tree(root, root=tmp_path)
        findings = analysis.flow_report.by_rule("FLOW-ASYNC")
        assert len(findings) == 1
        diag = findings[0]
        assert diag.trace == (
            "repro.browser.page.navigate",
            "repro.util.disk.load_profile",
            "repro.util.disk.read_blob",
        )
        assert "blocking-io" in diag.message
        assert "2 call(s) deep" in diag.message

    def test_off_hot_path_io_is_fine(self, tmp_path):
        root = _tree(tmp_path, {
            **_INITS,
            "repro/analysis/__init__.py": "",
            "repro/analysis/export.py": (
                "def dump(path, text):\n"
                "    path.write_text(text)\n"
            ),
        })
        analysis = analyze_tree(root, root=tmp_path)
        assert analysis.flow_report.by_rule("FLOW-ASYNC") == []


class TestLayering:
    def test_upward_import_is_flagged(self, tmp_path):
        root = _tree(tmp_path, {
            **_INITS,
            "repro/crawler/core.py": "",
            "repro/util/leaky.py": "from repro.crawler import core\n",
        })
        analysis = analyze_tree(root, root=tmp_path)
        findings = analysis.flow_report.by_rule("FLOW-LAYER")
        assert len(findings) == 1
        diag = findings[0]
        assert diag.source == "repro/util/leaky.py:1"
        assert "util (layer 0)" in diag.message
        assert "crawler" in diag.message

    def test_downward_import_is_fine(self, tmp_path):
        root = _tree(tmp_path, {
            **_INITS,
            "repro/util/helpers.py": "",
            "repro/crawler/core.py": "from repro.util import helpers\n",
        })
        analysis = analyze_tree(root, root=tmp_path)
        assert analysis.flow_report.by_rule("FLOW-LAYER") == []

    def test_undeclared_package_warns(self, tmp_path):
        root = _tree(tmp_path, {
            **_INITS,
            "repro/mystery/__init__.py": "",
            "repro/mystery/x.py": "from repro.util import helpers\n",
            "repro/util/helpers.py": "",
        })
        analysis = analyze_tree(root, root=tmp_path)
        warnings = [d for d in analysis.flow_report.by_rule("FLOW-LAYER")
                    if "not in the declared layer DAG" in d.message]
        assert len(warnings) == 1
        assert "'mystery'" in warnings[0].message

    def test_package_cycle_is_flagged(self, tmp_path):
        # net and cdp share layer 1: neither import is "upward", but
        # together they form a cycle only the SCC pass can see.
        root = _tree(tmp_path, {
            "repro/__init__.py": "",
            "repro/net/__init__.py": "",
            "repro/cdp/__init__.py": "",
            "repro/net/chan.py": "from repro.cdp import bus\n",
            "repro/cdp/bus.py": "from repro.net import chan\n",
        })
        analysis = analyze_tree(root, root=tmp_path)
        findings = analysis.flow_report.by_rule("FLOW-CYCLE")
        assert len(findings) == 1
        assert "cdp <-> net" in findings[0].message
        layer = analysis.flow_report.by_rule("FLOW-LAYER")
        assert layer == []


class TestCustomConfig:
    def test_zones_and_layers_are_configurable(self, tmp_path):
        root = _tree(tmp_path, {
            **_INITS,
            "repro/util/helpers.py": (
                "import time\n"
                "def stamp():\n"
                "    return time.time()\n"
            ),
            "repro/crawler/core.py": (
                "from repro.util.helpers import stamp\n"
                "def crawl():\n"
                "    return stamp()\n"
            ),
        })
        relaxed = FlowConfig(
            determinism_zones=frozenset(),
            hot_path_prefixes=(),
            layers=dict(DEFAULT_LAYERS),
        )
        analysis = analyze_tree(root, root=tmp_path, config=relaxed)
        assert len(analysis.flow_report) == 0


class TestPerfReadonlyZone:
    """OBS-PERF: the perf observatory must not write the filesystem."""

    _OBS_INITS = {
        "repro/__init__.py": "",
        "repro/obs/__init__.py": "",
    }

    def test_interprocedural_write_leak_is_flagged(self, tmp_path):
        # flame -> export -> dump -> write_text: the write sits TWO
        # calls outside the read-only zone.
        root = _tree(tmp_path, {
            **self._OBS_INITS,
            "repro/obs/export.py": (
                "def dump(path, text):\n"
                "    path.write_text(text)\n"
                "def export(path, report):\n"
                "    dump(path, str(report))\n"
            ),
            "repro/obs/perf.py": (
                "from repro.obs.export import export\n"
                "def flame(path, report):\n"
                "    export(path, report)\n"
            ),
        })
        analysis = analyze_tree(root, root=tmp_path)
        findings = analysis.flow_report.by_rule("OBS-PERF")
        assert len(findings) == 1
        diag = findings[0]
        assert diag.source == "repro/obs/perf.py:2"
        assert diag.trace == (
            "repro.obs.perf.flame",
            "repro.obs.export.export",
            "repro.obs.export.dump",
        )
        assert "fs-write" in diag.message
        assert "repro.obs.history" in diag.fix_hint
        assert diag.baseline_key == (
            "OBS-PERF::repro.obs.perf:flame::fs-write"
        )

    def test_critical_path_module_is_in_the_zone(self, tmp_path):
        root = _tree(tmp_path, {
            **self._OBS_INITS,
            "repro/obs/critical_path.py": (
                "def cache_tree(path, tree):\n"
                "    path.write_text(str(tree))\n"
            ),
        })
        analysis = analyze_tree(root, root=tmp_path)
        findings = analysis.flow_report.by_rule("OBS-PERF")
        assert [d.baseline_key for d in findings] == [
            "OBS-PERF::repro.obs.critical_path:cache_tree::fs-write"
        ]

    def test_history_sink_absorbs_the_write(self, tmp_path):
        # Persistence routed through the sanctioned history module is
        # the designed shape — no finding.
        root = _tree(tmp_path, {
            **self._OBS_INITS,
            "repro/obs/history.py": (
                "def append(path, line):\n"
                "    with path.open('a') as handle:\n"
                "        handle.write(line)\n"
            ),
            "repro/obs/perf.py": (
                "from repro.obs.history import append\n"
                "def flame_and_persist(path, report):\n"
                "    append(path, str(report))\n"
            ),
        })
        analysis = analyze_tree(root, root=tmp_path)
        assert analysis.flow_report.by_rule("OBS-PERF") == []
        # The mask silences the zone finding only; the effect summary
        # never lies — both functions still show the write.
        assert "fs-write" in analysis.effects["repro.obs.history:append"]
        assert "fs-write" in \
            analysis.effects["repro.obs.perf:flame_and_persist"]

    def test_reading_traces_is_fine(self, tmp_path):
        root = _tree(tmp_path, {
            **self._OBS_INITS,
            "repro/obs/perf.py": (
                "import json\n"
                "def load(path):\n"
                "    with open(path) as handle:\n"
                "        return [json.loads(l) for l in handle]\n"
            ),
        })
        analysis = analyze_tree(root, root=tmp_path)
        assert analysis.flow_report.by_rule("OBS-PERF") == []

    def test_writes_outside_the_zone_are_not_obs_perf(self, tmp_path):
        root = _tree(tmp_path, {
            **self._OBS_INITS,
            "repro/obs/recorder.py": (
                "def write_trace(path, text):\n"
                "    path.write_text(text)\n"
            ),
        })
        analysis = analyze_tree(root, root=tmp_path)
        assert analysis.flow_report.by_rule("OBS-PERF") == []


class TestSpoolReadonlyZone:
    """SPOOL-RO: crash recovery must not write the filesystem."""

    _SPOOL_INITS = {
        "repro/__init__.py": "",
        "repro/spool/__init__.py": "",
    }

    def test_interprocedural_repair_leak_is_flagged(self, tmp_path):
        # recover -> patch -> rewrite: the write sits TWO calls
        # outside the read-only zone.
        root = _tree(tmp_path, {
            **self._SPOOL_INITS,
            "repro/spool/repair.py": (
                "def rewrite(path, data):\n"
                "    path.write_bytes(data)\n"
                "def patch(path, data):\n"
                "    rewrite(path, data)\n"
            ),
            "repro/spool/recovery.py": (
                "from repro.spool.repair import patch\n"
                "def recover(path, data):\n"
                "    patch(path, data)\n"
            ),
        })
        analysis = analyze_tree(root, root=tmp_path)
        findings = analysis.flow_report.by_rule("SPOOL-RO")
        assert len(findings) == 1
        diag = findings[0]
        assert diag.source == "repro/spool/recovery.py:2"
        assert diag.trace == (
            "repro.spool.recovery.recover",
            "repro.spool.repair.patch",
            "repro.spool.repair.rewrite",
        )
        assert "fs-write" in diag.message
        assert "truncate_segment" in diag.fix_hint
        assert diag.baseline_key == (
            "SPOOL-RO::repro.spool.recovery:recover::fs-write"
        )

    def test_truncate_sink_absorbs_the_write(self, tmp_path):
        # The one sanctioned repair — truncation routed through
        # repro.spool.segment — is the designed shape; no finding.
        root = _tree(tmp_path, {
            **self._SPOOL_INITS,
            "repro/spool/segment.py": (
                "def truncate_segment(path, size):\n"
                "    with path.open('r+b') as handle:\n"
                "        handle.truncate(size)\n"
            ),
            "repro/spool/recovery.py": (
                "from repro.spool.segment import truncate_segment\n"
                "def recover(path, size):\n"
                "    truncate_segment(path, size)\n"
            ),
        })
        analysis = analyze_tree(root, root=tmp_path)
        assert analysis.flow_report.by_rule("SPOOL-RO") == []
        # The mask silences the zone finding only; the effect summary
        # never lies — both functions still show the write.
        assert "fs-write" in \
            analysis.effects["repro.spool.segment:truncate_segment"]
        assert "fs-write" in \
            analysis.effects["repro.spool.recovery:recover"]

    def test_scanning_segments_is_fine(self, tmp_path):
        root = _tree(tmp_path, {
            **self._SPOOL_INITS,
            "repro/spool/recovery.py": (
                "def scan(path):\n"
                "    with open(path, 'rb') as handle:\n"
                "        return handle.read()\n"
            ),
        })
        analysis = analyze_tree(root, root=tmp_path)
        assert analysis.flow_report.by_rule("SPOOL-RO") == []

    def test_writes_outside_the_zone_are_not_spool_ro(self, tmp_path):
        root = _tree(tmp_path, {
            **self._SPOOL_INITS,
            "repro/spool/store.py": (
                "def append(path, data):\n"
                "    path.write_bytes(data)\n"
            ),
        })
        analysis = analyze_tree(root, root=tmp_path)
        assert analysis.flow_report.by_rule("SPOOL-RO") == []

    def test_spool_finding_gates_the_exit_code(self, tmp_path):
        from repro.staticlint.runner import FullLintResult

        root = _tree(tmp_path, {
            **self._SPOOL_INITS,
            "repro/spool/recovery.py": (
                "def recover(path, data):\n"
                "    path.write_bytes(data)\n"
            ),
        })
        analysis = analyze_tree(root, root=tmp_path)
        result = FullLintResult(flow_report=analysis.flow_report)
        for diag in analysis.flow_report.diagnostics:
            result.report.add(diag)
        assert [d.rule_id for d in result.report.errors] == ["SPOOL-RO"]
        assert result.exit_code == 1


class TestServeReadonlyZone:
    """SERVE-RO: answering a serve query must not write the filesystem."""

    _SERVE_INITS = {
        "repro/__init__.py": "",
        "repro/serve/__init__.py": "",
    }

    def test_interprocedural_dispatch_write_leak_is_flagged(self, tmp_path):
        # handle -> audit -> record: the write sits two calls outside
        # the shared-snapshot dispatch path.
        root = _tree(tmp_path, {
            **self._SERVE_INITS,
            "repro/serve/audit.py": (
                "def record(path, line):\n"
                "    path.write_text(line)\n"
                "def audit(path, line):\n"
                "    record(path, line)\n"
            ),
            "repro/serve/service.py": (
                "from repro.serve.audit import audit\n"
                "def handle(path, request):\n"
                "    audit(path, request)\n"
            ),
        })
        analysis = analyze_tree(root, root=tmp_path)
        findings = analysis.flow_report.by_rule("SERVE-RO")
        assert len(findings) == 1
        diag = findings[0]
        assert diag.source == "repro/serve/service.py:2"
        assert diag.trace == (
            "repro.serve.service.handle",
            "repro.serve.audit.audit",
            "repro.serve.audit.record",
        )
        assert "fs-write" in diag.message
        assert "snapshots" in diag.fix_hint
        assert diag.baseline_key == (
            "SERVE-RO::repro.serve.service:handle::fs-write"
        )

    def test_snapshot_builders_are_outside_the_zone(self, tmp_path):
        # Building a snapshot may warm the stage cache (a write); only
        # *serving* from one is pinned read-only.
        root = _tree(tmp_path, {
            **self._SERVE_INITS,
            "repro/serve/snapshot.py": (
                "def build(path, data):\n"
                "    path.write_bytes(data)\n"
            ),
            "repro/serve/transcript.py": (
                "def write_transcript(path, lines):\n"
                "    path.write_text(lines)\n"
            ),
        })
        analysis = analyze_tree(root, root=tmp_path)
        assert analysis.flow_report.by_rule("SERVE-RO") == []

    def test_read_only_dispatch_is_fine(self, tmp_path):
        root = _tree(tmp_path, {
            **self._SERVE_INITS,
            "repro/serve/service.py": (
                "def handle(path):\n"
                "    with open(path, 'rb') as handle:\n"
                "        return handle.read()\n"
            ),
        })
        analysis = analyze_tree(root, root=tmp_path)
        assert analysis.flow_report.by_rule("SERVE-RO") == []

    def test_workers_are_in_the_zone(self, tmp_path):
        root = _tree(tmp_path, {
            **self._SERVE_INITS,
            "repro/serve/workers.py": (
                "def run(path, data):\n"
                "    path.write_bytes(data)\n"
            ),
        })
        analysis = analyze_tree(root, root=tmp_path)
        findings = analysis.flow_report.by_rule("SERVE-RO")
        assert [d.baseline_key for d in findings] == [
            "SERVE-RO::repro.serve.workers:run::fs-write"
        ]

    def test_serve_finding_gates_the_exit_code(self, tmp_path):
        from repro.staticlint.runner import FullLintResult

        root = _tree(tmp_path, {
            **self._SERVE_INITS,
            "repro/serve/types.py": (
                "def decode(path, data):\n"
                "    path.write_bytes(data)\n"
            ),
        })
        analysis = analyze_tree(root, root=tmp_path)
        result = FullLintResult(flow_report=analysis.flow_report)
        for diag in analysis.flow_report.diagnostics:
            result.report.add(diag)
        assert [d.rule_id for d in result.report.errors] == ["SERVE-RO"]
        assert result.exit_code == 1


class TestSelfAnalysis:
    @pytest.fixture(scope="class")
    def self_analysis(self):
        return analyze_self()

    def test_repro_determinism_zones_are_clean(self, self_analysis):
        assert self_analysis.flow_report.by_rule("FLOW-DET") == []

    def test_repro_perf_zone_is_clean(self, self_analysis):
        assert self_analysis.flow_report.by_rule("OBS-PERF") == []

    def test_repro_spool_recovery_is_read_only(self, self_analysis):
        assert self_analysis.flow_report.by_rule("SPOOL-RO") == []

    def test_repro_serving_is_read_only(self, self_analysis):
        assert self_analysis.flow_report.by_rule("SERVE-RO") == []

    def test_repro_facade_boundaries_hold(self, self_analysis):
        # repro.api (plus the package facades) is the only sanctioned
        # cross-package import surface for the gated packages.
        assert self_analysis.api_report.by_rule("API-FACADE") == []

    def test_repro_layering_holds(self, self_analysis):
        assert self_analysis.flow_report.by_rule("FLOW-LAYER") == []
        assert self_analysis.flow_report.by_rule("FLOW-CYCLE") == []

    def test_known_hot_path_debt_is_exactly_the_baseline(self, self_analysis):
        keys = sorted(
            d.baseline_key
            for d in self_analysis.flow_report.by_rule("FLOW-ASYNC")
        )
        assert keys == [
            "FLOW-ASYNC::repro.cdp.har:save_har::blocking-io",
            "FLOW-ASYNC::repro.cdp.recorder:SessionRecorder.load::blocking-io",
            "FLOW-ASYNC::repro.cdp.recorder:SessionRecorder.save::blocking-io",
        ]

    def test_single_parse_matches_standalone_linters(self, self_analysis):
        from repro.staticlint.apilint import lint_api_self
        from repro.staticlint.determinism import lint_self

        assert [d.format() for d in self_analysis.det_report.diagnostics] == [
            d.format() for d in lint_self().canonical().diagnostics
        ]
        assert [d.format() for d in self_analysis.api_report.diagnostics] == [
            d.format() for d in lint_api_self().canonical().diagnostics
        ]

    def test_reports_are_byte_stable(self, self_analysis):
        again = analyze_self()
        assert [d.to_json() for d in self_analysis.flow_report.diagnostics] \
            == [d.to_json() for d in again.flow_report.diagnostics]
