"""The diagnostic model: canonical ordering, dedupe, and JSON form."""

import json

from repro.staticlint.diagnostics import Diagnostic, LintReport, Severity


def _diag(source, rule="DET-WALLCLOCK", message="m", **kw):
    return Diagnostic(
        rule_id=rule, severity=Severity.ERROR, source=source,
        message=message, **kw,
    )


class TestSourceParsing:
    def test_file_and_line_split(self):
        diag = _diag("repro/crawler/core.py:42")
        assert diag.file == "repro/crawler/core.py"
        assert diag.line == 42

    def test_source_without_line(self):
        diag = _diag("||ads.example^$websocket")
        assert diag.file == "||ads.example^$websocket"
        assert diag.line == 0


class TestCanonical:
    def test_sorts_by_file_line_rule(self):
        report = LintReport()
        report.add(_diag("repro/b.py:5", rule="DET-RNG"))
        report.add(_diag("repro/a.py:9", rule="FLOW-DET"))
        report.add(_diag("repro/b.py:5", rule="API-PRIVATE"))
        report.add(_diag("repro/a.py:2", rule="DET-WALLCLOCK"))
        ordered = [(d.source, d.rule_id)
                   for d in report.canonical().diagnostics]
        assert ordered == [
            ("repro/a.py:2", "DET-WALLCLOCK"),
            ("repro/a.py:9", "FLOW-DET"),
            ("repro/b.py:5", "API-PRIVATE"),
            ("repro/b.py:5", "DET-RNG"),
        ]

    def test_dedupes_identical_findings(self):
        report = LintReport()
        report.add(_diag("repro/a.py:1"))
        report.add(_diag("repro/a.py:1"))
        report.add(_diag("repro/a.py:1", message="different"))
        assert len(report.canonical()) == 2

    def test_emission_order_never_changes_output(self):
        # The byte-stability pin: any permutation of analyzer emission
        # order canonicalizes to the identical serialized report.
        diags = [
            _diag("repro/c.py:3", rule="FLOW-ASYNC"),
            _diag("repro/a.py:7", rule="DET-RNG"),
            _diag("repro/b.py:1", rule="API-PRIVATE"),
            _diag("repro/a.py:7", rule="DET-ORDER"),
        ]
        forward = LintReport(list(diags))
        backward = LintReport(list(reversed(diags)))
        rotated = LintReport(diags[2:] + diags[:2])
        rendered = [
            json.dumps([d.to_json() for d in r.canonical().diagnostics],
                       sort_keys=True)
            for r in (forward, backward, rotated)
        ]
        assert rendered[0] == rendered[1] == rendered[2]

    def test_canonical_is_idempotent(self):
        report = LintReport()
        report.add(_diag("repro/b.py:2"))
        report.add(_diag("repro/a.py:4"))
        once = report.canonical()
        twice = once.canonical()
        assert [d.to_json() for d in once.diagnostics] == [
            d.to_json() for d in twice.diagnostics
        ]


class TestJsonForm:
    def test_schema_fields(self):
        diag = _diag(
            "repro/crawler/core.py:12",
            rule="FLOW-DET",
            trace=("repro.crawler.core.crawl", "repro.util.helpers.now"),
            baseline_key="FLOW-DET::repro.crawler.core:crawl::wallclock",
        )
        payload = diag.to_json()
        assert payload == {
            "rule": "FLOW-DET",
            "severity": "error",
            "source": "repro/crawler/core.py:12",
            "file": "repro/crawler/core.py",
            "line": 12,
            "message": "m",
            "fix_hint": "",
            "trace": ["repro.crawler.core.crawl", "repro.util.helpers.now"],
            "baseline_key": "FLOW-DET::repro.crawler.core:crawl::wallclock",
        }
        # The object must be JSON-serializable as-is (the --json path).
        assert json.loads(json.dumps(payload)) == payload
