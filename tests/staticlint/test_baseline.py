"""The accepted-violation baseline: ratchet semantics and the gate."""

import json

import pytest

from repro.staticlint.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.staticlint.diagnostics import Diagnostic, LintReport, Severity


def _finding(key, rule="FLOW-ASYNC"):
    return Diagnostic(
        rule_id=rule,
        severity=Severity.ERROR,
        source="repro/x.py:10",
        message=f"finding {key}",
        baseline_key=key,
    )


class TestFileFormat:
    def test_round_trip(self, tmp_path):
        report = LintReport()
        report.add(_finding("FLOW-ASYNC::m:f::blocking-io"))
        report.add(_finding("FLOW-DET::m:g::wallclock", rule="FLOW-DET"))
        path = tmp_path / "baseline.json"
        written = write_baseline(path, report)
        assert load_baseline(path) == written
        assert written == {
            "FLOW-ASYNC::m:f::blocking-io",
            "FLOW-DET::m:g::wallclock",
        }

    def test_file_is_sorted_and_stable(self, tmp_path):
        report = LintReport()
        report.add(_finding("b::key"))
        report.add(_finding("a::key"))
        report.add(_finding("a::key"))  # duplicates collapse
        path = tmp_path / "baseline.json"
        write_baseline(path, report)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["entries"] == ["a::key", "b::key"]
        first = path.read_bytes()
        write_baseline(path, report)
        assert path.read_bytes() == first

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == frozenset()

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"entries": "not-a-list"}', encoding="utf-8")
        with pytest.raises(ValueError, match="malformed"):
            load_baseline(path)

    def test_wrong_format_version_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            '{"baseline_format": 99, "entries": []}', encoding="utf-8"
        )
        with pytest.raises(ValueError):
            load_baseline(path)


class TestRatchet:
    def test_accepted_findings_demote_to_warnings(self):
        report = LintReport()
        report.add(_finding("known::one"))
        report.add(_finding("new::two"))
        adjusted, baselined = apply_baseline(report, frozenset({"known::one"}))
        assert baselined == 1
        by_key = {d.baseline_key: d for d in adjusted.diagnostics}
        assert by_key["known::one"].severity is Severity.WARNING
        assert by_key["known::one"].message.startswith("[baselined]")
        assert by_key["new::two"].severity is Severity.ERROR
        # Only the new violation can fail the gate.
        assert [d.baseline_key for d in adjusted.errors] == ["new::two"]

    def test_unbaselinable_findings_pass_through(self):
        report = LintReport()
        diag = Diagnostic(
            rule_id="DET-WALLCLOCK",
            severity=Severity.ERROR,
            source="repro/x.py:1",
            message="no key",
        )
        report.add(diag)
        adjusted, baselined = apply_baseline(report, frozenset({""}))
        assert baselined == 0
        assert adjusted.diagnostics == [diag]

    def test_stale_entries_are_harmless(self):
        report = LintReport()
        report.add(_finding("present::key"))
        adjusted, baselined = apply_baseline(
            report, frozenset({"present::key", "gone::key"})
        )
        assert baselined == 1
        assert adjusted.errors == []


class TestGateIntegration:
    def test_full_lint_respects_baseline(self):
        from repro.staticlint.runner import run_full_lint

        result = run_full_lint(
            check_lists=False, check_webrequest=False, check_self=True,
            baseline=frozenset(),
        )
        flow_errors = [d for d in result.report.errors
                       if d.rule_id.startswith("FLOW-")]
        if not flow_errors:
            pytest.skip("tree has no FLOW findings to baseline")
        assert result.exit_code == 1

        accepted = frozenset(d.baseline_key for d in flow_errors)
        ratcheted = run_full_lint(
            check_lists=False, check_webrequest=False, check_self=True,
            baseline=accepted,
        )
        assert ratcheted.exit_code == 0
        assert ratcheted.baselined == len(flow_errors)

    def test_committed_baseline_gates_the_repo(self):
        # The default load path must find the committed baseline and
        # the gate must pass on it — this IS the CI invariant.
        from repro.staticlint.runner import run_full_lint

        result = run_full_lint(
            check_lists=False, check_webrequest=False, check_self=True,
        )
        assert result.exit_code == 0
