"""Tests for the webRequest pattern analyzer and its dynamic cross-check."""

import pytest

from repro.filters.parser import parse_filter_list
from repro.net.http import ResourceType
from repro.staticlint.webrequestlint import (
    ListenerVerdict,
    classify_listener,
    cross_validate_receivers,
    cross_validation_report,
    pattern_schemes,
    receiver_companies,
)
from repro.web.filterlists import build_easyprivacy_text, build_filter_lists
from repro.web.registry import default_registry

WS_AWARE = ("http://*", "https://*", "ws://*", "wss://*")
HTTP_ONLY = ("http://*", "https://*")


class TestPatternSchemes:
    def test_all_urls(self):
        assert pattern_schemes("<all_urls>") == {"http", "https", "ws", "wss"}

    def test_wildcard_scheme(self):
        assert pattern_schemes("*://*/*") == {"http", "https", "ws", "wss"}

    def test_explicit_scheme(self):
        assert pattern_schemes("https://*/*") == {"https"}
        assert pattern_schemes("wss://*/*") == {"wss"}

    def test_malformed_pattern(self):
        assert pattern_schemes("not-a-pattern") == frozenset()


class TestClassifyListener:
    def test_pre_58_always_vulnerable(self):
        verdict, report = classify_listener(WS_AWARE, 57)
        assert verdict is ListenerVerdict.VULNERABLE
        assert report.by_rule("WR-WRB")

    def test_58_http_only_is_franken_pitfall(self):
        verdict, report = classify_listener(HTTP_ONLY, 58)
        assert verdict is ListenerVerdict.VULNERABLE
        assert report.by_rule("WR-SCHEME-BLIND")

    def test_58_ws_aware_is_safe(self):
        verdict, report = classify_listener(WS_AWARE, 58)
        assert verdict is ListenerVerdict.SAFE
        assert not report

    def test_partial_coverage(self):
        verdict, report = classify_listener(
            ("https://*", "wss://*"), 58
        )
        assert verdict is ListenerVerdict.PARTIAL
        (diag,) = report.by_rule("WR-PARTIAL")
        assert "ws://" in diag.message

    def test_type_filter_without_websocket(self):
        verdict, report = classify_listener(
            WS_AWARE, 58, resource_types=(ResourceType.SCRIPT,)
        )
        assert verdict is ListenerVerdict.VULNERABLE
        assert report.by_rule("WR-TYPE-BLIND")


@pytest.fixture(scope="module")
def registry():
    return default_registry()


@pytest.fixture(scope="module")
def plain_lists(registry):
    return build_filter_lists(registry)


@pytest.fixture(scope="module")
def ws_rule_lists(registry):
    """EasyPrivacy plus an explicit $websocket rule per receiver — the
    same construction ``bench_wrb.py`` uses for its patched-engine arm,
    but covering every receiver."""
    lines = [build_easyprivacy_text(registry)]
    for company in receiver_companies(registry):
        lines.append(f"||{company.domain}^$websocket")
    return [parse_filter_list("easyprivacy+ws", "\n".join(lines))]


class TestCrossValidation:
    """Acceptance criterion: the static verdict agrees with dynamic
    dispatch for every registry receiver domain, on both sides of the
    Chrome 58 patch, with and without ws-aware patterns."""

    @pytest.mark.parametrize("chrome_major", [57, 58])
    @pytest.mark.parametrize("ws_aware", [True, False])
    def test_plain_lists_agree_everywhere(
        self, plain_lists, registry, chrome_major, ws_aware
    ):
        records = cross_validate_receivers(
            plain_lists, registry, chrome_major, websocket_aware=ws_aware
        )
        assert records
        assert all(r.agree for r in records)
        # No $websocket rules anywhere: nothing is ever blocked.
        assert not any(r.dynamic_blocked for r in records)
        assert not cross_validation_report(records)

    def test_plain_lists_mark_tracked_receivers_blindspot(
        self, plain_lists, registry
    ):
        records = cross_validate_receivers(plain_lists, registry, 58)
        flagged = [r for r in records if r.static_blindspot]
        # All but the untracked handful (receivers the lists never
        # target over HTTP either) are blindspots.
        assert len(flagged) >= len(records) - 2
        assert not any(r.static_blocked for r in records)

    @pytest.mark.parametrize("chrome_major", [57, 58])
    @pytest.mark.parametrize("ws_aware", [True, False])
    def test_ws_rules_agree_everywhere(
        self, ws_rule_lists, registry, chrome_major, ws_aware
    ):
        records = cross_validate_receivers(
            ws_rule_lists, registry, chrome_major, websocket_aware=ws_aware
        )
        assert all(r.agree for r in records)

    def test_ws_rules_block_only_after_patch(self, ws_rule_lists, registry):
        before = cross_validate_receivers(ws_rule_lists, registry, 57)
        after = cross_validate_receivers(ws_rule_lists, registry, 58)
        assert not any(r.dynamic_blocked for r in before)  # WRB swallows all
        assert all(r.dynamic_blocked for r in after)
        assert all(r.static_blocked for r in after)

    def test_http_only_patterns_reopen_hole_post_patch(
        self, ws_rule_lists, registry
    ):
        records = cross_validate_receivers(
            ws_rule_lists, registry, 58, websocket_aware=False
        )
        assert not any(r.dynamic_blocked for r in records)
        assert not any(r.static_blocked for r in records)
        assert all(r.agree for r in records)

    def test_disagreement_produces_xcheck_error(self, ws_rule_lists, registry):
        records = cross_validate_receivers(ws_rule_lists, registry, 58)
        from dataclasses import replace

        tampered = [replace(records[0], dynamic_blocked=not
                            records[0].dynamic_blocked)] + records[1:]
        report = cross_validation_report(tampered)
        (diag,) = report.diagnostics
        assert diag.rule_id == "WR-XCHECK"
        assert diag.source == records[0].domain


class TestReceiverCompanies:
    def test_sorted_and_nonempty(self, registry):
        companies = receiver_companies(registry)
        assert companies
        domains = [c.domain for c in companies]
        assert domains == sorted(domains)

    def test_excludes_first_party_and_tails(self, registry):
        from repro.web.model import FIRST_PARTY

        for company in receiver_companies(registry):
            assert company.key != FIRST_PARTY
            assert not company.key.startswith("TAIL:")
