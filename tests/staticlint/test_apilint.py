"""Tests for the package-boundary (API-PRIVATE) linter."""

import textwrap

from repro.staticlint.apilint import lint_api_self, lint_api_source


PACKAGES = frozenset({"repro", "repro.analysis", "repro.experiments"})


def _lint(path: str, source: str):
    return lint_api_source(path, textwrap.dedent(source),
                           packages=PACKAGES)


def _rules(report):
    return [d.rule_id for d in report.diagnostics]


class TestPrivateModules:
    def test_cross_package_from_import_flagged(self):
        report = _lint(
            "repro/experiments/runner.py",
            "from repro.analysis._codecs import encode_table5\n",
        )
        assert _rules(report) == ["API-PRIVATE"]
        assert "repro.analysis._codecs" in report.diagnostics[0].message
        assert "repro.analysis" in report.diagnostics[0].fix_hint

    def test_cross_package_plain_import_flagged(self):
        report = _lint(
            "repro/cli.py", "import repro.analysis._codecs\n"
        )
        assert _rules(report) == ["API-PRIVATE"]

    def test_private_member_of_package_flagged(self):
        report = _lint(
            "repro/cli.py", "from repro.analysis import _codecs\n"
        )
        assert _rules(report) == ["API-PRIVATE"]
        assert "repro.analysis" in report.diagnostics[0].message

    def test_without_package_knowledge_owner_is_parent(self):
        # No `packages` info: `repro.analysis` is assumed to be a plain
        # module, so `_codecs` is attributed to `repro` and any
        # repro.* importer passes.
        report = lint_api_source(
            "repro/cli.py", "from repro.analysis import _codecs\n"
        )
        assert _rules(report) == []

    def test_same_package_import_allowed(self):
        report = _lint(
            "repro/analysis/table5.py",
            "from repro.analysis._codecs import encode_table5\n",
        )
        assert _rules(report) == []

    def test_subpackage_import_allowed(self):
        report = _lint(
            "repro/analysis/deep/nested.py",
            "from repro.analysis._codecs import encode_table5\n",
        )
        assert _rules(report) == []


class TestPrivateNames:
    def test_private_name_cross_package_flagged(self):
        report = _lint(
            "repro/experiments/runner.py",
            "from repro.analysis.table1 import _coerce_meta\n",
        )
        assert _rules(report) == ["API-PRIVATE"]

    def test_private_name_same_package_allowed(self):
        report = _lint(
            "repro/analysis/figure3.py",
            "from repro.analysis.table1 import _coerce_meta\n",
        )
        assert _rules(report) == []

    def test_dunder_names_are_not_private(self):
        # In-package importer so the facade rule stays out of frame.
        report = _lint(
            "repro/analysis/figure3.py",
            "from repro.analysis.table1 import __doc__\n",
        )
        assert _rules(report) == []

    def test_public_names_pass(self):
        report = _lint(
            "repro/cli.py",
            "from repro.analysis import compute_table1\n",
        )
        assert _rules(report) == []


class TestFacade:
    def test_deep_from_import_flagged(self):
        report = _lint(
            "repro/cli.py",
            "from repro.filters.engine import FilterEngine\n",
        )
        assert _rules(report) == ["API-FACADE"]
        assert "repro.filters" in report.diagnostics[0].fix_hint
        assert "repro.api" in report.diagnostics[0].fix_hint

    def test_deep_plain_import_flagged(self):
        report = _lint(
            "repro/cli.py", "import repro.obs.history\n"
        )
        assert _rules(report) == ["API-FACADE"]

    def test_facade_import_allowed(self):
        report = _lint(
            "repro/cli.py", "from repro.serve import ServeService\n"
        )
        assert _rules(report) == []

    def test_in_package_deep_import_allowed(self):
        report = _lint(
            "repro/serve/service.py",
            "from repro.serve.types import CheckRequest\n",
        )
        assert _rules(report) == []

    def test_ungated_package_deep_import_allowed(self):
        report = _lint(
            "repro/cli.py",
            "from repro.crawler.dataset import StudyDataset\n",
        )
        assert _rules(report) == []

    def test_private_violation_wins_over_facade(self):
        # One finding per import: the sharper private-boundary rule.
        report = _lint(
            "repro/cli.py",
            "from repro.analysis._codecs import encode_table5\n",
        )
        assert _rules(report) == ["API-PRIVATE"]

    def test_pragma_suppresses_facade(self):
        report = _lint(
            "repro/cli.py",
            "from repro.filters.engine import FilterEngine  # api: allow\n",
        )
        assert _rules(report) == []


class TestScope:
    def test_relative_imports_ignored(self):
        report = _lint(
            "repro/analysis/table5.py", "from . import _codecs\n"
        )
        assert _rules(report) == []

    def test_non_repro_modules_ignored(self):
        report = _lint(
            "repro/cli.py", "from collections import _count_elements\n"
        )
        assert _rules(report) == []

    def test_pragma_suppresses(self):
        report = _lint(
            "repro/cli.py",
            "from repro.analysis import _codecs  # api: allow\n",
        )
        assert _rules(report) == []

    def test_syntax_error_reported(self):
        report = _lint("repro/x.py", "def broken(:\n")
        assert _rules(report) == ["API-SYNTAX"]

    def test_package_init_owns_its_package(self):
        report = _lint(
            "repro/analysis/__init__.py",
            "from repro.analysis import _codecs\n",
        )
        assert _rules(report) == []


def test_repro_package_is_clean():
    """The repo's own source must respect its package boundaries."""
    report = lint_api_self()
    assert _rules(report) == []
