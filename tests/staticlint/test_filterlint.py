"""Tests for the filter-list analyzer."""

from repro.filters.parser import parse_filter_list
from repro.net.domains import registrable_domain
from repro.net.http import ResourceType
from repro.staticlint.diagnostics import Severity
from repro.staticlint.filterlint import analyze_filter_lists
from repro.staticlint.probes import (
    THIRD_PARTY_CONTEXT,
    UrlProbe,
    UrlUniverse,
    synthesize_urls,
)
from repro.util.urls import parse_url
from repro.web.filterlists import build_filter_lists
from repro.web.registry import default_registry


def _lists(text: str):
    return [parse_filter_list("test", text)]


def _universe(*probes: UrlProbe) -> UrlUniverse:
    return UrlUniverse(probes=list(probes))


WS = ResourceType.WEBSOCKET
SCRIPT = ResourceType.SCRIPT
IMAGE = ResourceType.IMAGE


class TestDeadRules:
    def test_unmatched_rule_is_dead(self):
        universe = _universe(
            UrlProbe("https://ads.example/banner.js", SCRIPT),
        )
        analysis = analyze_filter_lists(
            _lists("||ads.example^\n||never.example^"), universe=universe
        )
        assert [r.raw for r in analysis.dead] == ["||never.example^"]
        (diag,) = analysis.report.by_rule("FL-DEAD")
        assert diag.severity is Severity.WARNING
        assert "never.example" in diag.message
        assert diag.source == "test:2"

    def test_matching_rule_not_dead(self):
        universe = _universe(
            UrlProbe("https://ads.example/banner.js", SCRIPT),
        )
        analysis = analyze_filter_lists(
            _lists("||ads.example^"), universe=universe
        )
        assert not analysis.dead


class TestShadowedRules:
    def test_later_rule_fully_covered_is_shadowed(self):
        universe = _universe(
            UrlProbe("https://ads.example/banner.js", SCRIPT),
        )
        analysis = analyze_filter_lists(
            _lists("||ads.example^\n||ads.example/banner.js$script"),
            universe=universe,
        )
        assert [r.raw for r in analysis.shadowed] == [
            "||ads.example/banner.js$script"
        ]
        (diag,) = analysis.report.by_rule("FL-SHADOW")
        assert "||ads.example^" in diag.message

    def test_rule_with_unique_probe_not_shadowed(self):
        universe = _universe(
            UrlProbe("https://ads.example/banner.js", SCRIPT),
            UrlProbe("https://ads.example/pixel.gif", IMAGE),
        )
        analysis = analyze_filter_lists(
            _lists("||ads.example/banner.js\n||ads.example^"),
            universe=universe,
        )
        assert not analysis.shadowed

    def test_exception_shadowing_tracked_separately(self):
        # The block rule and the exception match the same probe; the
        # exception is not "shadowed" by the block rule (different
        # polarity), and vice versa.
        universe = _universe(
            UrlProbe("https://ads.example/banner.js", SCRIPT),
        )
        analysis = analyze_filter_lists(
            _lists("||ads.example^\n@@||ads.example/banner.js"),
            universe=universe,
        )
        assert not analysis.shadowed


class TestExceptionDefects:
    def test_exception_rescuing_nothing_is_useless(self):
        universe = _universe(
            UrlProbe("https://cdn.example/lib.js", SCRIPT),
        )
        analysis = analyze_filter_lists(
            _lists("@@||cdn.example/lib.js"), universe=universe
        )
        assert [r.raw for r in analysis.useless_exceptions] == [
            "@@||cdn.example/lib.js"
        ]

    def test_exception_rescuing_blocked_probe_is_useful(self):
        universe = _universe(
            UrlProbe("https://cdn.example/lib.js", SCRIPT),
        )
        analysis = analyze_filter_lists(
            _lists("||cdn.example^\n@@||cdn.example/lib.js"),
            universe=universe,
        )
        assert not analysis.useless_exceptions
        assert analysis.blocked == [False]

    def test_duplicate_exception_coverage_flagged(self):
        universe = _universe(
            UrlProbe("https://cdn.example/lib.js", SCRIPT),
        )
        analysis = analyze_filter_lists(
            _lists(
                "||cdn.example^\n"
                "@@||cdn.example/lib.js\n"
                "@@||cdn.example/lib.js$script"
            ),
            universe=universe,
        )
        assert [r.raw for r in analysis.duplicate_exceptions] == [
            "@@||cdn.example/lib.js$script"
        ]
        (diag,) = analysis.report.by_rule("FL-EXC-DUP")
        assert diag.severity is Severity.INFO


class TestWebSocketBlindspots:
    def test_http_blocked_ws_open_is_blindspot(self):
        universe = _universe(
            UrlProbe("https://px.tracker.example/collect", ResourceType.XHR),
            UrlProbe("wss://ws.tracker.example/socket", WS),
        )
        analysis = analyze_filter_lists(
            _lists("||tracker.example/collect^"), universe=universe
        )
        assert analysis.blindspot_domains == ["tracker.example"]
        (diag,) = analysis.report.by_rule("FL-WS-BLINDSPOT")
        assert diag.fix_hint == "add ||tracker.example^$websocket"

    def test_websocket_rule_closes_blindspot(self):
        universe = _universe(
            UrlProbe("https://px.tracker.example/collect", ResourceType.XHR),
            UrlProbe("wss://ws.tracker.example/socket", WS),
        )
        analysis = analyze_filter_lists(
            _lists("||tracker.example/collect^\n||tracker.example^$websocket"),
            universe=universe,
        )
        assert analysis.blindspot_domains == []
        assert analysis.ws_covered_domains == ["tracker.example"]

    def test_untyped_host_anchor_covers_ws(self):
        # DEFAULT_TYPES includes WEBSOCKET, so a bare host anchor blocks
        # the handshake too — no blindspot.
        universe = _universe(
            UrlProbe("https://px.tracker.example/collect", ResourceType.XHR),
            UrlProbe("wss://ws.tracker.example/socket", WS),
        )
        analysis = analyze_filter_lists(
            _lists("||tracker.example^"), universe=universe
        )
        assert analysis.blindspot_domains == []

    def test_domain_without_ws_probe_not_flagged(self):
        universe = _universe(
            UrlProbe("https://px.tracker.example/collect", ResourceType.XHR),
        )
        analysis = analyze_filter_lists(
            _lists("||tracker.example/collect^"), universe=universe
        )
        assert analysis.blindspot_domains == []


class TestBundledLists:
    """The acceptance criterion: the bundled synthetic lists must
    produce at least three diagnostic categories."""

    def test_bundled_lists_report_three_plus_categories(self):
        registry = default_registry()
        analysis = analyze_filter_lists(
            build_filter_lists(registry), registry=registry
        )
        assert len(analysis.report.categories) >= 3
        assert "FL-WS-BLINDSPOT" in analysis.report.categories

    def test_tracked_receivers_are_blindspots_without_websocket_rules(self):
        # The bundled lists carry no $websocket rules: every receiver
        # the lists otherwise target (any blocked HTTP probe) has a
        # handshake that escapes them — the paper's §5 finding. A
        # receiver the lists ignore entirely (e.g. a sports site that
        # happens to accept sockets) is not a blindspot.
        registry = default_registry()
        analysis = analyze_filter_lists(
            build_filter_lists(registry), registry=registry
        )
        blindspots = set(analysis.blindspot_domains)
        http_blocked = {
            registrable_domain(parse_url(probe.url).host)
            for probe, blocked in zip(
                analysis.universe.probes, analysis.blocked
            )
            if blocked and not probe.is_websocket
        }
        from repro.staticlint.webrequestlint import receiver_companies

        receivers = receiver_companies(registry)
        tracked = [c for c in receivers if c.domain in http_blocked]
        assert tracked  # most receivers are trackers the lists target
        for company in tracked:
            assert company.domain in blindspots
        assert not any(c.domain in analysis.ws_covered_domains
                       for c in receivers)


class TestProbeUniverse:
    def test_registry_universe_has_ws_probes_per_company(self):
        registry = default_registry()
        universe = UrlUniverse.from_registry(registry)
        ws_urls = {p.url for p in universe.websocket_probes()}
        company = next(iter(sorted(
            registry.companies.values(), key=lambda c: c.domain
        )))
        assert f"wss://{company.resolved_ws_host()}/socket" in ws_urls

    def test_untyped_rule_synthesizes_no_ws_probe(self):
        (rule,) = _lists("||tracker.example/collect^")[0].rules
        assert not any(
            url.startswith("wss://") for url in synthesize_urls(rule)
        )

    def test_websocket_rule_synthesizes_ws_probe(self):
        (rule,) = _lists("||tracker.example^$websocket")[0].rules
        assert any(url.startswith("wss://") for url in synthesize_urls(rule))

    def test_probes_deduplicated(self):
        lists = _lists("||a.example^\n||a.example^$script")
        universe = UrlUniverse.from_rules(lists)
        keys = [(p.url, p.resource_type, p.first_party_url)
                for p in universe.probes]
        assert len(keys) == len(set(keys))

    def test_default_context_is_third_party(self):
        probe = UrlProbe("https://ads.example/x.js", SCRIPT)
        assert probe.first_party_url == THIRD_PARTY_CONTEXT
        assert not probe.is_websocket
