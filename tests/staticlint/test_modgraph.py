"""The single-parse extraction core and the cross-module linker."""

from repro.staticlint.determinism import lint_source_text
from repro.staticlint.effects import (
    BLOCKING_IO,
    FS_WRITE,
    GLOBAL_MUTATE,
    RNG,
    WALLCLOCK,
)
from repro.staticlint.modgraph import (
    MODULE_BODY,
    FileFacts,
    build_graph,
    extract_file_facts,
    source_sha256,
)


def _seeded(facts, qual):
    return {s.effect for s in facts.functions[qual].seeds}


def _call_targets(facts, qual):
    return [(c.kind, c.target) for c in facts.functions[qual].calls]


class TestExtraction:
    def test_defs_and_direct_seeds(self):
        facts = extract_file_facts("repro/x.py", (
            "import time\n"
            "import random\n"
            "def slow():\n"
            "    return time.time()\n"
            "def draw():\n"
            "    return random.random()\n"
        ))
        assert facts.module == "repro.x"
        assert _seeded(facts, "slow") == {WALLCLOCK}
        assert _seeded(facts, "draw") == {RNG}
        assert ("dotted", "time.time") in _call_targets(facts, "slow")

    def test_from_import_binding_resolves(self):
        facts = extract_file_facts("repro/x.py", (
            "from time import monotonic\n"
            "def tick():\n"
            "    return monotonic()\n"
        ))
        assert _seeded(facts, "tick") == {WALLCLOCK}

    def test_import_alias_resolves(self):
        facts = extract_file_facts("repro/x.py", (
            "import subprocess as sp\n"
            "def run():\n"
            "    sp.run(['ls'])\n"
        ))
        assert BLOCKING_IO in _seeded(facts, "run")

    def test_open_modes_and_builtins(self):
        facts = extract_file_facts("repro/x.py", (
            "def reader(p):\n"
            "    with open(p) as f:\n"
            "        return f.read()\n"
            "def writer(p):\n"
            "    p.open('w').write('x')\n"
        ))
        assert _seeded(facts, "reader") == {BLOCKING_IO}
        assert _seeded(facts, "writer") == {BLOCKING_IO, FS_WRITE}

    def test_pathlib_verbs_seed_without_receiver_type(self):
        facts = extract_file_facts("repro/x.py", (
            "def dump(path, text):\n"
            "    path.parent.mkdir(parents=True, exist_ok=True)\n"
            "    path.write_text(text)\n"
        ))
        assert _seeded(facts, "dump") == {BLOCKING_IO, FS_WRITE}

    def test_generic_method_names_do_not_seed(self):
        # .send()/.read()/.recv() also live on the simulated network
        # stack; seeding them would poison the whole simulator.
        facts = extract_file_facts("repro/x.py", (
            "def pump(sock, frame):\n"
            "    sock.send(frame)\n"
            "    return sock.recv()\n"
        ))
        assert _seeded(facts, "pump") == set()

    def test_global_statement_seeds_mutation(self):
        facts = extract_file_facts("repro/x.py", (
            "_COUNT = 0\n"
            "def bump():\n"
            "    global _COUNT\n"
            "    _COUNT += 1\n"
        ))
        assert _seeded(facts, "bump") == {GLOBAL_MUTATE}

    def test_methods_and_self_calls(self):
        facts = extract_file_facts("repro/x.py", (
            "class Crawler:\n"
            "    def crawl(self):\n"
            "        self.step()\n"
            "    def step(self):\n"
            "        pass\n"
        ))
        assert ("local", "Crawler.step") in _call_targets(facts, "Crawler.crawl")
        assert facts.classes == {"Crawler": ["crawl", "step"]}

    def test_nested_def_gets_parent_edge(self):
        facts = extract_file_facts("repro/x.py", (
            "import time\n"
            "def outer():\n"
            "    def inner():\n"
            "        return time.time()\n"
            "    return inner\n"
        ))
        assert ("local", "outer.inner") in _call_targets(facts, "outer")
        assert _seeded(facts, "outer.inner") == {WALLCLOCK}

    def test_module_body_is_a_node(self):
        facts = extract_file_facts("repro/x.py", "import time\ntime.time()\n")
        assert _seeded(facts, MODULE_BODY) == {WALLCLOCK}

    def test_syntax_error_yields_det_syntax(self):
        facts = extract_file_facts("repro/x.py", "def broken(:\n")
        assert [d.rule_id for d in facts.det] == ["DET-SYNTAX"]

    def test_det_diagnostics_match_standalone_linter(self):
        # The combined walk must produce byte-identical DET findings to
        # the standalone determinism linter: same visitor, one parse.
        source = (
            "import time\n"
            "def f(d):\n"
            "    t = time.time()\n"
            "    for k in d.keys():\n"
            "        print(k)\n"
            "    return t\n"
        )
        combined = extract_file_facts("repro/x.py", source).det
        standalone = lint_source_text("repro/x.py", source).diagnostics
        assert [d.format() for d in combined] == [
            d.format() for d in standalone
        ]
        assert combined  # the fixture must actually trip a rule

    def test_json_round_trip(self):
        facts = extract_file_facts("repro/pkg/__init__.py", (
            "from repro.pkg.impl import helper\n"
            "import time\n"
            "def entry():\n"
            "    helper()\n"
            "    return time.time()\n"
        ))
        clone = FileFacts.from_json(facts.to_json())
        assert clone.to_json() == facts.to_json()
        assert clone.is_package
        assert clone.sha256 == facts.sha256

    def test_sha_changes_with_source(self):
        assert source_sha256("a = 1\n") != source_sha256("a = 2\n")


def _graph(files):
    return build_graph(
        [extract_file_facts(path, source) for path, source in files.items()]
    )


class TestLinker:
    def test_cross_module_from_import(self):
        graph = _graph({
            "repro/__init__.py": "",
            "repro/a.py": (
                "from repro.b import helper\n"
                "def caller():\n"
                "    helper()\n"
            ),
            "repro/b.py": "def helper():\n    pass\n",
        })
        assert "repro.b:helper" in graph.calls["repro.a:caller"]

    def test_module_attribute_call(self):
        graph = _graph({
            "repro/__init__.py": "",
            "repro/a.py": (
                "from repro import b\n"
                "def caller():\n"
                "    b.helper()\n"
            ),
            "repro/b.py": "def helper():\n    pass\n",
        })
        assert "repro.b:helper" in graph.calls["repro.a:caller"]

    def test_reexport_chain_through_init(self):
        graph = _graph({
            "repro/__init__.py": "",
            "repro/pkg/__init__.py": "from repro.pkg.impl import helper\n",
            "repro/pkg/impl.py": "def helper():\n    pass\n",
            "repro/a.py": (
                "from repro.pkg import helper\n"
                "def caller():\n"
                "    helper()\n"
            ),
        })
        assert "repro.pkg.impl:helper" in graph.calls["repro.a:caller"]

    def test_class_instantiation_links_init(self):
        graph = _graph({
            "repro/__init__.py": "",
            "repro/a.py": (
                "from repro.b import Widget\n"
                "def make():\n"
                "    return Widget()\n"
            ),
            "repro/b.py": (
                "class Widget:\n"
                "    def __init__(self):\n"
                "        pass\n"
            ),
        })
        assert "repro.b:Widget.__init__" in graph.calls["repro.a:make"]

    def test_unique_method_name_fallback(self):
        graph = _graph({
            "repro/__init__.py": "",
            "repro/a.py": (
                "def caller(writer):\n"
                "    writer.flush_frames()\n"
            ),
            "repro/b.py": (
                "class W:\n"
                "    def flush_frames(self):\n"
                "        pass\n"
            ),
        })
        assert "repro.b:W.flush_frames" in graph.calls["repro.a:caller"]

    def test_ambiguous_method_name_is_dropped(self):
        graph = _graph({
            "repro/__init__.py": "",
            "repro/a.py": "def caller(x):\n    x.step()\n",
            "repro/b.py": "class B:\n    def step(self):\n        pass\n",
            "repro/c.py": "class C:\n    def step(self):\n        pass\n",
        })
        assert graph.calls["repro.a:caller"] == ()

    def test_stdlib_calls_make_no_edges(self):
        graph = _graph({
            "repro/__init__.py": "",
            "repro/a.py": (
                "import json\n"
                "def caller(x):\n"
                "    return json.dumps(x)\n"
            ),
        })
        assert graph.calls["repro.a:caller"] == ()

    def test_module_import_graph_and_relative_imports(self):
        graph = _graph({
            "repro/__init__.py": "",
            "repro/pkg/__init__.py": "",
            "repro/pkg/a.py": "from . import b\nfrom repro import util\n",
            "repro/pkg/b.py": "",
            "repro/util.py": "",
        })
        targets = [t for t, _ in graph.module_imports["repro.pkg.a"]]
        assert "repro.pkg.b" in targets
        assert "repro.util" in targets

    def test_edges_are_sorted_and_deduped(self):
        graph = _graph({
            "repro/__init__.py": "",
            "repro/a.py": (
                "from repro.b import helper\n"
                "def caller():\n"
                "    helper()\n"
                "    helper()\n"
            ),
            "repro/b.py": "def helper():\n    pass\n",
        })
        edges = graph.calls["repro.a:caller"]
        assert edges == tuple(sorted(set(edges)))
        assert edges.count("repro.b:helper") == 1
