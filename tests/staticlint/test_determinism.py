"""Tests for the determinism (calibration-contract) linter."""

import textwrap

from repro.staticlint.determinism import lint_paths, lint_self, lint_source_text


def _lint(source: str, exempt_entropy: bool = False,
          exempt_perf: bool = False):
    return lint_source_text(
        "mod.py", textwrap.dedent(source), exempt_entropy=exempt_entropy,
        exempt_perf=exempt_perf,
    )


def _rules(report):
    return [d.rule_id for d in report.diagnostics]


class TestWallclock:
    def test_time_time(self):
        report = _lint("import time\nstamp = time.time()\n")
        assert _rules(report) == ["DET-WALLCLOCK"]
        assert report.diagnostics[0].source == "mod.py:2"

    def test_time_module_alias(self):
        report = _lint("import time as t\nstamp = t.localtime()\n")
        assert _rules(report) == ["DET-WALLCLOCK"]

    def test_direct_from_import(self):
        report = _lint("from time import time_ns\nx = time_ns()\n")
        assert _rules(report) == ["DET-WALLCLOCK"]

    def test_datetime_now(self):
        report = _lint("from datetime import datetime\nd = datetime.now()\n")
        assert _rules(report) == ["DET-WALLCLOCK"]

    def test_date_today_via_module(self):
        report = _lint("import datetime\nd = datetime.date.today()\n")
        assert _rules(report) == ["DET-WALLCLOCK"]

    def test_simclock_usage_clean(self):
        report = _lint(
            "from repro.util.simtime import SimClock\n"
            "clock = SimClock()\nstamp = clock.now()\n"
        )
        assert not report

    def test_unrelated_now_method_clean(self):
        report = _lint("d = cursor.now()\n")
        assert not report


class TestObsClock:
    def test_perf_counter(self):
        report = _lint("import time\nt0 = time.perf_counter()\n")
        assert _rules(report) == ["DET-OBS"]
        assert "obsclock" in report.diagnostics[0].fix_hint

    def test_monotonic_via_alias(self):
        report = _lint("import time as t\nstamp = t.monotonic()\n")
        assert _rules(report) == ["DET-OBS"]

    def test_direct_from_import(self):
        report = _lint("from time import perf_counter\nx = perf_counter()\n")
        assert _rules(report) == ["DET-OBS"]

    def test_perf_counter_ns(self):
        report = _lint("import time\nt0 = time.perf_counter_ns()\n")
        assert _rules(report) == ["DET-OBS"]

    def test_exempt_perf_for_obs_clock(self):
        report = _lint(
            "import time\nt0 = time.perf_counter_ns()\n", exempt_perf=True
        )
        assert not report

    def test_exempt_perf_never_covers_wallclock(self):
        report = _lint("import time\nx = time.time()\n", exempt_perf=True)
        assert _rules(report) == ["DET-WALLCLOCK"]

    def test_tick_clock_usage_clean(self):
        report = _lint(
            "from repro.util.obsclock import TickClock\n"
            "clock = TickClock()\nt = clock.tick()\n"
        )
        assert not report


class TestRandom:
    def test_import_random(self):
        assert _rules(_lint("import random\n")) == ["DET-RANDOM"]

    def test_from_random_import(self):
        assert _rules(_lint("from random import choice\n")) == ["DET-RANDOM"]

    def test_import_secrets(self):
        assert _rules(_lint("import secrets\n")) == ["DET-RANDOM"]

    def test_uuid4(self):
        report = _lint("import uuid\nx = uuid.uuid4()\n")
        assert _rules(report) == ["DET-RANDOM"]

    def test_uuid5_is_deterministic_and_clean(self):
        report = _lint(
            "import uuid\nx = uuid.uuid5(uuid.NAMESPACE_URL, 'a')\n"
        )
        assert not report

    def test_os_urandom(self):
        report = _lint("import os\nx = os.urandom(8)\n")
        assert _rules(report) == ["DET-RANDOM"]

    def test_exempt_entropy_for_util_wrappers(self):
        report = _lint("import random\n", exempt_entropy=True)
        assert not report

    def test_exemption_never_covers_wallclock(self):
        report = _lint(
            "import time\nx = time.time()\n", exempt_entropy=True
        )
        assert _rules(report) == ["DET-WALLCLOCK"]


class TestOrder:
    def test_for_over_set_literal(self):
        assert _rules(_lint("for x in {1, 2}:\n    pass\n")) == ["DET-ORDER"]

    def test_for_over_set_call(self):
        assert _rules(_lint("for x in set(items):\n    pass\n")) == [
            "DET-ORDER"
        ]

    def test_comprehension_over_set_union(self):
        report = _lint("out = [x for x in set(a) | set(b)]\n")
        assert _rules(report) == ["DET-ORDER"]

    def test_list_of_set(self):
        assert _rules(_lint("out = list(set(items))\n")) == ["DET-ORDER"]

    def test_builtin_hash(self):
        assert _rules(_lint("h = hash(name)\n")) == ["DET-ORDER"]

    def test_os_listdir(self):
        report = _lint("import os\nnames = os.listdir('.')\n")
        assert _rules(report) == ["DET-ORDER"]

    def test_sorted_set_clean(self):
        assert not _lint("for x in sorted({1, 2}):\n    pass\n")

    def test_for_over_list_clean(self):
        assert not _lint("for x in [1, 2]:\n    pass\n")

    def test_dict_iteration_clean(self):
        # Dicts preserve insertion order; only sets are flagged.
        assert not _lint("for k in {'a': 1}:\n    pass\n")


class TestPragmaAndSyntax:
    def test_pragma_suppresses(self):
        report = _lint(
            "import time\nx = time.time()  # det: allow\n"
        )
        assert not report

    def test_syntax_error_reported(self):
        report = _lint("def broken(:\n")
        assert _rules(report) == ["DET-SYNTAX"]

    def test_multiple_findings_ordered_by_line(self):
        report = _lint(
            "import time\nimport random\nx = time.time()\n"
        )
        assert _rules(report) == ["DET-RANDOM", "DET-WALLCLOCK"]


class TestFaultRule:
    def _lint_fault(self, source):
        return lint_source_text("faults/mod.py", textwrap.dedent(source),
                                fault_module=True)

    def test_import_time_forbidden_in_fault_modules(self):
        report = self._lint_fault("import time\n")
        assert _rules(report) == ["DET-FAULT"]

    def test_import_datetime_forbidden_in_fault_modules(self):
        report = self._lint_fault("import datetime\n")
        assert _rules(report) == ["DET-FAULT"]

    def test_from_import_forbidden_in_fault_modules(self):
        report = self._lint_fault("from datetime import timedelta\n")
        assert _rules(report) == ["DET-FAULT"]

    def test_random_reports_fault_not_double_counted(self):
        report = self._lint_fault("import random\n")
        assert _rules(report) == ["DET-FAULT"]  # not DET-RANDOM too

    def test_submodule_import_forbidden(self):
        report = self._lint_fault("from random import Random\n")
        assert _rules(report) == ["DET-FAULT"]

    def test_sanctioned_lanes_are_clean(self):
        report = self._lint_fault(
            "from repro.util.rng import RngStream\n"
            "from repro.util.simtime import SimClock\n"
        )
        assert not report

    def test_ordinary_modules_keep_the_narrow_rules(self):
        """Outside repro/faults, `import time` alone is fine."""
        report = _lint("import time\n")
        assert not report


class TestPathLinting:
    def test_fault_paths_get_strict_rule(self, tmp_path):
        fault_dir = tmp_path / "pkg" / "faults"
        fault_dir.mkdir(parents=True)
        inject = fault_dir / "injector.py"
        inject.write_text("import datetime\n", encoding="utf-8")
        other = tmp_path / "pkg" / "core.py"
        other.write_text("import datetime\n", encoding="utf-8")
        report = lint_paths([inject, other], root=tmp_path)
        assert [(d.source, d.rule_id) for d in report.diagnostics] == [
            ("pkg/faults/injector.py:1", "DET-FAULT"),
        ]

    def test_util_paths_exempt_entropy(self, tmp_path):
        util_dir = tmp_path / "pkg" / "util"
        util_dir.mkdir(parents=True)
        wrapper = util_dir / "rng.py"
        wrapper.write_text("import random\n", encoding="utf-8")
        other = tmp_path / "pkg" / "core.py"
        other.write_text("import random\n", encoding="utf-8")
        report = lint_paths([wrapper, other], root=tmp_path)
        assert [d.source for d in report.diagnostics] == ["pkg/core.py:1"]

    def test_self_lint_is_clean(self):
        """The CI gate: src/repro honors its own determinism contract."""
        report = lint_self()
        assert not report.errors
        assert not report
