"""Property tests: the analyzer's removal-safety claims hold on the engine.

A rule the analyzer reports as *shadowed* (or *dead*) is one whose
removal changes no decision. Because every judgement is grounded in the
finite probe universe, the claim is directly checkable: rebuild the
engine without the rule and re-match every probe.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters.engine import FilterEngine
from repro.filters.parser import parse_filter_list
from repro.staticlint.filterlint import analyze_filter_lists
from repro.staticlint.probes import UrlUniverse

_HOSTS = ("ads.example", "track.example", "cdn.example")
_PATHS = ("", "/banner", "/collect", "/pixel.gif", "/lib.js")
_OPTIONS = ("", "$script", "$image", "$third-party", "$websocket",
            "$script,third-party", "$domain=site.example")


@st.composite
def filter_lines(draw):
    host = draw(st.sampled_from(_HOSTS))
    path = draw(st.sampled_from(_PATHS))
    option = draw(st.sampled_from(_OPTIONS))
    anchor = draw(st.sampled_from(("||", "")))
    if anchor:
        pattern = f"||{host}{path}^" if path else f"||{host}^"
    else:
        pattern = path or "/banner"
    exception = draw(st.booleans())
    return ("@@" if exception else "") + pattern + option


@st.composite
def rule_sets(draw):
    lines = draw(st.lists(filter_lines(), min_size=1, max_size=8))
    return parse_filter_list("prop", "\n".join(lines))


def _decisions(lists, universe: UrlUniverse) -> list[bool]:
    engine = FilterEngine(lists)
    return [
        engine.would_block(
            probe.url, probe.resource_type, probe.first_party_url
        )
        for probe in universe.probes
    ]


def _without(filter_list, removed):
    text = "\n".join(
        rule.raw for rule in filter_list.rules if rule is not removed
    )
    return parse_filter_list(filter_list.name, text)


@given(rule_sets())
@settings(max_examples=60, deadline=None)
def test_removing_a_shadowed_rule_changes_no_decision(filter_list):
    universe = UrlUniverse.from_rules([filter_list])
    analysis = analyze_filter_lists([filter_list], universe=universe)
    baseline = _decisions([filter_list], universe)
    for rule in analysis.shadowed:
        reduced = _without(filter_list, rule)
        assert _decisions([reduced], universe) == baseline, (
            f"removing shadowed rule {rule.raw!r} changed a decision"
        )


@given(rule_sets())
@settings(max_examples=60, deadline=None)
def test_removing_a_dead_rule_changes_no_decision(filter_list):
    universe = UrlUniverse.from_rules([filter_list])
    analysis = analyze_filter_lists([filter_list], universe=universe)
    baseline = _decisions([filter_list], universe)
    for rule in analysis.dead:
        reduced = _without(filter_list, rule)
        assert _decisions([reduced], universe) == baseline, (
            f"removing dead rule {rule.raw!r} changed a decision"
        )


@given(rule_sets())
@settings(max_examples=60, deadline=None)
def test_analyzer_blocked_agrees_with_engine(filter_list):
    """The analyzer's per-probe decision is the engine's decision."""
    universe = UrlUniverse.from_rules([filter_list])
    analysis = analyze_filter_lists([filter_list], universe=universe)
    assert analysis.blocked == _decisions([filter_list], universe)
