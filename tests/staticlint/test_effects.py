"""The effect lattice: seed tables and the fixpoint's algebraic laws.

The two hypothesis properties pin the claims the docstring of
:func:`repro.staticlint.effects.propagate` makes: the fixpoint is the
*least* fixpoint, so it is independent of worklist order, and the
transfer function is monotone, so adding a call edge can only grow
(never shrink) any node's effect set.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.staticlint.effects import (
    ALL_EFFECTS,
    BLOCKING_IO,
    FS_WRITE,
    RNG,
    SUBPROCESS,
    WALLCLOCK,
    open_mode_effects,
    propagate,
    seed_for_call,
)


class TestSeedTables:
    def test_exact_calls(self):
        assert seed_for_call("time.time") == {WALLCLOCK}
        assert seed_for_call("time.monotonic") == {WALLCLOCK}
        assert seed_for_call("datetime.datetime.now") == {WALLCLOCK}
        assert seed_for_call("uuid.uuid4") == {RNG}
        assert seed_for_call("builtins.open") == {BLOCKING_IO}
        assert seed_for_call("os.makedirs") == {BLOCKING_IO, FS_WRITE}
        assert seed_for_call("os.system") == {BLOCKING_IO, SUBPROCESS}

    def test_prefix_families(self):
        assert seed_for_call("random.randint") == {RNG}
        assert seed_for_call("secrets.token_hex") == {RNG}
        assert seed_for_call("socket.create_connection") == {BLOCKING_IO}
        assert seed_for_call("subprocess.run") == {BLOCKING_IO, SUBPROCESS}
        assert seed_for_call("shutil.rmtree") == {BLOCKING_IO, FS_WRITE}

    def test_unknown_calls_are_effect_free(self):
        assert seed_for_call("json.dumps") == frozenset()
        assert seed_for_call("repro.util.rng.RngStream") == frozenset()

    def test_print_is_deliberately_unflagged(self):
        assert seed_for_call("builtins.print") == frozenset()

    def test_open_modes(self):
        assert open_mode_effects("r") == {BLOCKING_IO}
        assert open_mode_effects("rb") == {BLOCKING_IO}
        for mode in ("w", "a", "x", "r+", "wb"):
            assert open_mode_effects(mode) == {BLOCKING_IO, FS_WRITE}


class TestPropagate:
    def test_linear_chain(self):
        seeds = {"c": {WALLCLOCK}}
        calls = {"a": ["b"], "b": ["c"]}
        effects = propagate(seeds, calls)
        assert effects["a"] == {WALLCLOCK}
        assert effects["b"] == {WALLCLOCK}
        assert effects["c"] == {WALLCLOCK}

    def test_cycle_converges(self):
        seeds = {"a": {RNG}}
        calls = {"a": ["b"], "b": ["a"]}
        effects = propagate(seeds, calls)
        assert effects == {"a": frozenset({RNG}), "b": frozenset({RNG})}

    def test_mask_stops_effects_at_boundary(self):
        seeds = {"sanctioned": {WALLCLOCK, BLOCKING_IO}}
        calls = {"zone": ["sanctioned"]}

        def mask(callee, effects):
            if callee == "sanctioned":
                return effects - {WALLCLOCK}
            return effects

        effects = propagate(seeds, calls, mask=mask)
        # wallclock is absorbed at the boundary; blocking-io still flows.
        assert effects["zone"] == {BLOCKING_IO}
        assert effects["sanctioned"] == {WALLCLOCK, BLOCKING_IO}

    def test_unknown_callees_contribute_nothing(self):
        effects = propagate({"a": {RNG}}, {"a": ["missing.node"]})
        assert effects["a"] == {RNG}
        assert "missing.node" not in effects


# -- property tests --------------------------------------------------------

_NODE_NAMES = tuple(f"n{i}" for i in range(8))


@st.composite
def graphs(draw):
    """A random seeded call graph over a small node universe."""
    nodes = list(_NODE_NAMES[: draw(st.integers(min_value=2, max_value=8))])
    seeds = {}
    calls = {}
    for node in nodes:
        effect_set = draw(st.sets(st.sampled_from(ALL_EFFECTS), max_size=3))
        if effect_set:
            seeds[node] = frozenset(effect_set)
        callees = draw(st.sets(st.sampled_from(nodes), max_size=3))
        calls[node] = sorted(callees - {node})
    return nodes, seeds, calls


@given(graphs(), st.randoms(use_true_random=False))
@settings(max_examples=80, deadline=None)
def test_fixpoint_is_order_independent(graph, rng):
    """Any worklist permutation yields the identical least fixpoint."""
    nodes, seeds, calls = graph
    baseline = propagate(seeds, calls)
    shuffled = list(nodes)
    rng.shuffle(shuffled)
    assert propagate(seeds, calls, order=shuffled) == baseline
    # Reversed order too, for good measure.
    assert propagate(seeds, calls, order=list(reversed(nodes))) == baseline


@given(graphs(), st.data())
@settings(max_examples=80, deadline=None)
def test_fixpoint_is_monotone_in_edges(graph, data):
    """Adding one call edge never removes an effect from any node."""
    nodes, seeds, calls = graph
    before = propagate(seeds, calls)
    src = data.draw(st.sampled_from(nodes), label="edge source")
    dst = data.draw(st.sampled_from(nodes), label="edge target")
    grown = {n: sorted(set(cs) | ({dst} if n == src else set()))
             for n, cs in calls.items()}
    after = propagate(seeds, grown)
    for node in nodes:
        assert before[node] <= after[node], node


@given(graphs())
@settings(max_examples=80, deadline=None)
def test_fixpoint_is_monotone_in_seeds(graph):
    """Adding a seed effect never removes an effect elsewhere."""
    nodes, seeds, calls = graph
    before = propagate(seeds, calls)
    grown_seeds = dict(seeds)
    grown_seeds[nodes[0]] = frozenset(
        grown_seeds.get(nodes[0], frozenset())
    ) | {WALLCLOCK}
    after = propagate(grown_seeds, calls)
    for node in nodes:
        assert before[node] <= after[node], node
