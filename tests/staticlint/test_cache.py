"""The content-addressed facts cache: warm runs re-parse nothing."""

import json

from repro.staticlint.cache import FactsCache, facts_key
from repro.staticlint.flow import analyze_tree, scan_tree
from repro.staticlint.modgraph import extract_file_facts


def _tree(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return tmp_path / "repro"


_FILES = {
    "repro/__init__.py": "",
    "repro/util/__init__.py": "",
    "repro/util/helpers.py": (
        "import time\n"
        "def now():\n"
        "    return time.time()\n"
    ),
    "repro/crawler/__init__.py": "",
    "repro/crawler/core.py": (
        "from repro.util.helpers import now\n"
        "def crawl():\n"
        "    return now()\n"
    ),
}


class TestScanCaching:
    def test_cold_scan_parses_everything(self, tmp_path):
        root = _tree(tmp_path, _FILES)
        cache = FactsCache(tmp_path / "cache")
        _, parsed, cached = scan_tree(root, tmp_path, cache)
        assert parsed == len(_FILES)
        assert cached == 0

    def test_warm_scan_parses_nothing(self, tmp_path):
        root = _tree(tmp_path, _FILES)
        cache = FactsCache(tmp_path / "cache")
        scan_tree(root, tmp_path, cache)
        facts, parsed, cached = scan_tree(root, tmp_path, cache)
        assert parsed == 0
        assert cached == len(_FILES)
        assert sorted(f.module for f in facts) == sorted(
            f.module for f in scan_tree(root, tmp_path, None)[0]
        )

    def test_editing_one_file_reparses_only_it(self, tmp_path):
        root = _tree(tmp_path, _FILES)
        cache = FactsCache(tmp_path / "cache")
        scan_tree(root, tmp_path, cache)
        (root / "crawler/core.py").write_text(
            "def crawl():\n    return 1\n", encoding="utf-8"
        )
        _, parsed, cached = scan_tree(root, tmp_path, cache)
        assert parsed == 1
        assert cached == len(_FILES) - 1

    def test_warm_analysis_is_identical_to_cold(self, tmp_path):
        root = _tree(tmp_path, _FILES)
        cache = FactsCache(tmp_path / "cache")
        cold = analyze_tree(root, root=tmp_path, cache=cache)
        warm = analyze_tree(root, root=tmp_path, cache=cache)
        assert warm.parsed_files == 0
        assert warm.cached_files == len(_FILES)
        assert [d.to_json() for d in warm.flow_report.diagnostics] == [
            d.to_json() for d in cold.flow_report.diagnostics
        ]
        assert warm.effects == cold.effects


class TestCacheIntegrity:
    def test_round_trip(self, tmp_path):
        cache = FactsCache(tmp_path)
        facts = extract_file_facts(
            "repro/x.py", "import time\ndef f():\n    return time.time()\n"
        )
        cache.store(facts)
        loaded = cache.load(facts.path, facts.sha256)
        assert loaded is not None
        assert loaded.to_json() == facts.to_json()
        assert cache.hits == 1

    def test_key_depends_on_source_and_path(self):
        base = facts_key("repro/x.py", "a" * 64)
        assert facts_key("repro/x.py", "b" * 64) != base
        assert facts_key("repro/y.py", "a" * 64) != base

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = FactsCache(tmp_path)
        assert cache.load("repro/x.py", "0" * 64) is None
        assert cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = FactsCache(tmp_path)
        facts = extract_file_facts("repro/x.py", "a = 1\n")
        stored = cache.store(facts)
        stored.write_text("{not json", encoding="utf-8")
        assert cache.load(facts.path, facts.sha256) is None

    def test_tampered_payload_is_a_miss(self, tmp_path):
        # Right key on disk, wrong facts inside (e.g. a truncated or
        # hand-edited entry): never trusted.
        cache = FactsCache(tmp_path)
        facts = extract_file_facts("repro/x.py", "a = 1\n")
        stored = cache.store(facts)
        payload = json.loads(stored.read_text(encoding="utf-8"))
        payload["facts"]["sha256"] = "0" * 64
        stored.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.load(facts.path, facts.sha256) is None
