"""Additional edge-case coverage for utility modules."""


from repro.util.rng import RngStream
from repro.util.urls import parse_url, resolve_relative


class TestUrlEdgeCases:
    def test_ipv4_host(self):
        url = parse_url("http://192.168.1.1:8080/admin")
        assert url.host == "192.168.1.1"
        assert url.port == 8080

    def test_query_with_encoded_chars(self):
        url = parse_url("https://t.example/sync?uid=ab%3D1&next=/x")
        assert url.query == "uid=ab%3D1&next=/x"

    def test_trailing_dot_host_normalized(self):
        assert parse_url("https://example.com./x").host == "example.com"

    def test_unknown_scheme_port_zero(self):
        assert parse_url("gopher://old.example/x").port == 0

    def test_resolve_relative_keeps_ws_scheme(self):
        out = resolve_relative("wss://rt.example/app/main", "data")
        assert out == "wss://rt.example/app/data"


class TestRngStreamMore:
    def test_expovariate_positive(self):
        stream = RngStream(1, "e")
        assert all(stream.expovariate(2.0) > 0 for _ in range(100))

    def test_gauss_centred(self):
        stream = RngStream(1, "g")
        draws = [stream.gauss(5.0, 1.0) for _ in range(5000)]
        assert 4.9 < sum(draws) / len(draws) < 5.1

    def test_uniform_bounds(self):
        stream = RngStream(1, "u")
        for _ in range(100):
            value = stream.uniform(2.0, 3.0)
            assert 2.0 <= value <= 3.0

    def test_choice_single_item(self):
        assert RngStream(1, "c").choice(["only"]) == "only"

    def test_nested_children_distinct(self):
        root = RngStream(1, "root")
        a = root.child("x").child("y")
        b = root.child("x", "y")
        # child("x").child("y") and child("x","y") share the key path.
        assert a.key == b.key
        assert a.random() == b.random()
