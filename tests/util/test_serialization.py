"""Tests for JSONL persistence helpers."""

import dataclasses
import datetime as dt

from repro.util.serialization import dumps, read_jsonl, to_jsonable, write_jsonl


@dataclasses.dataclass
class Sample:
    name: str
    count: int
    tags: tuple


def test_to_jsonable_dataclass():
    obj = Sample(name="x", count=2, tags=("a", "b"))
    assert to_jsonable(obj) == {"name": "x", "count": 2, "tags": ["a", "b"]}


def test_to_jsonable_datetime():
    instant = dt.datetime(2017, 4, 19, tzinfo=dt.timezone.utc)
    assert to_jsonable(instant) == "2017-04-19T00:00:00+00:00"


def test_to_jsonable_sets_sorted():
    assert to_jsonable({3, 1, 2}) == [1, 2, 3]


def test_to_jsonable_bytes():
    assert to_jsonable(b"\x01\x02") == {"__bytes__": "0102"}


def test_dumps_compact_and_sorted():
    assert dumps({"b": 1, "a": 2}) == '{"a":2,"b":1}'


def test_write_read_round_trip(tmp_path):
    path = tmp_path / "records.jsonl"
    records = [{"i": i, "name": f"r{i}"} for i in range(5)]
    assert write_jsonl(path, records) == 5
    loaded = list(read_jsonl(path))
    assert loaded == records


def test_gzip_round_trip(tmp_path):
    path = tmp_path / "records.jsonl.gz"
    write_jsonl(path, [{"x": 1}])
    assert list(read_jsonl(path)) == [{"x": 1}]


def test_read_with_decoder(tmp_path):
    path = tmp_path / "r.jsonl"
    write_jsonl(path, [{"x": 1}, {"x": 2}])
    loaded = list(read_jsonl(path, decoder=lambda record: record["x"]))
    assert loaded == [1, 2]


def test_write_creates_parent_dirs(tmp_path):
    path = tmp_path / "deep" / "nested" / "r.jsonl"
    write_jsonl(path, [{"ok": True}])
    assert path.exists()


def test_blank_lines_skipped(tmp_path):
    path = tmp_path / "r.jsonl"
    path.write_text('{"a":1}\n\n{"a":2}\n')
    assert len(list(read_jsonl(path))) == 2
