"""Tests for deterministic stream-keyed RNG."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_key_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_root_seed_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_64_bit_range(self):
        seed = derive_seed(42, "x")
        assert 0 <= seed < 2**64

    def test_numeric_parts_stringified(self):
        assert derive_seed(1, 5) == derive_seed(1, "5")


class TestRngStream:
    def test_same_key_same_sequence(self):
        a = RngStream(7, "crawl", 0)
        b = RngStream(7, "crawl", 0)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_keys_differ(self):
        a = RngStream(7, "crawl", 0)
        b = RngStream(7, "crawl", 1)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_child_extends_key(self):
        parent = RngStream(7, "x")
        child = parent.child("y")
        assert child.key == ("x", "y")

    def test_child_independent_of_parent_draws(self):
        parent_a = RngStream(7, "x")
        parent_b = RngStream(7, "x")
        parent_a.random()  # consume from one parent only
        assert parent_a.child("y").random() == parent_b.child("y").random()

    def test_bernoulli_extremes(self):
        stream = RngStream(1, "t")
        assert stream.bernoulli(1.0) is True
        assert stream.bernoulli(0.0) is False
        assert stream.bernoulli(1.5) is True
        assert stream.bernoulli(-0.5) is False

    def test_bernoulli_rate(self):
        stream = RngStream(1, "rate")
        hits = sum(stream.bernoulli(0.3) for _ in range(20_000))
        assert 0.27 < hits / 20_000 < 0.33

    def test_randint_bounds(self):
        stream = RngStream(1, "ri")
        values = {stream.randint(3, 5) for _ in range(200)}
        assert values == {3, 4, 5}

    def test_sample_caps_at_population(self):
        stream = RngStream(1, "s")
        assert sorted(stream.sample([1, 2, 3], 10)) == [1, 2, 3]

    def test_shuffled_preserves_elements(self):
        stream = RngStream(1, "sh")
        items = list(range(50))
        shuffled = stream.shuffled(items)
        assert sorted(shuffled) == items
        assert items == list(range(50))  # input untouched

    def test_poisson_zero_mean(self):
        stream = RngStream(1, "p")
        assert stream.poisson(0.0) == 0
        assert stream.poisson(-1.0) == 0

    def test_poisson_mean(self):
        stream = RngStream(1, "p2")
        draws = [stream.poisson(2.5) for _ in range(5_000)]
        assert 2.3 < sum(draws) / len(draws) < 2.7

    def test_poisson_large_mean_normal_approx(self):
        stream = RngStream(1, "p3")
        draws = [stream.poisson(80.0) for _ in range(500)]
        assert 75 < sum(draws) / len(draws) < 85
        assert all(d >= 0 for d in draws)

    def test_zipf_index_range_and_skew(self):
        stream = RngStream(1, "z")
        draws = [stream.zipf_index(100) for _ in range(5_000)]
        assert all(0 <= d < 100 for d in draws)
        # Rank 0 must be the most common outcome under Zipf.
        assert draws.count(0) > draws.count(50)

    def test_zipf_index_requires_positive_n(self):
        stream = RngStream(1, "z2")
        with pytest.raises(ValueError):
            stream.zipf_index(0)

    def test_weighted_choice_respects_weights(self):
        stream = RngStream(1, "w")
        picks = [
            stream.weighted_choice(["a", "b"], [99.0, 1.0]) for _ in range(500)
        ]
        assert picks.count("a") > 400

    def test_weighted_choice_length_mismatch(self):
        stream = RngStream(1, "w2")
        with pytest.raises(ValueError):
            stream.weighted_choice(["a"], [1.0, 2.0])

    def test_bounded_pareto_range(self):
        stream = RngStream(1, "bp")
        for _ in range(200):
            value = stream.bounded_pareto(1.0, 100.0)
            assert 1.0 <= value <= 100.0

    def test_bounded_pareto_rejects_bad_bounds(self):
        stream = RngStream(1, "bp2")
        with pytest.raises(ValueError):
            stream.bounded_pareto(5.0, 1.0)


@given(st.integers(min_value=0, max_value=2**32), st.text(max_size=20))
def test_derive_seed_stable_property(root, part):
    assert derive_seed(root, part) == derive_seed(root, part)


@given(
    st.lists(st.integers(), min_size=1, max_size=30),
    st.integers(min_value=0, max_value=40),
)
def test_sample_is_subset_property(items, k):
    stream = RngStream(3, "prop")
    sampled = stream.sample(items, k)
    assert len(sampled) == min(k, len(items))
    for item in sampled:
        assert item in items
