"""Tests for text helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util.text import b64_text, format_count, format_percent, slugify, truncate


def test_slugify_basic():
    assert slugify("Hello World") == "hello-world"


def test_slugify_collapses_punctuation():
    assert slugify("a--b__c") == "a-b-c"


def test_slugify_never_empty():
    assert slugify("!!!") == "x"


def test_b64_text():
    assert b64_text(b"hi") == "aGk="


def test_truncate_short_unchanged():
    assert truncate("abc", 10) == "abc"


def test_truncate_long():
    out = truncate("a" * 200, 50)
    assert len(out) == 50
    assert out.endswith("…")


def test_format_count():
    assert format_count(36056) == "36,056"


def test_format_percent():
    assert format_percent(0.737, 1) == "73.7"


@given(st.text(max_size=50))
def test_slugify_output_is_dns_safe(text):
    out = slugify(text)
    assert out
    assert all(c.isalnum() or c == "-" for c in out)
    assert not out.startswith("-") and not out.endswith("-")
