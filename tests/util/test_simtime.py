"""Tests for the simulated clock."""

import pytest

from repro.util.simtime import SimClock, parse_date


def test_parse_date_is_utc_midnight():
    instant = parse_date("2017-04-19")
    assert (instant.year, instant.month, instant.day) == (2017, 4, 19)
    assert (instant.hour, instant.minute) == (0, 0)
    assert instant.tzinfo is not None


def test_advance_moves_forward():
    clock = SimClock(now=parse_date("2017-04-02"))
    before = clock.timestamp()
    clock.advance(60.0)
    assert clock.timestamp() == pytest.approx(before + 60.0)


def test_advance_rejects_negative():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance(-1.0)


def test_set_to_rejects_past():
    clock = SimClock(now=parse_date("2017-05-07"))
    with pytest.raises(ValueError):
        clock.set_to(parse_date("2017-04-02"))


def test_set_to_future():
    clock = SimClock(now=parse_date("2017-04-02"))
    clock.set_to(parse_date("2017-10-12"))
    assert clock.now == parse_date("2017-10-12")


def test_isoformat_contains_date():
    clock = SimClock(now=parse_date("2017-04-11"))
    assert clock.isoformat().startswith("2017-04-11")
