"""Tests for the URL parser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.urls import (
    ParsedUrl,
    UrlError,
    host_of,
    parse_url,
    resolve_relative,
    same_host,
)


class TestParseUrl:
    def test_basic_https(self):
        url = parse_url("https://www.example.com/path/page?a=1")
        assert url.scheme == "https"
        assert url.host == "www.example.com"
        assert url.port == 443
        assert url.path == "/path/page"
        assert url.query == "a=1"

    def test_default_ports(self):
        assert parse_url("http://x.com/").port == 80
        assert parse_url("https://x.com/").port == 443
        assert parse_url("ws://x.com/").port == 80
        assert parse_url("wss://x.com/").port == 443

    def test_explicit_port(self):
        assert parse_url("http://x.com:8080/").port == 8080

    def test_no_path_means_root(self):
        assert parse_url("https://x.com").path == "/"

    def test_query_without_path(self):
        url = parse_url("https://x.com?k=v")
        assert url.path == "/"
        assert url.query == "k=v"

    def test_host_lowercased(self):
        assert parse_url("https://WWW.Example.COM/").host == "www.example.com"

    def test_websocket_flag(self):
        assert parse_url("wss://a.b/s").is_websocket
        assert parse_url("ws://a.b/s").is_websocket
        assert not parse_url("https://a.b/s").is_websocket

    def test_secure_flag(self):
        assert parse_url("wss://a.b/").is_secure
        assert parse_url("https://a.b/").is_secure
        assert not parse_url("ws://a.b/").is_secure
        assert not parse_url("http://a.b/").is_secure

    def test_origin_omits_default_port(self):
        assert parse_url("https://a.b/x").origin == "https://a.b"
        assert parse_url("https://a.b:444/x").origin == "https://a.b:444"

    def test_str_round_trip(self):
        original = "https://a.example.com/p/q?x=1&y=2"
        assert str(parse_url(original)) == original

    def test_missing_scheme_raises(self):
        with pytest.raises(UrlError):
            parse_url("example.com/path")

    def test_empty_host_raises(self):
        with pytest.raises(UrlError):
            parse_url("https:///path")

    def test_bad_port_raises(self):
        with pytest.raises(UrlError):
            parse_url("https://x.com:notaport/")
        with pytest.raises(UrlError):
            parse_url("https://x.com:99999/")

    def test_with_path(self):
        url = parse_url("https://x.com/a").with_path("b", "q=1")
        assert str(url) == "https://x.com/b?q=1"


class TestHelpers:
    def test_host_of(self):
        assert host_of("wss://Sock.Example.io/ws") == "sock.example.io"

    def test_same_host(self):
        assert same_host("https://a.com/x", "https://a.com/y")
        assert not same_host("https://a.com/", "https://b.com/")

    def test_resolve_absolute(self):
        assert resolve_relative("https://a.com/", "https://b.com/x") == "https://b.com/x"

    def test_resolve_scheme_relative(self):
        assert resolve_relative("https://a.com/", "//c.com/z") == "https://c.com/z"

    def test_resolve_host_relative(self):
        assert resolve_relative("https://a.com/d/e", "/f?g=1") == "https://a.com/f?g=1"

    def test_resolve_path_relative(self):
        assert resolve_relative("https://a.com/d/e", "f") == "https://a.com/d/f"


@given(
    st.sampled_from(["http", "https", "ws", "wss"]),
    st.from_regex(r"[a-z][a-z0-9]{0,10}(\.[a-z]{2,5}){1,2}", fullmatch=True),
    st.from_regex(r"(/[a-z0-9]{1,8}){0,3}", fullmatch=True),
)
def test_parse_round_trip_property(scheme, host, path):
    url = f"{scheme}://{host}{path or '/'}"
    parsed = parse_url(url)
    assert parsed.scheme == scheme
    assert parsed.host == host
    assert str(parsed) == url


def test_parsed_url_is_hashable():
    a = parse_url("https://a.com/")
    b = parse_url("https://a.com/")
    assert a == b and hash(a) == hash(b)
    assert isinstance(a, ParsedUrl)
