"""Atomic artifact writes: replace-or-keep, never a partial file."""

from __future__ import annotations

import gzip

import pytest

from repro.util.atomicio import atomic_open, atomic_write


class TestAtomicWrite:
    def test_creates_parents_and_writes_text(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "artifact.json"
        returned = atomic_write(target, "{}\n")
        assert returned == target
        assert target.read_text(encoding="utf-8") == "{}\n"

    def test_accepts_bytes(self, tmp_path):
        target = tmp_path / "blob.bin"
        atomic_write(target, b"\x00\x01")
        assert target.read_bytes() == b"\x00\x01"

    def test_replaces_without_leaving_temps(self, tmp_path):
        target = tmp_path / "artifact.json"
        atomic_write(target, "old\n")
        atomic_write(target, "new\n")
        assert target.read_text(encoding="utf-8") == "new\n"
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]

    def test_failed_write_keeps_previous_content(self, tmp_path):
        target = tmp_path / "artifact.json"
        atomic_write(target, "kept\n")

        with pytest.raises(TypeError):
            atomic_write(target, object())  # unwritable payload
        assert target.read_text(encoding="utf-8") == "kept\n"
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]


class TestAtomicOpen:
    def test_clean_exit_commits(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_open(target) as handle:
            handle.write("line\n")
        assert target.read_text(encoding="utf-8") == "line\n"

    def test_exception_rolls_back(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write(target, "before\n")
        with pytest.raises(ValueError):
            with atomic_open(target) as handle:
                handle.write("half-writ")
                raise ValueError("die mid-write")
        assert target.read_text(encoding="utf-8") == "before\n"
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_gz_output_is_deterministic(self, tmp_path):
        twins = []
        for name in ("a.jsonl.gz", "b.jsonl.gz"):
            target = tmp_path / name
            with atomic_open(target) as handle:
                handle.write("same content\n")
            twins.append(target.read_bytes())
        # mtime is pinned, so equal text gzips to equal bytes.
        assert twins[0] == twins[1]
        with gzip.open(tmp_path / "a.jsonl.gz", "rt") as handle:
            assert handle.read() == "same content\n"
