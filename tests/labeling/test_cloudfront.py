"""Tests for Cloudfront tenant mapping."""

from repro.labeling.aa_labeler import AaLabeler, DomainTagCounter
from repro.labeling.cloudfront import CloudfrontMapper, is_cloudfront_host
from repro.labeling.resolver import DomainResolver

CF = "d10lpsik1i8c69.cloudfront.net"


def _labeler(*aa_domains):
    counter = DomainTagCounter()
    for domain in aa_domains:
        counter.observe(f"px.{domain}", True, 5)
    return AaLabeler.from_counts(counter)


def test_is_cloudfront_host():
    assert is_cloudfront_host(CF)
    assert not is_cloudfront_host("cdn.luckyorange.com")


def test_one_to_one_mapping_derived():
    mapper = CloudfrontMapper()
    # LuckyOrange's CDN-hosted script loads its beacon on every page.
    for _ in range(20):
        mapper.observe_chain(["www.pub.com", CF, "px.luckyorange.com"])
    mapping = mapper.derive_mapping(_labeler("luckyorange.com"))
    assert mapping == {CF: "luckyorange.com"}


def test_publisher_adjacency_does_not_win():
    mapper = CloudfrontMapper()
    # Different publisher every chain, same tenant beacon below.
    for i in range(20):
        mapper.observe_chain([f"www.pub{i}.com", CF, "px.luckyorange.com"])
    mapping = mapper.derive_mapping(_labeler("luckyorange.com"))
    assert mapping[CF] == "luckyorange.com"


def test_non_aa_adjacency_yields_no_mapping():
    mapper = CloudfrontMapper()
    for _ in range(10):
        mapper.observe_chain(["www.pub.com", CF, "cdn.benign.com"])
    assert mapper.derive_mapping(_labeler("unrelated.com")) == {}


def test_ambiguous_adjacency_requires_dominance():
    mapper = CloudfrontMapper()
    for _ in range(10):
        mapper.observe_chain(["www.pub.com", CF, "px.companya.com"])
    for _ in range(10):
        mapper.observe_chain(["www.pub.com", CF, "px.companyb.com"])
    mapping = mapper.derive_mapping(_labeler("companya.com", "companyb.com"))
    assert CF not in mapping  # 50/50 split is not a confident mapping


def test_consecutive_cloudfront_hosts_ignored_as_neighbors():
    mapper = CloudfrontMapper()
    other_cf = "d99other.cloudfront.net"
    mapper.observe_chain(["www.pub.com", CF, other_cf, "px.tenant.com"])
    counts = mapper.adjacency[CF]
    assert "cloudfront.net" not in counts


def test_resolver_applies_mapping():
    resolver = DomainResolver(cloudfront_mapping={CF: "luckyorange.com"})
    assert resolver.effective_domain(CF) == "luckyorange.com"
    assert resolver.effective_domain("x.hotjar.com") == "hotjar.com"
    assert resolver.effective_domains([CF, "a.b.com"]) == [
        "luckyorange.com", "b.com",
    ]
