"""Tests for the a(d) ≥ 0.1·n(d) labeler."""

from hypothesis import given
from hypothesis import strategies as st

from repro.labeling.aa_labeler import AaLabeler, DomainTagCounter


def _counter(entries):
    counter = DomainTagCounter()
    for host, matched, weight in entries:
        counter.observe(host, matched, weight)
    return counter


def test_observe_aggregates_to_registrable_domain():
    counter = _counter([
        ("x.doubleclick.net", True, 3),
        ("y.doubleclick.net", True, 2),
        ("z.doubleclick.net", False, 1),
    ])
    assert counter.counts("doubleclick.net") == (5, 1)


def test_threshold_rule_exactly_ten_percent():
    # a(d) = 1, n(d) = 10 → 1 >= 0.1*10 → labeled.
    labeler = AaLabeler.from_counts(_counter([
        ("widget.intercom.io", True, 1),
        ("widget.intercom.io", False, 10),
    ]))
    assert labeler.is_aa("intercom.io")


def test_below_threshold_not_labeled():
    # a(d) = 1, n(d) = 11 → 1 < 1.1 → filtered out as false positive.
    labeler = AaLabeler.from_counts(_counter([
        ("cdn.mixedcdn.com", True, 1),
        ("cdn.mixedcdn.com", False, 11),
    ]))
    assert not labeler.is_aa("mixedcdn.com")


def test_zero_aa_observations_never_labeled():
    # The vacuous case a(d)=0, n(d)=0 must not label.
    counter = DomainTagCounter()
    counter.non_aa["benign.com"] = 0
    counter.aa["benign.com"] = 0
    labeler = AaLabeler.from_counts(counter)
    assert not labeler.is_aa("benign.com")


def test_pure_aa_domain_labeled():
    labeler = AaLabeler.from_counts(_counter([("ads.adnxs.com", True, 4)]))
    assert labeler.is_aa("adnxs.com")
    assert labeler.is_aa("any.sub.adnxs.com")  # host → sld lookup


def test_merge_counters():
    a = _counter([("t.com", True, 2)])
    b = _counter([("t.com", False, 3), ("u.com", True, 1)])
    a.merge(b)
    assert a.counts("t.com") == (2, 3)
    assert a.counts("u.com") == (1, 0)
    assert a.domains() == {"t.com", "u.com"}


def test_len_reports_labeled_count():
    labeler = AaLabeler.from_counts(_counter([
        ("a.com", True, 1), ("b.com", False, 5),
    ]))
    assert len(labeler) == 1


@given(
    st.integers(min_value=0, max_value=100),
    st.integers(min_value=0, max_value=100),
)
def test_threshold_property(a, n):
    counter = DomainTagCounter()
    if a:
        counter.observe("d.example.com", True, a)
    if n:
        counter.observe("d.example.com", False, n)
    labeler = AaLabeler.from_counts(counter)
    expected = a > 0 and a >= 0.1 * n
    assert labeler.is_aa("example.com") == expected
