"""Edge-case coverage for labeling internals."""

from repro.labeling.aa_labeler import AaLabeler, DomainTagCounter
from repro.labeling.cloudfront import CloudfrontMapper
from repro.labeling.resolver import DomainResolver


def test_resolver_without_mapping_is_plain_sld():
    resolver = DomainResolver()
    assert resolver.effective_domain("a.b.example.co.uk") == "example.co.uk"


def test_mapper_chain_with_no_cloudfront_is_noop():
    mapper = CloudfrontMapper()
    mapper.observe_chain(["www.pub.com", "cdn.tracker.com"])
    assert mapper.adjacency == {}


def test_mapper_cloudfront_at_chain_edges():
    mapper = CloudfrontMapper()
    cf = "dabc123.cloudfront.net"
    # Cloudfront host first in chain: only the successor is adjacent.
    mapper.observe_chain([cf, "px.tenant.com"])
    # Cloudfront host last: only the predecessor.
    mapper.observe_chain(["px.tenant.com", cf])
    assert mapper.adjacency[cf]["tenant.com"] == 2


def test_labeler_threshold_parameter():
    counter = DomainTagCounter()
    counter.observe("x.mixed.com", True, 2)
    counter.observe("x.mixed.com", False, 8)  # 20% A&A
    assert AaLabeler.from_counts(counter, threshold=0.1).is_aa("mixed.com")
    assert not AaLabeler.from_counts(counter, threshold=0.5).is_aa("mixed.com")


def test_labeler_membership_is_by_sld():
    labeler = AaLabeler(aa_domains=frozenset({"tracker.net"}))
    assert labeler.is_aa("deep.sub.tracker.net")
    assert not labeler.is_aa("nottracker.net")


def test_derive_mapping_empty_when_no_observations():
    labeler = AaLabeler(aa_domains=frozenset({"t.com"}))
    assert CloudfrontMapper().derive_mapping(labeler) == {}
