"""Snapshot building, fingerprinting, and the phase/engine map."""

import pytest

from repro.extension import WEBREQUEST_BUG_FIX_VERSION
from repro.net.http import ResourceType
from repro.serve import build_scale_snapshot, resource_type_for
from repro.web.filterlists import LIST_SCALES

from tests.serve.conftest import make_snapshot


class TestScaleSnapshot:
    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown scale"):
            build_scale_snapshot("9000k")

    def test_compiles_the_named_scale(self, snapshot_10k):
        assert snapshot_10k.phases == ("live",)
        assert snapshot_10k.rule_counts() == {"live": LIST_SCALES["10k"]}
        assert snapshot_10k.wrb_fix_version == WEBREQUEST_BUG_FIX_VERSION
        assert snapshot_10k.dataset_fingerprint == "lists:10k:seed=2018"

    def test_build_is_deterministic(self, snapshot_10k):
        again = build_scale_snapshot("10k")
        assert again.fingerprint == snapshot_10k.fingerprint
        assert len(again.labeler) == len(snapshot_10k.labeler)

    def test_labeling_state_is_nonempty(self, snapshot_10k):
        # The derived tag corpus must produce a real A&A set: the
        # classify endpoint is useless over an empty labeler.
        assert len(snapshot_10k.labeler) > 0
        assert snapshot_10k.tag_counter.domains()

    def test_multi_phase_snapshot(self):
        snapshot = build_scale_snapshot(
            "10k", phases={"2016-07": 2016, "2017-12": 2017}
        )
        assert snapshot.phases == ("2016-07", "2017-12")
        assert snapshot.default_phase == "2016-07"
        assert snapshot.engine_for("2017-12") is not None
        assert snapshot.engine_for("") is snapshot.engine_for("2016-07")
        assert snapshot.engine_for("unknown") is None
        # Different seeds generate different lists per phase.
        first = snapshot.engines["2016-07"].match(
            "https://x.example/a.js", ResourceType.SCRIPT, "", stats=None
        )
        assert first is not None  # distinct engines both answer

    def test_engine_matches_generated_lists(self, snapshot_10k, lists_10k):
        # The snapshot must compile exactly the lists that
        # generate_filter_lists(10_000, seed=2018) produces — the
        # query-mix corpus is sampled from those.
        engine = snapshot_10k.engine_for("")
        assert engine.rule_count == sum(len(l.rules) for l in lists_10k)
        assert {l.name for l in lists_10k} == {"easylist-scaled"}


class TestFingerprint:
    def test_same_inputs_same_fingerprint(self):
        assert make_snapshot().fingerprint == make_snapshot().fingerprint

    def test_list_change_bumps_fingerprint(self):
        assert make_snapshot(seed=7).fingerprint != (
            make_snapshot(seed=8).fingerprint
        )

    def test_artifact_keys_bump_fingerprint(self):
        with_artifact = make_snapshot(artifacts={"table1": {"rows": []}})
        assert with_artifact.fingerprint != make_snapshot().fingerprint

    def test_dataset_fingerprint_bumps_fingerprint(self):
        assert make_snapshot(dataset_fingerprint="other").fingerprint != (
            make_snapshot().fingerprint
        )

    def test_version_does_not_affect_fingerprint(self):
        # The fingerprint is a content address; the version is the
        # swap-ordering counter. Same content at version 2 (a rollback
        # re-install) keeps the same fingerprint.
        assert make_snapshot(version=2).fingerprint == (
            make_snapshot(version=1).fingerprint
        )


class TestResourceTypeFor:
    def test_wire_values(self):
        assert resource_type_for("websocket") is ResourceType.WEBSOCKET
        assert resource_type_for("script") is ResourceType.SCRIPT

    def test_enum_names_case_insensitive(self):
        assert resource_type_for("XHR") is ResourceType.XHR
        assert resource_type_for("WebSocket") is ResourceType.WEBSOCKET

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown resource type"):
            resource_type_for("carrier-pigeon")
