"""Endpoint semantics: verdicts, WRB split, labeling evidence, errors."""

from repro.net.domains import registrable_domain
from repro.net.http import ResourceType
from repro.obs import Obs
from repro.serve import (
    SERVE_VERSION,
    ArtifactRequest,
    BatchCheckRequest,
    BatchClassifyRequest,
    CheckRequest,
    ClassifyRequest,
    ServeService,
    SnapshotRequest,
)
from repro.web.filterlists import generate_request_corpus

from tests.serve.conftest import make_snapshot


def _blocked_url(snapshot, lists):
    """A corpus URL the snapshot's engine actually blocks."""
    engine = snapshot.engine_for("")
    for url, resource_type, first_party in generate_request_corpus(
        lists, 200, seed=2018
    ):
        verdict = engine.match(url, resource_type, first_party, stats=None)
        if verdict.blocked:
            return url, resource_type, first_party, verdict
    raise AssertionError("corpus produced no blocked request")


class TestCheck:
    def test_blocked_verdict_carries_decisive_rule(
        self, snapshot_10k, lists_10k
    ):
        url, resource_type, first_party, verdict = _blocked_url(
            snapshot_10k, lists_10k
        )
        service = ServeService(snapshot_10k)
        result = service.handle(CheckRequest(
            url=url,
            resource_type=resource_type.value,
            first_party_url=first_party,
        ))
        assert result.ok and result.endpoint == "check"
        assert result.fingerprint == snapshot_10k.fingerprint
        body = result.body
        assert body.blocked is True
        assert body.rule == verdict.rule.raw
        assert body.list_name == verdict.list_name
        assert body.phase == "live"

    def test_http_request_has_no_wrb_split(self, snapshot_10k, lists_10k):
        url, resource_type, first_party, _ = _blocked_url(
            snapshot_10k, lists_10k
        )
        service = ServeService(snapshot_10k)
        body = service.handle(CheckRequest(
            url=url,
            resource_type=resource_type.value,
            first_party_url=first_party,
        )).body
        if resource_type is not ResourceType.WEBSOCKET:
            assert body.wrb_suppressed is False
            assert body.pre58_blocked == body.blocked
            assert body.post58_blocked == body.blocked

    def test_websocket_is_wrb_suppressed_pre58(self, snapshot_10k):
        # The paper's core mechanism: whatever the engine says, a
        # pre-58 Chrome never delivers the handshake to the extension.
        service = ServeService(snapshot_10k)
        body = service.handle(CheckRequest(
            url="wss://tracker.example/socket",
            resource_type="websocket",
        )).body
        assert body.wrb_suppressed is True
        assert body.pre58_blocked is False
        assert body.post58_blocked == body.blocked

    def test_unknown_phase_is_a_typed_error(self, snapshot_10k):
        service = ServeService(snapshot_10k)
        result = service.handle(CheckRequest(
            url="https://x.example/a.js", phase="2031-01"
        ))
        assert not result.ok
        assert result.endpoint == "check"
        assert result.error.code == "unknown-phase"
        assert "live" in result.error.message
        assert result.fingerprint == snapshot_10k.fingerprint

    def test_bad_resource_type_is_a_typed_error(self, snapshot_10k):
        result = ServeService(snapshot_10k).handle(CheckRequest(
            url="https://x.example/a.js", resource_type="blimp"
        ))
        assert not result.ok
        assert result.error.code == "bad-request"


class TestClassify:
    def test_observed_domain_returns_evidence(self):
        snapshot = make_snapshot()
        result = ServeService(snapshot).handle(
            ClassifyRequest(domain="tracker.example.com")
        )
        assert result.ok
        body = result.body
        assert body.registrable_domain == registrable_domain(
            "tracker.example.com"
        )
        assert (body.aa_count, body.non_aa_count) == (2, 0)
        assert body.is_aa is True
        assert body.threshold == snapshot.labeler.threshold

    def test_never_observed_domain_is_not_aa(self):
        result = ServeService(make_snapshot()).handle(
            ClassifyRequest(domain="quiet.example.net")
        )
        assert result.ok
        assert result.body.is_aa is False
        assert (result.body.aa_count, result.body.non_aa_count) == (0, 0)

    def test_labeler_agreement(self, snapshot_10k):
        # The endpoint must answer exactly what the snapshot's labeler
        # would: spot-check every domain the tag corpus observed.
        service = ServeService(snapshot_10k)
        for domain in sorted(snapshot_10k.tag_counter.domains())[:50]:
            body = service.handle(ClassifyRequest(domain=domain)).body
            assert body.is_aa == snapshot_10k.labeler.is_aa(domain)

    def test_empty_domain_is_a_typed_error(self):
        result = ServeService(make_snapshot()).handle(
            ClassifyRequest(domain="")
        )
        assert not result.ok
        assert result.error.code == "bad-request"


class TestArtifact:
    def test_hit_returns_the_cached_artifact(self):
        artifact = {"rows": [{"rank": 1, "domain": "tracker.example.com"}]}
        snapshot = make_snapshot(artifacts={"table1": artifact})
        result = ServeService(snapshot).handle(
            ArtifactRequest(stage="table1")
        )
        assert result.ok and result.body.found
        assert result.body.artifact == artifact
        assert result.body.fingerprint == snapshot.dataset_fingerprint

    def test_wrong_fingerprint_is_a_miss(self):
        snapshot = make_snapshot(artifacts={"table1": {"rows": []}})
        body = ServeService(snapshot).handle(
            ArtifactRequest(stage="table1", fingerprint="stale-fp")
        ).body
        assert body.found is False
        assert body.artifact is None

    def test_unknown_stage_is_a_miss(self):
        body = ServeService(make_snapshot()).handle(
            ArtifactRequest(stage="table9")
        ).body
        assert body.found is False

    def test_missing_stage_name_is_a_typed_error(self):
        result = ServeService(make_snapshot()).handle(
            ArtifactRequest(stage="")
        )
        assert not result.ok
        assert result.error.code == "bad-request"


class TestSnapshotEndpoint:
    def test_reports_identity_and_health(self, snapshot_10k):
        body = ServeService(snapshot_10k).handle(SnapshotRequest()).body
        assert body.serve_version == SERVE_VERSION
        assert body.snapshot_version == snapshot_10k.version
        assert body.fingerprint == snapshot_10k.fingerprint
        assert body.phases == ("live",)
        assert body.rule_counts == {"live": 10_000}
        assert body.aa_domains == len(snapshot_10k.labeler)
        assert body.healthy is True


class TestBatches:
    def test_batch_check_preserves_order_and_fingerprint(
        self, snapshot_10k, lists_10k
    ):
        corpus = generate_request_corpus(lists_10k, 8, seed=4)
        request = BatchCheckRequest(items=tuple(
            CheckRequest(
                url=url, resource_type=rt.value, first_party_url=fp
            )
            for url, rt, fp in corpus
        ))
        result = ServeService(snapshot_10k).handle(request)
        assert result.ok and result.endpoint == "batch_check"
        assert result.fingerprint == snapshot_10k.fingerprint
        assert [item.url for item in result.body.items] == [
            url for url, _, _ in corpus
        ]

    def test_batch_classify(self):
        result = ServeService(make_snapshot()).handle(BatchClassifyRequest(
            items=(
                ClassifyRequest(domain="tracker.example.com"),
                ClassifyRequest(domain="news.example.org"),
            )
        ))
        assert result.ok
        assert [item.is_aa for item in result.body.items] == [True, False]

    def test_bad_item_fails_the_whole_batch(self, snapshot_10k):
        # One envelope, one verdict: a batch is atomic, so a poisoned
        # item turns the whole response into a typed error.
        result = ServeService(snapshot_10k).handle(BatchCheckRequest(
            items=(
                CheckRequest(url="https://x.example/a.js"),
                CheckRequest(url="https://x.example/b.js", phase="bogus"),
            )
        ))
        assert not result.ok
        assert result.endpoint == "batch_check"
        assert result.error.code == "unknown-phase"


class TestObservability:
    def test_counters_and_latency_histograms(self, snapshot_10k):
        obs = Obs()
        service = ServeService(snapshot_10k, obs=obs)
        service.handle(CheckRequest(url="https://x.example/a.js"))
        service.handle(CheckRequest(url="https://x.example/a.js"))
        service.handle(CheckRequest(url="x", resource_type="blimp"))
        service.handle(SnapshotRequest())
        counters = obs.metrics.counter_values()
        assert counters["serve.requests.check"] == 3
        assert counters["serve.requests.snapshot"] == 1
        assert counters["serve.errors"] == 1
        histograms = obs.metrics.histogram_records()
        assert histograms["serve.latency_us.check"]["count"] == 3
        assert service.served == 4

    def test_engine_stats_never_mutated_by_serving(self, snapshot_10k):
        # The shared-snapshot contract: dispatch matches with
        # stats=None, so the engine's own counters stay untouched.
        engine = snapshot_10k.engine_for("")
        before = (
            engine.stats.matches,
            engine.stats.blocked,
            engine.stats.exception_overrides,
        )
        service = ServeService(snapshot_10k)
        for _ in range(5):
            service.handle(CheckRequest(url="https://ads.example/a.js"))
        after = (
            engine.stats.matches,
            engine.stats.blocked,
            engine.stats.exception_overrides,
        )
        assert after == before
