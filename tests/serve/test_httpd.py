"""The stdlib HTTP frontend: envelopes in, envelopes out."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import (
    SERVE_VERSION,
    CheckRequest,
    ServeService,
    encode_request,
    make_server,
)

from tests.serve.conftest import make_snapshot


@pytest.fixture()
def http_service():
    snapshot = make_snapshot()
    service = ServeService(snapshot)
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield snapshot, f"http://127.0.0.1:{server.port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10.0)


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


def _post(url, payload):
    data = json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


class TestHttpFrontend:
    def test_snapshot_probe(self, http_service):
        snapshot, base = http_service
        status, payload = _get(f"{base}/v1/snapshot")
        assert status == 200
        assert payload["ok"] is True
        assert payload["v"] == SERVE_VERSION
        assert payload["fingerprint"] == snapshot.fingerprint
        assert payload["body"]["healthy"] is True

    def test_check_query_round_trip(self, http_service):
        snapshot, base = http_service
        envelope = encode_request(
            CheckRequest(url="https://ads.example/pixel.js")
        )
        status, payload = _post(f"{base}/v1/query", envelope)
        assert status == 200
        assert payload["endpoint"] == "check"
        assert payload["fingerprint"] == snapshot.fingerprint
        assert set(payload["body"]) >= {
            "blocked", "pre58_blocked", "post58_blocked", "wrb_suppressed",
        }

    def test_protocol_error_is_http_400(self, http_service):
        _, base = http_service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{base}/v1/query", {"endpoint": "frobnicate", "v": 1})
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read())
        assert payload["ok"] is False
        assert payload["error"]["code"] == "unknown-endpoint"

    def test_typed_endpoint_error_is_http_400(self, http_service):
        _, base = http_service
        envelope = encode_request(
            CheckRequest(url="https://x.example/a.js", phase="bogus")
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{base}/v1/query", envelope)
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read())
        assert payload["error"]["code"] == "unknown-phase"

    def test_unknown_path_is_404(self, http_service):
        _, base = http_service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{base}/v2/everything")
        assert excinfo.value.code == 404
