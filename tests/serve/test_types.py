"""Wire-type round-trips, protocol errors, and schema pinning."""

import json

import pytest

from repro.serve import (
    ENDPOINTS,
    SERVE_SCHEMAS,
    SERVE_VERSION,
    ArtifactRequest,
    BatchCheckRequest,
    BatchClassifyRequest,
    CheckRequest,
    CheckResponse,
    ClassifyRequest,
    ServeError,
    ServeProtocolError,
    ServeResult,
    SnapshotRequest,
    decode_request,
    encode_request,
    result_line,
)


class TestRoundTrip:
    @pytest.mark.parametrize("request_obj", [
        CheckRequest(url="https://ads.example/pixel.js"),
        CheckRequest(
            url="wss://t.example/sock",
            resource_type="websocket",
            first_party_url="https://news.example/",
            phase="live",
        ),
        ClassifyRequest(domain="tracker.example.com"),
        ArtifactRequest(stage="table1"),
        ArtifactRequest(stage="figure3", fingerprint="abc123"),
        SnapshotRequest(),
        BatchCheckRequest(items=(
            CheckRequest(url="https://a.example/x.js"),
            CheckRequest(url="wss://b.example/y", resource_type="websocket"),
        )),
        BatchClassifyRequest(items=(
            ClassifyRequest(domain="a.example"),
            ClassifyRequest(domain="b.example"),
        )),
    ])
    def test_encode_decode_round_trip(self, request_obj):
        envelope = encode_request(request_obj)
        assert envelope["v"] == SERVE_VERSION
        # The envelope survives JSON serialization (the wire).
        rehydrated = decode_request(json.loads(json.dumps(envelope)))
        assert rehydrated == request_obj

    def test_envelope_endpoint_names_match_registry(self):
        for name, (request_type, _) in ENDPOINTS.items():
            if request_type is BatchCheckRequest:
                request = BatchCheckRequest()
            elif request_type is BatchClassifyRequest:
                request = BatchClassifyRequest()
            elif request_type is SnapshotRequest:
                request = SnapshotRequest()
            elif request_type is ArtifactRequest:
                request = ArtifactRequest(stage="table1")
            elif request_type is ClassifyRequest:
                request = ClassifyRequest(domain="x.example")
            else:
                request = CheckRequest(url="https://x.example/")
            assert encode_request(request)["endpoint"] == name

    def test_missing_body_defaults_apply(self):
        request = decode_request({"endpoint": "snapshot", "v": 1})
        assert request == SnapshotRequest()


class TestProtocolErrors:
    def _code(self, envelope):
        with pytest.raises(ServeProtocolError) as excinfo:
            decode_request(envelope)
        return excinfo.value.code

    def test_non_object_envelope(self):
        assert self._code([1, 2]) == "bad-request"

    def test_version_mismatch(self):
        assert self._code(
            {"endpoint": "check", "v": 99, "body": {"url": "x"}}
        ) == "version-mismatch"

    def test_unknown_endpoint(self):
        assert self._code({"endpoint": "frobnicate", "v": 1}) == (
            "unknown-endpoint"
        )

    def test_unknown_field_rejected(self):
        code = self._code({
            "endpoint": "check", "v": 1,
            "body": {"url": "x", "verbose": True},
        })
        assert code == "bad-request"

    def test_missing_required_field_rejected(self):
        assert self._code(
            {"endpoint": "classify", "v": 1, "body": {}}
        ) == "bad-request"

    def test_batch_items_must_be_array(self):
        assert self._code({
            "endpoint": "batch_check", "v": 1, "body": {"items": "nope"},
        }) == "bad-request"

    def test_nested_item_fields_validated(self):
        assert self._code({
            "endpoint": "batch_check", "v": 1,
            "body": {"items": [{"url": "x", "bogus": 1}]},
        }) == "bad-request"

    def test_non_request_rejected_by_encode(self):
        with pytest.raises(ServeProtocolError):
            encode_request(object())


class TestResultLine:
    def _result(self):
        return ServeResult(
            endpoint="check",
            fingerprint="cafe0123",
            ok=True,
            body=CheckResponse(
                url="https://x.example/a.js", resource_type="script",
                phase="live", matched=True, blocked=True,
                rule="/a.js", exception_rule="", list_name="easylist-scaled",
                wrb_suppressed=False, pre58_blocked=True,
                post58_blocked=True,
            ),
        )

    def test_line_is_canonical_json(self):
        line = result_line(self._result())
        payload = json.loads(line)
        assert payload["endpoint"] == "check"
        assert payload["v"] == SERVE_VERSION
        assert payload["fingerprint"] == "cafe0123"
        assert payload["ok"] is True
        assert payload["body"]["pre58_blocked"] is True
        # Canonical form: sorted keys, no whitespace.
        assert line == json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )

    def test_error_result_serializes_error_object(self):
        result = ServeResult(
            endpoint="check", fingerprint="cafe0123", ok=False,
            error=ServeError(code="unknown-phase", message="no such phase"),
        )
        payload = json.loads(result_line(result))
        assert payload["ok"] is False
        assert "body" not in payload
        assert payload["error"] == {
            "code": "unknown-phase", "message": "no such phase",
        }


class TestSchemas:
    def test_every_endpoint_has_a_schema(self):
        assert set(SERVE_SCHEMAS) == set(ENDPOINTS)
        for schema in SERVE_SCHEMAS.values():
            assert schema["serve_version"] == SERVE_VERSION
            for side in ("request", "response"):
                assert schema[side]["type"] == "object"
                assert schema[side]["additionalProperties"] is False

    def test_check_schema_pins_the_wire_contract(self):
        schema = SERVE_SCHEMAS["check"]
        assert schema["request"]["required"] == ["url"]
        assert set(schema["request"]["properties"]) == {
            "url", "resource_type", "first_party_url", "phase",
        }
        assert set(schema["response"]["properties"]) == {
            "url", "resource_type", "phase", "matched", "blocked",
            "rule", "exception_rule", "list_name", "wrb_suppressed",
            "pre58_blocked", "post58_blocked",
        }
        assert schema["response"]["properties"]["pre58_blocked"] == {
            "type": "boolean"
        }

    def test_batch_schema_nests_item_schema(self):
        schema = SERVE_SCHEMAS["batch_check"]
        items = schema["request"]["properties"]["items"]
        assert items["type"] == "array"
        assert items["items"] == SERVE_SCHEMAS["check"]["request"]

    def test_snapshot_schema_reports_counts_map(self):
        schema = SERVE_SCHEMAS["snapshot"]["response"]
        assert schema["properties"]["rule_counts"] == {
            "type": "object",
            "additionalProperties": {"type": "integer"},
        }
