"""Hot-swap semantics: atomicity, drain, and behavior under load."""

import threading
import time

import pytest

from repro.serve import (
    BatchCheckRequest,
    CheckRequest,
    ServeService,
    SnapshotRequest,
    SwapError,
    run_workers,
)

from tests.serve.conftest import make_snapshot


class TestSwapContract:
    def test_swap_reports_both_identities(self):
        old = make_snapshot(version=1, seed=7)
        new = make_snapshot(version=2, seed=8)
        service = ServeService(old)
        report = service.swap(new)
        assert report == {
            "old_fingerprint": old.fingerprint,
            "new_fingerprint": new.fingerprint,
            "old_version": 1,
            "new_version": 2,
        }
        assert service.snapshot is new
        assert service.swaps == 1

    def test_version_must_strictly_increase(self):
        service = ServeService(make_snapshot(version=3))
        with pytest.raises(SwapError, match="must increase"):
            service.swap(make_snapshot(version=3, seed=9))
        with pytest.raises(SwapError):
            service.swap(make_snapshot(version=2, seed=9))

    def test_responses_echo_the_new_fingerprint_after_swap(self):
        old = make_snapshot(version=1, seed=7)
        new = make_snapshot(version=2, seed=8)
        service = ServeService(old)
        before = service.handle(SnapshotRequest())
        service.swap(new)
        after = service.handle(SnapshotRequest())
        assert before.fingerprint == old.fingerprint
        assert after.fingerprint == new.fingerprint
        assert after.body.snapshot_version == 2

    def test_swap_blocks_until_inflight_leases_drain(self):
        old = make_snapshot(version=1, seed=7)
        new = make_snapshot(version=2, seed=8)
        service = ServeService(old)
        lease_held = threading.Event()
        release = threading.Event()
        swapped = threading.Event()

        def long_request():
            with service.lease() as snapshot:
                assert snapshot is old
                lease_held.set()
                assert release.wait(timeout=10.0)

        def swapper():
            service.swap(new)
            swapped.set()

        holder = threading.Thread(target=long_request)
        holder.start()
        assert lease_held.wait(timeout=10.0)
        swap_thread = threading.Thread(target=swapper)
        swap_thread.start()
        # The new snapshot is installed immediately (new requests see
        # it) but the swap call itself must still be draining.
        deadline = time.monotonic() + 10.0
        while service.snapshot is not new:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        assert not swapped.is_set()
        # Requests issued during the drain are answered by the NEW
        # snapshot — the swap never rejects or queues queries.
        during = service.handle(SnapshotRequest())
        assert during.fingerprint == new.fingerprint
        assert not swapped.is_set()
        release.set()
        holder.join(timeout=10.0)
        swap_thread.join(timeout=10.0)
        assert swapped.is_set()


class TestSwapUnderLoad:
    """Satellite: concurrent load sees old or new — never a blend."""

    def test_concurrent_queries_see_exactly_one_fingerprint_each(self):
        old = make_snapshot(version=1, seed=7)
        new = make_snapshot(version=2, seed=8)
        assert old.fingerprint != new.fingerprint
        service = ServeService(old)
        requests = []
        for index in range(400):
            if index % 5 == 0:
                requests.append(BatchCheckRequest(items=tuple(
                    CheckRequest(url=f"https://t{index}.example/{j}.js")
                    for j in range(4)
                )))
            else:
                requests.append(
                    CheckRequest(url=f"https://t{index}.example/a.js")
                )

        results = []
        errors = []

        def client():
            try:
                results.extend(run_workers(service, requests, workers=2))
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        client_thread = threading.Thread(target=client)
        client_thread.start()
        time.sleep(0.01)  # let queries start flowing
        report = service.swap(new)
        client_thread.join(timeout=60.0)
        assert not client_thread.is_alive()
        assert errors == []

        # Zero dropped queries, and every response was answered
        # entirely by one snapshot: its fingerprint is old's or new's.
        assert len(results) == len(requests)
        fingerprints = {result.fingerprint for result in results}
        assert fingerprints <= {old.fingerprint, new.fingerprint}
        assert all(result.ok for result in results)
        assert report["new_fingerprint"] == new.fingerprint
        # After the swap returns, the old snapshot is fully drained:
        # new queries must all answer with the new fingerprint.
        assert service.handle(
            SnapshotRequest()
        ).fingerprint == new.fingerprint

    def test_batches_are_atomic_across_a_swap(self):
        # A batch leased on the old snapshot finishes on it even if
        # the swap lands mid-batch; the envelope echoes one
        # fingerprint, and that is the snapshot that answered every
        # item (asserted via the per-phase rule_counts the two
        # snapshots disagree on).
        old = make_snapshot(version=1, seed=7, rules=300)
        new = make_snapshot(version=2, seed=8, rules=500)
        service = ServeService(old)
        batch = BatchCheckRequest(items=tuple(
            CheckRequest(url=f"https://b{i}.example/x.js")
            for i in range(64)
        ))
        results = []

        def client():
            for _ in range(20):
                results.append(service.handle(batch))

        threads = [threading.Thread(target=client) for _ in range(3)]
        for thread in threads:
            thread.start()
        service.swap(new)
        for thread in threads:
            thread.join(timeout=60.0)
        assert len(results) == 60
        for result in results:
            assert result.ok
            assert result.fingerprint in {old.fingerprint, new.fingerprint}
            assert len(result.body.items) == 64
