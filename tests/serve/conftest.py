"""Shared serve fixtures: one 10k snapshot, cheap custom snapshots."""

import pytest

from repro.extension import WEBREQUEST_BUG_FIX_VERSION
from repro.filters import CompiledFilterEngine
from repro.labeling import AaLabeler, DomainTagCounter
from repro.serve import ServeSnapshot, build_scale_snapshot, snapshot_fingerprint
from repro.web.filterlists import generate_filter_lists


def make_snapshot(
    *,
    version=1,
    seed=7,
    rules=400,
    artifacts=None,
    dataset_fingerprint="test-dataset",
):
    """A small snapshot built from public parts (fast: ~400 rules)."""
    lists = generate_filter_lists(rules, seed=seed)
    counter = DomainTagCounter()
    counter.observe("tracker.example.com", True)
    counter.observe("tracker.example.com", True)
    counter.observe("news.example.org", False)
    labeler = AaLabeler.from_counts(counter)
    artifacts = dict(artifacts or {})
    phase_lists = {"live": lists}
    return ServeSnapshot(
        version=version,
        fingerprint=snapshot_fingerprint(
            phase_lists=phase_lists,
            labeler=labeler,
            artifacts=artifacts,
            dataset_fingerprint=dataset_fingerprint,
        ),
        phases=("live",),
        engines={"live": CompiledFilterEngine(lists)},
        wrb_fix_version=WEBREQUEST_BUG_FIX_VERSION,
        labeler=labeler,
        tag_counter=counter,
        artifacts=artifacts,
        dataset_fingerprint=dataset_fingerprint,
    )


@pytest.fixture(scope="session")
def snapshot_10k():
    """The CI-shaped snapshot: calibrated 10k-rule synthetic EasyList."""
    return build_scale_snapshot("10k")


@pytest.fixture(scope="session")
def lists_10k():
    """The exact lists the 10k snapshot compiled (same seed + name)."""
    return generate_filter_lists(10_000, seed=2018)
