"""Worker determinism: same stream ⇒ byte-identical transcripts."""

import pytest

from repro.serve import (
    ServeService,
    generate_query_mix,
    run_workers,
    transcript_lines,
    write_transcript,
)


@pytest.fixture(scope="module")
def query_mix(lists_10k):
    return generate_query_mix(lists_10k, 150, seed=2018)


class TestQueryMix:
    def test_deterministic(self, lists_10k, query_mix):
        assert generate_query_mix(lists_10k, 150, seed=2018) == query_mix

    def test_seed_changes_the_stream(self, lists_10k, query_mix):
        assert generate_query_mix(lists_10k, 150, seed=3) != query_mix

    def test_count_respected(self, query_mix):
        assert len(query_mix) == 150

    def test_rejects_empty_stream(self, lists_10k):
        with pytest.raises(ValueError):
            generate_query_mix(lists_10k, 0)

    def test_mix_covers_every_endpoint(self, query_mix):
        names = {type(request).__name__ for request in query_mix}
        assert names == {
            "CheckRequest", "BatchCheckRequest", "ClassifyRequest",
            "ArtifactRequest", "SnapshotRequest",
        }


class TestTranscriptDeterminism:
    def test_rejects_zero_workers(self, snapshot_10k):
        with pytest.raises(ValueError):
            run_workers(ServeService(snapshot_10k), [], workers=0)

    def test_worker_count_does_not_change_the_bytes(
        self, snapshot_10k, query_mix
    ):
        # The acceptance bar: byte-identical transcripts across runs
        # AND worker counts. Each run gets a fresh service so no state
        # can leak between them.
        lines = {}
        for workers in (1, 4):
            service = ServeService(snapshot_10k)
            results = run_workers(service, query_mix, workers=workers)
            assert service.served == len(query_mix)
            lines[workers] = transcript_lines(results)
        assert lines[1] == lines[4]
        assert len(lines[1]) == len(query_mix)

    def test_rerun_is_byte_identical_on_disk(
        self, tmp_path, snapshot_10k, query_mix
    ):
        first = tmp_path / "run1.jsonl"
        second = tmp_path / "run2.jsonl"
        for path, workers in ((first, 1), (second, 3)):
            results = run_workers(
                ServeService(snapshot_10k), query_mix, workers=workers
            )
            assert write_transcript(path, results) == len(query_mix)
        assert first.read_bytes() == second.read_bytes()

    def test_verdicts_are_a_real_mix(self, snapshot_10k, query_mix):
        # Guard against a silent corpus/list mismatch (the seeded name
        # feeds the generator RNG): a healthy mix must block some
        # checks and pass others.
        results = run_workers(
            ServeService(snapshot_10k), query_mix, workers=2
        )
        assert all(result.ok for result in results)
        verdicts = [
            result.body.blocked
            for result in results
            if result.endpoint == "check"
        ]
        assert any(verdicts) and not all(verdicts)
