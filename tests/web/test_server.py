"""Tests for the SyntheticWeb facade."""

import pytest

from repro.web.server import SyntheticWeb, WebScale


def test_webscale_entity_defaults_to_sample():
    assert WebScale(sample_scale=0.1).resolved_entity_scale == 0.1
    assert WebScale(sample_scale=0.1, entity_scale=0.05).resolved_entity_scale == 0.05


def test_float_scale_shorthand(registry):
    web = SyntheticWeb(scale=0.002, registry=registry)
    assert web.scale.sample_scale == 0.002


def test_placed_sites_in_seed_list(tiny_web):
    for site in tiny_web.plan.placed_sites:
        assert tiny_web.site(site.domain) == site


def test_site_lookup_unknown_raises(tiny_web):
    with pytest.raises(KeyError):
        tiny_web.site("definitely-not-crawled.example")


def test_blueprint_accepts_domain_string(tiny_web):
    domain = tiny_web.plan.placed_sites[0].domain
    by_string = tiny_web.blueprint(domain, 0, 0)
    by_site = tiny_web.blueprint(tiny_web.site(domain), 0, 0)
    assert by_string.url == by_site.url


def test_site_count(tiny_web):
    assert tiny_web.site_count == len(tiny_web.seed_list)
    assert tiny_web.site_count > 100
