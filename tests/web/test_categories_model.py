"""Tests for categories and the registry data model."""

import pytest

from repro.web.categories import CATEGORIES, CATEGORY_BY_NAME, CATEGORY_NAMES
from repro.web.model import (
    ALL_CRAWLS,
    FIRST_PARTY,
    POST_PATCH_CRAWLS,
    PRE_PATCH_CRAWLS,
    Company,
    Role,
    SocketPairSpec,
)


def test_seventeen_categories():
    assert len(CATEGORIES) == 17  # as the paper sampled
    assert len(set(CATEGORY_NAMES)) == 17


def test_categories_have_vocabulary_and_intensity():
    for category in CATEGORIES:
        assert len(category.words) >= 5
        assert category.ad_intensity > 0
    assert CATEGORY_BY_NAME["News"].ad_intensity > CATEGORY_BY_NAME["Reference"].ad_intensity


def test_crawl_window_constants():
    assert PRE_PATCH_CRAWLS | POST_PATCH_CRAWLS == ALL_CRAWLS
    assert not PRE_PATCH_CRAWLS & POST_PATCH_CRAWLS


class TestCompany:
    def test_default_hosts_derived_from_domain(self):
        company = Company(key="x", domain="example-tracker.com",
                          role=Role.ANALYTICS)
        assert company.resolved_script_host() == "cdn.example-tracker.com"
        assert company.resolved_ws_host() == "ws.example-tracker.com"
        assert company.beacon_host() == "px.example-tracker.com"

    def test_cloudfront_host_overrides_script_not_beacon(self):
        company = Company(key="x", domain="tenant.com", role=Role.ANALYTICS,
                          cloudfront_host="d123.cloudfront.net")
        assert company.resolved_script_host() == "d123.cloudfront.net"
        assert company.beacon_host() == "px.tenant.com"

    def test_explicit_hosts_respected(self):
        company = Company(key="x", domain="t.com", role=Role.LIVE_CHAT,
                          script_host="js.t.com", ws_host="sock.t.com")
        assert company.resolved_script_host() == "js.t.com"
        assert company.resolved_ws_host() == "sock.t.com"

    def test_frozen(self):
        company = Company(key="x", domain="t.com", role=Role.CDN)
        with pytest.raises(Exception):
            company.domain = "other.com"


class TestSocketPairSpec:
    def test_defaults(self):
        spec = SocketPairSpec(pair_id="p", initiator=FIRST_PARTY,
                              receiver="intercom")
        assert spec.crawls == ALL_CRAWLS
        assert spec.sockets_per_page == 1
        assert not spec.scale_exempt

    def test_hashable(self):
        spec = SocketPairSpec(pair_id="p", initiator="a", receiver="b")
        assert hash(spec)
