"""Tests for anchored/gated deployment activation in the generator."""

from repro.web.planner import ANCHOR_PER_CRAWL


def _anchored_site(web):
    """A site hosting a per-crawl-anchored deployment with a window."""
    for sp in web.plan.site_plans.values():
        for d in sp.deployments:
            if d.anchor == ANCHOR_PER_CRAWL and len(d.crawls) < 4:
                return sp.site, d
    raise AssertionError("no anchored windowed deployment found")


def test_anchored_deployment_fires_on_homepage_every_window_crawl(tiny_web):
    site, deployment = _anchored_site(tiny_web)
    for crawl in sorted(deployment.crawls):
        page = tiny_web.blueprint(site, 0, crawl)
        urls = [p.ws_url for n in page.all_nodes() for p in n.sockets]
        assert deployment.ws_url in urls or any(
            deployment.ws_url == u for u in urls
        ), (site.domain, crawl)


def test_anchored_deployment_silent_outside_window(tiny_web):
    site, deployment = _anchored_site(tiny_web)
    outside = set(range(4)) - set(deployment.crawls)
    for crawl in outside:
        page = tiny_web.blueprint(site, 0, crawl)
        urls = [p.ws_url for n in page.all_nodes() for p in n.sockets]
        assert deployment.ws_url not in urls


def test_ambient_gating_is_site_stable(tiny_web):
    """An ambient deployment is either on or off for a whole crawl."""
    ambient_sites = [
        (sp.site, d)
        for sp in tiny_web.plan.site_plans.values()
        for d in sp.deployments
        if d.deployment_id.startswith("ambient:")
    ][:10]
    assert ambient_sites
    for site, deployment in ambient_sites:
        for crawl in range(4):
            active_pages = sum(
                any(p.ws_url == deployment.ws_url
                    for n in tiny_web.blueprint(site, i, crawl).all_nodes()
                    for p in n.sockets)
                for i in range(6)
            )
            # Either the gate is closed (0 pages) or open (several, at
            # page probability 0.55 over 6 pages).
            assert active_pages == 0 or active_pages >= 1


def test_oct_growth_absent_before_october(tiny_web):
    growth_sites = [
        (sp.site, d)
        for sp in tiny_web.plan.site_plans.values()
        for d in sp.deployments
        if d.deployment_id.startswith("growth:")
    ][:5]
    assert growth_sites
    for site, deployment in growth_sites:
        for crawl in (0, 1, 2):
            page = tiny_web.blueprint(site, 0, crawl)
            urls = [p.ws_url for n in page.all_nodes() for p in n.sockets]
            assert deployment.ws_url not in urls
