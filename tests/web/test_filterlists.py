"""Tests for the synthetic EasyList / EasyPrivacy builders."""

from repro.net.http import ResourceType
from repro.web.filterlists import (
    build_easylist_text,
    build_easyprivacy_text,
    build_filter_engine,
    build_filter_lists,
)

PAGE = "https://somepublisher.example/"


def test_lists_parse_cleanly(registry):
    for filter_list in build_filter_lists(registry):
        assert len(filter_list) > 20
        assert not filter_list.skipped_lines


def test_easylist_covers_ad_exchanges(registry):
    engine = build_filter_engine(registry)
    assert engine.would_block(
        "https://securepubads.doubleclick.net/ads/tag.js",
        ResourceType.SCRIPT, PAGE,
    )
    assert engine.would_block(
        "https://cdn.rubiconproject.com/bid/request",
        ResourceType.XHR, PAGE,
    )


def test_easyprivacy_covers_tracker_beacons_not_widgets(registry):
    engine = build_filter_engine(registry)
    # Intercom's beacon is listed…
    assert engine.would_block(
        "https://px.intercom.io/track/beacon.gif", ResourceType.IMAGE, PAGE
    )
    # …but its chat widget is functional code no list touches.
    assert not engine.would_block(
        "https://cdn.intercom.io/widget/chat.js", ResourceType.SCRIPT, PAGE
    )


def test_lockerdome_cdn_unlisted(registry):
    """The §4.3 finding: creatives on cdn1.lockerdome.com slip through."""
    engine = build_filter_engine(registry)
    result = engine.match(
        "https://cdn1.lockerdome.com/uploads/ad1234.jpg",
        ResourceType.IMAGE, PAGE,
    )
    assert not result.blocked
    # While lockerdome's own script host is blocked:
    assert engine.would_block(
        "https://cdn.lockerdome.com/sdk/app.js", ResourceType.SCRIPT, PAGE
    )


def test_exception_rules_present(registry):
    engine = build_filter_engine(registry)
    result = engine.match(
        "https://www.google.com/recaptcha/api.js", ResourceType.SCRIPT, PAGE
    )
    assert not result.blocked


def test_headers_and_text_shape(registry):
    easylist = build_easylist_text(registry)
    easyprivacy = build_easyprivacy_text(registry)
    assert easylist.startswith("[Adblock Plus 2.0]")
    assert "! Title: EasyList" in easylist
    assert "! Title: EasyPrivacy" in easyprivacy
    assert "||doubleclick.net^$third-party" in easylist
    assert easylist != easyprivacy


def test_benign_sites_not_blocked(registry):
    engine = build_filter_engine(registry)
    assert not engine.would_block(
        "https://cdnjs.cloudflare.com/ajax/libs/jquery.min.js",
        ResourceType.SCRIPT, PAGE,
    )
    assert not engine.would_block(
        "https://www.somepublisher.example/static/app.js",
        ResourceType.SCRIPT, PAGE,
    )
