"""Tests for the ecosystem planner."""

import pytest

from repro.web.alexa import AlexaUniverse
from repro.web.planner import EcosystemPlanner


@pytest.fixture(scope="module")
def plan(registry):
    universe = AlexaUniverse(2017)
    return EcosystemPlanner(registry, universe, scale=0.03, seed=2017).build()


def test_plan_deterministic(registry):
    universe = AlexaUniverse(2017)
    a = EcosystemPlanner(registry, universe, scale=0.03).build()
    b = EcosystemPlanner(registry, universe, scale=0.03).build()
    assert set(a.site_plans) == set(b.site_plans)
    first = next(iter(a.site_plans))
    assert a.site_plans[first].deployments == b.site_plans[first].deployments


def test_reserved_publishers_placed(plan):
    for domain in ("acenterforrecovery.com", "vatit.com", "slither.io",
                   "sportingindex.com", "simpleheat-demo.com"):
        assert domain in plan.site_plans, domain


def test_every_tail_initiator_deployed(plan, registry):
    deployed = {
        d.initiator_key
        for sp in plan.site_plans.values()
        for d in sp.deployments
    }
    for tail in registry.tail_initiators:
        assert tail.company.key in deployed


def test_scaling_shrinks_sites(registry):
    universe = AlexaUniverse(2017)
    small = EcosystemPlanner(registry, universe, scale=0.02).build()
    large = EcosystemPlanner(registry, universe, scale=0.2).build()
    assert len(small.site_plans) < len(large.site_plans)


def test_anchored_deployments_exist(plan):
    anchors = [
        d.anchor
        for sp in plan.site_plans.values()
        for d in sp.deployments
        if d.anchor
    ]
    assert "per_crawl" in anchors
    assert "once" in anchors


def test_once_anchor_crawl_within_window(plan):
    for sp in plan.site_plans.values():
        for d in sp.deployments:
            if d.anchor == "once":
                assert d.anchor_crawl in d.crawls


def test_probabilities_valid(plan):
    for sp in plan.site_plans.values():
        for d in sp.deployments:
            assert 0.0 < d.page_probability <= 1.0


def test_reserved_pairs_keep_full_probability(plan, registry):
    deployment = next(
        d for d in plan.site_plans["acenterforrecovery.com"].deployments
        if d.receiver_key == "intercom"
    )
    # Reserved relationships are scale-exempt: the per-site rate is the
    # Table 4 result itself.
    assert deployment.page_probability == pytest.approx(0.95)
    assert deployment.sockets_per_page == 2


def test_ws_urls_or_pools_resolved(plan):
    for sp in plan.site_plans.values():
        for d in sp.deployments:
            assert d.ws_url or d.ws_pool


def test_slither_pool_has_25_shards(plan):
    deployment = next(
        d for d in plan.site_plans["slither.io"].deployments
        if d.initiator_key == "slither"
    )
    assert len(deployment.ws_pool) == 25


def test_scale_validation(registry):
    universe = AlexaUniverse(2017)
    with pytest.raises(ValueError):
        EcosystemPlanner(registry, universe, scale=0.0)
    with pytest.raises(ValueError):
        EcosystemPlanner(registry, universe, scale=1.5)


def test_placed_sites_sorted_by_rank(plan):
    ranks = [s.rank for s in plan.placed_sites]
    assert ranks == sorted(ranks)
