"""Tests for the ambient HTTP ecosystem data."""

from collections import defaultdict

from repro.web.ambient import all_ambient_specs, cloudfront_ambient_specs


def test_pool_size_and_uniqueness():
    specs = all_ambient_specs()
    keys = [s.company.key for s in specs]
    assert len(keys) == len(set(keys))
    assert len(specs) >= 50


def test_cloudfront_tenants_are_eleven():
    # 11 ambient tenants + luckyorange + freshrelevance = the paper's
    # 13 manually mapped Cloudfront subdomains.
    tenants = cloudfront_ambient_specs()
    assert len(tenants) == 11
    hosts = {t.company.cloudfront_host for t in tenants}
    assert len(hosts) == 11
    assert all(h.endswith(".cloudfront.net") for h in hosts)


def test_blockable_share_bounds():
    for spec in all_ambient_specs():
        assert 0.0 <= spec.blockable_share <= 1.0
        if spec.company.aa_expected:
            assert spec.blockable_share > 0.2, spec.company.key
        else:
            assert spec.blockable_share == 0.0, spec.company.key


def test_aa_companies_carry_rules():
    for spec in all_ambient_specs():
        rules = spec.company.easylist_rules + spec.company.easyprivacy_rules
        if spec.company.aa_expected:
            assert rules, spec.company.key
        else:
            assert not rules, spec.company.key


def test_exchanges_have_chain_children():
    exchanges = [s for s in all_ambient_specs() if s.chains_children > 0]
    assert len(exchanges) >= 15
    for spec in exchanges:
        assert spec.company.role.value in ("ad_exchange", "ad_network")


def test_analytic_mix_shape():
    """The pool's weighted resource mix should approximate Table 5's
    HTTP received-type shares (scripts ~27%, images ~21%, HTML ~12%)."""
    totals = defaultdict(float)
    weight_sum = 0.0
    for spec in all_ambient_specs():
        if not spec.company.aa_expected:
            continue
        mix_sum = sum(w for _, w in spec.company.http_mix)
        for kind, weight in spec.company.http_mix:
            totals[kind] += spec.deploy_weight * weight / mix_sum
        weight_sum += spec.deploy_weight
    shares = {k: v / weight_sum for k, v in totals.items()}
    assert 0.15 < shares["script"] < 0.40
    assert 0.10 < shares["image"] < 0.35
    assert 0.05 < shares.get("sub_frame", 0) < 0.25
    assert shares.get("xmlhttprequest", 0) < 0.08
