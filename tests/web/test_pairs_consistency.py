"""Generation-side self-checks: the pair specs must encode the paper.

These tests verify the *registry data* against the published tables —
they catch silent drift in the calibration constants without running a
crawl.
"""

from collections import defaultdict

from repro.experiments import expected
from repro.web.model import FIRST_PARTY
from repro.web.pairs import all_static_pairs


def _initiator_aa_receiver_fans(registry):
    """initiator key → set of A&A receiver keys, from the spec table."""
    fans = defaultdict(set)
    for spec in registry.socket_specs:
        if spec.initiator in (FIRST_PARTY,) or spec.initiator.startswith("TAIL"):
            continue
        receiver = spec.receiver
        if receiver == FIRST_PARTY or receiver.startswith("TAIL:"):
            continue
        company = registry.companies.get(receiver)
        if company is not None and company.aa_expected:
            fans[spec.initiator].add(receiver)
    return fans


def test_spread_fans_match_table2_aa_counts(registry):
    """Each major initiator's wired A&A-receiver fan equals the paper's
    Table 2 'A&A receivers' column."""
    fans = _initiator_aa_receiver_fans(registry)
    display_to_key = {
        "facebook": "facebook", "doubleclick": "doubleclick",
        "google": "google", "youtube": "youtube", "hotjar": "hotjar",
        "addthis": "addthis", "googlesyndication": "googlesyndication",
        "adnxs": "adnxs",
        "inspectlet": "inspectlet", "pusher": "pusher",
    }
    for name, key in display_to_key.items():
        paper_total, paper_aa, _ = expected.PAPER_TABLE2[name]
        wired = len(fans[key])
        assert wired == paper_aa, (name, wired, paper_aa)


def test_tail_receiver_counts_close_the_table3_gap(registry):
    """named A&A initiators + tail quota = the paper's Table 3 A&A
    column, receiver by receiver."""
    named = defaultdict(set)
    tails = defaultdict(int)
    for spec in registry.socket_specs:
        receiver = spec.receiver
        if receiver == FIRST_PARTY or receiver.startswith("TAIL:"):
            continue
        company = registry.companies.get(receiver)
        if company is None or not company.aa_expected:
            continue
        initiator_company = registry.companies.get(spec.initiator)
        if spec.pair_id.startswith("tail:"):
            tails[receiver] += 1
        elif (spec.initiator != FIRST_PARTY and initiator_company is not None
              and initiator_company.aa_expected):
            named[receiver].add(spec.initiator)
    paper_key = {
        "intercom": "intercom", "33across": "33across", "zopim": "zopim",
        "realtime": "realtime", "smartsupp": "smartsupp",
        "feedjit": "feedjit", "inspectlet": "inspectlet",
        "pusher": "pusher", "disqus": "disqus", "hotjar": "hotjar",
        "freshrelevance": "freshrelevance", "lockerdome": "lockerdome",
        "velaro": "velaro", "truconversion": "truconversion",
    }
    for name, key in paper_key.items():
        _, paper_aa, _ = expected.PAPER_TABLE3[name]
        wired = len(named[key]) + tails[key]
        assert wired == paper_aa, (name, wired, paper_aa)


def test_simpleheatmaps_has_no_aa_initiators(registry):
    """Table 3's oddest row: one initiator, zero A&A."""
    for spec in registry.socket_specs:
        if spec.receiver == "simpleheatmaps":
            assert spec.initiator == FIRST_PARTY


def test_full_scale_socket_budgets_near_paper():
    """At scale 1.0 the spec table's socket budgets track the paper's
    Table 3 counts within a factor of ~2.

    The calibration deliberately trades some absolute-count fidelity
    for Table 1's share structure: publisher-initiated chat mass was
    boosted to reproduce the %A&A-received vs %A&A-initiated gap, so
    chat receivers run up to ~1.9x their published totals.
    """
    budgets = defaultdict(float)
    for spec in all_static_pairs():
        if spec.receiver.startswith("TAIL:") or spec.receiver == FIRST_PARTY:
            continue
        expected_sockets = (spec.sites * 15 * len(spec.crawls)
                            * spec.page_probability * spec.sockets_per_page)
        budgets[spec.receiver] += expected_sockets
    for name, (_, _, paper_sockets) in expected.PAPER_TABLE3.items():
        key = name
        if key not in budgets or paper_sockets < 300:
            continue
        ratio = budgets[key] / paper_sockets
        assert 0.45 < ratio < 2.1, (name, budgets[key], paper_sockets)
