"""Tests for page-blueprint generation."""

from repro.net.http import ResourceType
from repro.web.blueprint import PageBlueprint


def _socket_site(web):
    domain = "acenterforrecovery.com"
    return web.plan.site_plans[domain].site


def test_blueprint_deterministic(tiny_web):
    site = _socket_site(tiny_web)
    a = tiny_web.blueprint(site, 0, 0)
    b = tiny_web.blueprint(site, 0, 0)
    assert [n.url for n in a.all_nodes()] == [n.url for n in b.all_nodes()]
    assert a.socket_count == b.socket_count


def test_pages_differ(tiny_web):
    site = _socket_site(tiny_web)
    home = tiny_web.blueprint(site, 0, 0)
    article = tiny_web.blueprint(site, 3, 0)
    assert home.url != article.url
    assert article.url.endswith("/article/3")


def test_homepage_links_are_same_site(tiny_web):
    site = _socket_site(tiny_web)
    page = tiny_web.blueprint(site, 0, 0)
    assert len(page.links) >= 15
    assert all(site.domain in link for link in page.links)


def test_first_party_resources_present(tiny_web):
    site = tiny_web.seed_list.sites[0]
    page = tiny_web.blueprint(site, 0, 0)
    urls = [n.url for n in page.all_nodes()]
    assert any("/static/styles.css" in u for u in urls)
    assert any("/static/app.js" in u for u in urls)


def test_ambient_vendors_stable_across_pages(tiny_web):
    site = tiny_web.seed_list.sites[1]
    profile = tiny_web.generator.site_ambient_profile(site)
    assert profile == tiny_web.generator.site_ambient_profile(site)
    assert 2 <= len(profile) <= 16


def test_reserved_publisher_opens_sockets(tiny_web):
    site = _socket_site(tiny_web)
    page = tiny_web.blueprint(site, 0, 0)
    assert page.socket_count >= 1
    plans = [p for n in page.all_nodes() for p in n.sockets]
    assert any("intercom" in p.ws_url for p in plans)


def test_first_party_socket_is_inline_with_widget_child(tiny_web):
    site = _socket_site(tiny_web)
    page = tiny_web.blueprint(site, 0, 0)
    inline_nodes = [n for n in page.all_nodes() if n.inline and n.sockets]
    assert inline_nodes
    node = inline_nodes[0]
    # The vendor's widget assets load from the inline bootstrap.
    assert any(
        "intercom" in child.url for child in node.children
    )


def test_deployment_outside_window_absent(tiny_web):
    # simpleheat-demo.com hosts simpleheatmaps only in crawls {1, 3}.
    site = tiny_web.plan.site_plans["simpleheat-demo.com"].site
    active = tiny_web.blueprint(site, 0, 1).socket_count
    inactive = tiny_web.blueprint(site, 0, 0).socket_count
    assert active >= 1
    assert inactive == 0


def test_content_fragment_rendered(tiny_web):
    site = tiny_web.seed_list.sites[0]
    page = tiny_web.blueprint(site, 0, 0)
    assert "<p>" in page.dom_html  # article body fragment


def test_plain_site_has_no_sockets(tiny_web):
    plain = next(
        s for s in tiny_web.seed_list.sites
        if s.domain not in tiny_web.plan.site_plans
    )
    for crawl in range(4):
        assert tiny_web.blueprint(plain, 0, crawl).socket_count == 0


def test_beacons_render_on_service_scripts(tiny_web):
    site = _socket_site(tiny_web)
    page = tiny_web.blueprint(site, 0, 0)
    images = [
        n for n in page.all_nodes()
        if n.resource_type in (ResourceType.IMAGE, ResourceType.PING)
        and "intercom" in n.url
    ]
    assert images  # the A&A-label-earning beacon


def test_blueprint_is_page_blueprint(tiny_web):
    assert isinstance(
        tiny_web.blueprint(tiny_web.seed_list.sites[0], 0, 0), PageBlueprint
    )
