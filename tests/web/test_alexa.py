"""Tests for the Alexa universe and seed-list sampling."""

from repro.util.rng import RngStream
from repro.web.alexa import (
    PAPER_PER_CATEGORY,
    UNIVERSE_SIZE,
    AlexaUniverse,
    build_seed_list,
)
from repro.web.categories import CATEGORY_NAMES


def test_site_at_deterministic():
    universe = AlexaUniverse(7)
    assert universe.site_at(42) == universe.site_at(42)
    assert AlexaUniverse(7).site_at(42).domain == universe.site_at(42).domain


def test_site_domains_unique_over_prefix():
    universe = AlexaUniverse(1)
    domains = {universe.site_at(r).domain for r in range(1, 3000)}
    assert len(domains) == 2999


def test_site_category_from_known_set():
    universe = AlexaUniverse(1)
    for rank in (1, 500, 999_999):
        assert universe.site_at(rank).category in CATEGORY_NAMES


def test_homepage_url():
    site = AlexaUniverse(1).site_at(10)
    assert site.homepage == f"https://www.{site.domain}/"


def test_top_of_category_is_rank_ordered():
    universe = AlexaUniverse(1)
    sites = universe.top_of_category("News", 10)
    assert len(sites) == 10
    assert all(s.category == "News" for s in sites)
    assert [s.rank for s in sites] == sorted(s.rank for s in sites)


def test_random_sample_distinct():
    universe = AlexaUniverse(1)
    sample = universe.random_sample(50, RngStream(1, "t"))
    assert len({s.rank for s in sample}) == 50
    assert all(1 <= s.rank <= UNIVERSE_SIZE for s in sample)


def test_seed_list_scaled_sizes():
    universe = AlexaUniverse(1)
    seeds = build_seed_list(universe, scale=0.001)
    assert seeds.per_category == max(1, round(PAPER_PER_CATEGORY * 0.001))
    # 17 categories × per_category + random sample, minus duplicates.
    upper = 17 * seeds.per_category + seeds.random_count
    assert 0 < len(seeds) <= upper


def test_seed_list_sorted_and_unique():
    seeds = build_seed_list(AlexaUniverse(1), scale=0.001)
    ranks = [s.rank for s in seeds.sites]
    assert ranks == sorted(ranks)
    assert len(set(seeds.domains)) == len(seeds.domains)


def test_extra_sites_merged():
    from repro.web.alexa import Site

    extra = Site(rank=123_456, domain="reserved-pub.com", category="News")
    seeds = build_seed_list(AlexaUniverse(1), scale=0.001, extra_sites=[extra])
    assert "reserved-pub.com" in seeds.domains


def test_covers_all_categories():
    seeds = build_seed_list(AlexaUniverse(1), scale=0.003)
    present = {s.category for s in seeds.sites}
    assert present == set(CATEGORY_NAMES)
