"""Tests for the company registry — the calibration contract."""

from repro.web.model import FIRST_PARTY
from repro.web.pairs import TAIL_RECEIVER_QUOTAS


class TestInitiatorWindows:
    """The registry's activity windows must encode Table 1's counts."""

    def _aa_active(self, registry, crawl):
        windows = registry.initiator_windows()
        return {
            key for key, crawls in windows.items()
            if crawl in crawls and registry.companies[key].aa_expected
        }

    def test_per_crawl_unique_aa_initiators(self, registry):
        expected = {0: 75, 1: 63, 2: 19, 3: 23}
        for crawl, count in expected.items():
            assert len(self._aa_active(registry, crawl)) == count

    def test_union_is_94(self, registry):
        union = set()
        for crawl in range(4):
            union |= self._aa_active(registry, crawl)
        assert len(union) == 94

    def test_56_disappeared(self, registry):
        gone = self._aa_active(registry, 0) - self._aa_active(registry, 3)
        assert len(gone) == 56

    def test_majors_are_pre_patch_only(self, registry):
        windows = registry.initiator_windows()
        for key in ("doubleclick", "facebook", "google", "addthis",
                    "googlesyndication", "adnxs", "sharethis", "twitter"):
            assert windows[key] == frozenset({0, 1}), key


class TestStructure:
    def test_no_dangling_references(self, registry):
        registry.validate()

    def test_thirteen_cloudfront_tenants(self, registry):
        assert len(registry.cloudfront_truth) == 13

    def test_twenty_aa_receiver_companies(self, registry):
        receivers = {
            spec.receiver for spec in registry.socket_specs
            if spec.receiver != FIRST_PARTY
            and not spec.receiver.startswith("TAIL:")
            and registry.companies[spec.receiver].aa_expected
        }
        assert len(receivers) == 20

    def test_tail_initiators_are_aa_expected(self, registry):
        assert len(registry.tail_initiators) == 65
        for tail in registry.tail_initiators:
            assert tail.company.aa_expected

    def test_companies_have_unique_domains(self, registry):
        domains = [c.domain for c in registry.companies.values()]
        assert len(domains) == len(set(domains))

    def test_tail_quota_pairs_exist(self, registry):
        for receiver, quota in TAIL_RECEIVER_QUOTAS:
            pairs = [
                spec for spec in registry.socket_specs
                if spec.pair_id.startswith("tail:")
                and spec.receiver == receiver
            ]
            assert len(pairs) == quota, receiver

    def test_every_spec_has_active_crawl(self, registry):
        for spec in registry.socket_specs:
            assert spec.crawls

    def test_saas_receivers_not_aa(self, registry):
        for domain in registry.saas_receiver_domains[:10]:
            company = registry.by_domain[domain]
            assert not company.aa_expected


class TestCompanyResolution:
    def test_cloudfront_tenant_script_host(self, registry):
        luckyorange = registry.company("luckyorange")
        assert luckyorange.resolved_script_host().endswith(".cloudfront.net")
        # Beacons stay on the tenant's own domain (mapping depends on it).
        assert luckyorange.beacon_host().endswith("luckyorange.com")

    def test_ws_host_same_registrable_domain(self, registry):
        from repro.net.domains import registrable_domain

        for key in ("intercom", "zopim", "pusher", "33across", "hotjar"):
            company = registry.company(key)
            assert registrable_domain(company.resolved_ws_host()) == company.domain
