"""Additional planner coverage: zones, packing, entity scaling."""


from repro.web.alexa import AlexaUniverse
from repro.web.planner import EcosystemPlanner, _draw_rank
from repro.util.rng import RngStream


def test_zone_ranges():
    rng = RngStream(1, "zones")
    for _ in range(200):
        assert 1 <= _draw_rank("top", rng) <= 10_000
        assert 10_001 <= _draw_rank("mid", rng) <= 100_000
        assert 100_001 <= _draw_rank("tail", rng) <= 1_000_000


def test_mixed_zone_head_heavy():
    rng = RngStream(1, "mix")
    draws = [_draw_rank("mixed", rng) for _ in range(3000)]
    top = sum(1 for r in draws if r <= 10_000) / len(draws)
    tail = sum(1 for r in draws if r > 100_000) / len(draws)
    assert 0.18 < top < 0.32
    assert tail < 0.06


def test_unknown_zone_falls_back_to_mixed():
    rng = RngStream(1, "fb")
    assert 1 <= _draw_rank("bogus-zone", rng) <= 1_000_000


def test_packing_reduces_spread_sites(registry):
    universe = AlexaUniverse(2017)
    plan = EcosystemPlanner(registry, universe, scale=0.05).build()
    facebook_sites = {
        domain
        for domain, sp in plan.site_plans.items()
        if any(d.initiator_key == "facebook" and
               d.deployment_id.startswith("spread:")
               for d in sp.deployments)
    }
    # facebook has 34 fan-out receivers, packed ~4 per site.
    assert 7 <= len(facebook_sites) <= 12


def test_multiple_deployments_can_share_a_site(registry):
    universe = AlexaUniverse(2017)
    plan = EcosystemPlanner(registry, universe, scale=0.05).build()
    assert any(len(sp.deployments) >= 3 for sp in plan.site_plans.values())


def test_entity_scale_preserves_every_aa_receiver(registry):
    universe = AlexaUniverse(2017)
    plan = EcosystemPlanner(registry, universe, scale=0.02).build()
    receivers = {
        d.receiver_key
        for sp in plan.site_plans.values()
        for d in sp.deployments
        if d.receiver_key
    }
    aa_receivers = {
        key for key in receivers
        if registry.companies[key].aa_expected
    }
    assert len(aa_receivers) == 20


def test_growth_cohort_is_october_only(registry):
    universe = AlexaUniverse(2017)
    plan = EcosystemPlanner(registry, universe, scale=0.05).build()
    growth = [
        d
        for sp in plan.site_plans.values()
        for d in sp.deployments
        if d.deployment_id.startswith("growth:")
    ]
    assert growth
    assert all(d.crawls == frozenset({3}) for d in growth)
