"""Set-arithmetic checks on the receiver activity windows."""

from repro.web.companies import (
    CRAWL_MOODS,
    CRAWLS_LIVECHATINC,
    CRAWLS_SESSIONCAM,
    CRAWLS_SIMPLEHEATMAPS,
    CRAWLS_TAWK,
    CRAWLS_TRUCONVERSION,
    CRAWLS_USERREPLAY,
    CRAWLS_VELARO,
)

ALWAYS_ON = 13  # intercom … luckyorange
OCCASIONAL = (
    CRAWLS_VELARO, CRAWLS_TRUCONVERSION, CRAWLS_SIMPLEHEATMAPS,
    CRAWLS_SESSIONCAM, CRAWLS_LIVECHATINC, CRAWLS_TAWK, CRAWLS_USERREPLAY,
)


def test_receiver_counts_per_crawl_match_table1():
    """13 always-on + the occasional windows must give 16/18/15/18."""
    expected = {0: 16, 1: 18, 2: 15, 3: 18}
    for crawl, count in expected.items():
        active = ALWAYS_ON + sum(crawl in window for window in OCCASIONAL)
        assert active == count, crawl


def test_union_of_receivers_is_twenty():
    assert ALWAYS_ON + len(OCCASIONAL) == 20


def test_crawl_moods_bracket_the_patch():
    # Chrome 58 shipped 2017-04-19.
    assert [m.chrome_major for m in CRAWL_MOODS] == [57, 57, 58, 58]
    pre = [m for m in CRAWL_MOODS if m.chrome_major == 57]
    post = [m for m in CRAWL_MOODS if m.chrome_major == 58]
    assert all(m.start_date < "2017-04-19" for m in pre)
    assert all(m.start_date > "2017-04-19" for m in post)


def test_mood_labels_match_paper_rows():
    assert [m.label for m in CRAWL_MOODS] == [
        "Apr 02-05, 2017", "Apr 11-16, 2017",
        "May 07-12, 2017", "Oct 12-16, 2017",
    ]
