"""Tests for payload profiles."""

import json

import pytest

from repro.net.useragent import default_profile
from repro.net.websocket import FrameDirection, OpCode
from repro.util.rng import RngStream
from repro.web.payloads import PROFILES, PayloadContext, render_profile


def _ctx(seed=1, **overrides):
    defaults = dict(
        device=default_profile(57),
        page_url="https://pub.example/",
        receiver_host="rt.service.com",
        cookie_value="15e6fd548826d97836f0c138",
        cookie_first_seen=1491100000.0,
        user_id="u000000000042",
        client_ip="155.33.17.68",
        dom_html="<html><head><title>T</title></head><body></body></html>",
        scroll_position=1234,
        timestamp=1491100100.0,
        rng=RngStream(seed, "payload-test"),
    )
    defaults.update(overrides)
    return PayloadContext(**defaults)


def _render_many(profile, n=200):
    frames = []
    for i in range(n):
        frames.append(render_profile(profile, _ctx(seed=i)))
    return frames


def test_unknown_profile_raises():
    with pytest.raises(KeyError):
        render_profile("nope", _ctx())


@pytest.mark.parametrize("name", sorted(PROFILES))
def test_all_profiles_render(name):
    for i in range(20):
        frames = render_profile(name, _ctx(seed=i))
        for frame in frames:
            assert frame.direction in (FrameDirection.SENT,
                                       FrameDirection.RECEIVED)
            assert isinstance(frame.payload, str)


def test_fingerprint_carries_every_item():
    frames = render_profile("fingerprint", _ctx())
    sent = next(f for f in frames if f.direction == FrameDirection.SENT)
    data = json.loads(sent.payload)["data"]
    for key in ("screen", "resolution", "viewport", "scroll_position",
                "orientation", "browser_family", "device_type",
                "first_seen"):
        assert key in data, key
    assert data["screen"] == "1920x1080"


def test_session_replay_samples_dom():
    runs = _render_many("session_replay", 300)
    with_dom = sum(
        1 for frames in runs
        if any("<html>" in f.payload for f in frames
               if f.direction == FrameDirection.SENT)
    )
    # ~25% sampling: loose band.
    assert 0.12 < with_dom / 300 < 0.40


def test_event_replay_never_sends_dom():
    for frames in _render_many("event_replay", 100):
        for frame in frames:
            if frame.direction == FrameDirection.SENT:
                assert "<html>" not in frame.payload


def test_chat_sometimes_silent_sender():
    runs = _render_many("chat", 400)
    silent = sum(
        1 for frames in runs
        if not any(f.direction == FrameDirection.SENT for f in frames)
    )
    assert 0.08 < silent / 400 < 0.32


def test_chat_receives_html_mostly():
    runs = _render_many("chat", 400)
    html = sum(
        1 for frames in runs
        if any(f.payload.startswith("<div") for f in frames
               if f.direction == FrameDirection.RECEIVED)
    )
    assert html / 400 > 0.45


def test_ad_serving_downloads_ad_urls_with_metadata():
    frames = render_profile("ad_serving", _ctx())
    received = next(f for f in frames if f.direction == FrameDirection.RECEIVED)
    payload = json.loads(received.payload)
    ads = payload["ads"]
    assert ads
    for ad in ads:
        # §4.3: image URLs on the unlisted CDN, captions, dimensions.
        assert ad["image"].startswith("https://cdn1.lockerdome.com/")
        assert ad["caption"]
        assert ad["width"] == 300 and ad["height"] == 250


def test_game_state_is_binary_both_ways():
    frames = render_profile("game_state", _ctx())
    assert frames
    assert all(f.opcode == OpCode.BINARY for f in frames)
    directions = {f.direction for f in frames}
    assert directions == {FrameDirection.SENT, FrameDirection.RECEIVED}


def test_binary_uplink_sends_only():
    frames = render_profile("binary_uplink", _ctx())
    assert all(f.direction == FrameDirection.SENT for f in frames)
    assert all(f.opcode == OpCode.BINARY for f in frames)


def test_silent_profile_empty():
    assert render_profile("silent", _ctx()) == []


def test_analytics_beacon_carries_ip_and_ids():
    frames = render_profile("analytics_beacon", _ctx())
    sent = next(f for f in frames if f.direction == FrameDirection.SENT)
    payload = json.loads(sent.payload)
    assert payload["ip"] == "155.33.17.68"
    assert payload["client_id"] == "15e6fd548826d97836f0c138"


def test_profiles_deterministic_for_same_ctx():
    a = render_profile("chat", _ctx(seed=5))
    b = render_profile("chat", _ctx(seed=5))
    assert a == b
