"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_check_blocked(capsys):
    assert main(["check",
                 "https://securepubads.doubleclick.net/ads/tag.js"]) == 0
    out = capsys.readouterr().out
    assert "BLOCKED" in out and "doubleclick" in out


def test_check_allowed(capsys):
    assert main(["check", "https://cdn.intercom.io/widget/chat.js"]) == 0
    assert "allowed" in capsys.readouterr().out


def test_check_websocket_type(capsys):
    assert main(["check", "wss://ws.pusher.com/socket",
                 "--type", "websocket"]) == 0
    assert "allowed" in capsys.readouterr().out


def test_check_bad_type(capsys):
    assert main(["check", "https://x.example/", "--type", "bogus"]) == 2


def test_lists_dump(capsys):
    assert main(["lists", "--list", "easylist"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("[Adblock Plus 2.0]")
    assert "doubleclick.net" in out


def test_visit_reserved_site(capsys):
    assert main(["visit", "acenterforrecovery.com", "--chrome", "57"]) == 0
    out = capsys.readouterr().out
    assert "acenterforrecovery.com" in out
    assert "⇄" in out  # at least one WebSocket in the tree


def test_visit_unknown_domain(capsys):
    assert main(["visit", "no-such-domain.example"]) == 2
    assert "unknown domain" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_lint_self_gate_passes(capsys):
    assert main(["lint", "--self"]) == 0
    out = capsys.readouterr().out
    assert "DETERMINISM" in out
    assert "no findings" in out


def test_lint_full_reports_blindspots(capsys):
    assert main(["lint", "--no-self"]) == 0
    out = capsys.readouterr().out
    assert "FL-WS-BLINDSPOT" in out
    assert "WEBREQUEST LISTENERS" in out
    assert "static verdict matches dynamic dispatch" in out


def test_visit_writes_har(tmp_path, capsys):
    har_path = tmp_path / "visit.har"
    assert main(["visit", "acenterforrecovery.com", "--chrome", "57",
                 "--har", str(har_path)]) == 0
    import json

    with open(har_path) as handle:
        har = json.load(handle)
    assert har["log"]["entries"]
    assert any(e.get("_resourceType") == "websocket"
               for e in har["log"]["entries"])
