"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_check_blocked(capsys):
    assert main(["check",
                 "https://securepubads.doubleclick.net/ads/tag.js"]) == 0
    out = capsys.readouterr().out
    # The decisive rule is the canonical first applicable match in list
    # order (/ads/tag.js…), not whichever bucket the old index walked
    # first (||doubleclick.net^…).
    assert "BLOCKED by easylist" in out and "/ads/tag.js" in out


def test_check_engines_agree(capsys):
    url = "https://securepubads.doubleclick.net/ads/tag.js"
    assert main(["check", url, "--engine", "compiled"]) == 0
    compiled_out = capsys.readouterr().out
    assert main(["check", url, "--engine", "interpreted"]) == 0
    assert capsys.readouterr().out == compiled_out


def test_check_allowed(capsys):
    assert main(["check", "https://cdn.intercom.io/widget/chat.js"]) == 0
    assert "allowed" in capsys.readouterr().out


def test_check_websocket_type(capsys):
    assert main(["check", "wss://ws.pusher.com/socket",
                 "--type", "websocket"]) == 0
    assert "allowed" in capsys.readouterr().out


def test_check_bad_type(capsys):
    assert main(["check", "https://x.example/", "--type", "bogus"]) == 2


def test_lists_dump(capsys):
    assert main(["lists", "--list", "easylist"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("[Adblock Plus 2.0]")
    assert "doubleclick.net" in out


def test_visit_reserved_site(capsys):
    assert main(["visit", "acenterforrecovery.com", "--chrome", "57"]) == 0
    out = capsys.readouterr().out
    assert "acenterforrecovery.com" in out
    assert "⇄" in out  # at least one WebSocket in the tree


def test_visit_unknown_domain(capsys):
    assert main(["visit", "no-such-domain.example"]) == 2
    assert "unknown domain" in capsys.readouterr().err


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_lint_self_gate_passes(capsys):
    assert main(["lint", "--self"]) == 0
    out = capsys.readouterr().out
    assert "DETERMINISM" in out
    assert "no findings" in out


def test_lint_self_json_schema(capsys):
    import json

    assert main(["lint", "--self", "--json"]) == 0
    lines = [ln for ln in capsys.readouterr().out.splitlines() if ln]
    assert lines  # the baselined FLOW findings are still reported
    for line in lines:
        payload = json.loads(line)
        assert set(payload) == {
            "rule", "severity", "source", "file", "line", "message",
            "fix_hint", "trace", "baseline_key",
        }
    rules = {json.loads(line)["rule"] for line in lines}
    assert "FLOW-ASYNC" in rules


def test_lint_self_output_is_byte_stable(capsys):
    assert main(["lint", "--self", "--json"]) == 0
    first = capsys.readouterr().out
    assert main(["lint", "--self", "--json"]) == 0
    assert capsys.readouterr().out == first


def test_lint_write_baseline_round_trips(tmp_path, capsys):
    import json

    target = tmp_path / "baseline.json"
    assert main(["lint", "--self", "--write-baseline",
                 "--baseline", str(target)]) == 0
    assert "wrote" in capsys.readouterr().out
    payload = json.loads(target.read_text(encoding="utf-8"))
    assert payload["baseline_format"] == 1
    # Re-linting against the just-written baseline passes the gate.
    assert main(["lint", "--self", "--baseline", str(target)]) == 0
    capsys.readouterr()


def test_lint_flow_section_renders(capsys):
    assert main(["lint", "--self"]) == 0
    out = capsys.readouterr().out
    assert "WHOLE-PROGRAM FLOW (src/repro)" in out
    assert "call edges" in out
    assert "staticlint-baseline.json" in out


def test_lint_full_reports_blindspots(capsys):
    assert main(["lint", "--no-self"]) == 0
    out = capsys.readouterr().out
    assert "FL-WS-BLINDSPOT" in out
    assert "WEBREQUEST LISTENERS" in out
    assert "static verdict matches dynamic dispatch" in out


def test_study_smoke_writes_obs_artifacts(tmp_path, capsys):
    trace = tmp_path / "study.trace.jsonl"
    metrics = tmp_path / "study.metrics.json"
    assert main(["--quiet", "study", "--preset", "smoke",
                 "--trace", str(trace),
                 "--metrics-out", str(metrics)]) == 0
    captured = capsys.readouterr()
    assert "OBSERVABILITY — per-stage timing & attribution" in captured.out
    assert "PER-CRAWL ATTRIBUTION" in captured.out
    assert f"trace written to {trace}" in captured.out
    assert f"metrics written to {metrics}" in captured.out
    # --quiet: no progress lines on stderr.
    assert "sites ·" not in captured.err
    assert trace.exists() and metrics.exists()

    # The obs subcommand re-renders the exported trace.
    assert main(["obs", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "PER-STAGE TIMING" in out
    assert "preset=smoke" in out


def test_study_progress_lines_on_stderr(capsys):
    assert main(["-v", "study", "--preset", "smoke"]) == 0
    err = capsys.readouterr().err
    assert "[study] stage: build-web" in err
    assert "[crawl 0 · Chrome 57]" in err
    assert "sockets seen" in err


def test_obs_missing_trace(tmp_path, capsys):
    assert main(["obs", str(tmp_path / "nope.jsonl")]) == 2
    assert "cannot read trace" in capsys.readouterr().err


def test_obs_rejects_non_trace_file(tmp_path, capsys):
    path = tmp_path / "not-a-trace.jsonl"
    path.write_text('{"kind": "counter", "name": "a", "value": 1}\n')
    assert main(["obs", str(path)]) == 2
    assert "no meta record" in capsys.readouterr().err


def test_quiet_and_verbose_conflict():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["-q", "-v", "study"])


def test_visit_writes_har(tmp_path, capsys):
    har_path = tmp_path / "visit.har"
    assert main(["visit", "acenterforrecovery.com", "--chrome", "57",
                 "--har", str(har_path)]) == 0
    import json

    with open(har_path) as handle:
        har = json.load(handle)
    assert har["log"]["entries"]
    assert any(e.get("_resourceType") == "websocket"
               for e in har["log"]["entries"])


class TestAnalyzeCommand:
    @pytest.fixture()
    def dataset_path(self, tiny_study, tmp_path):
        from repro.crawler.persistence import save_dataset

        path = tmp_path / "dataset.jsonl"
        save_dataset(path, tiny_study.dataset)
        return path

    def test_cold_then_warm_cache_hit(self, dataset_path, tmp_path, capsys):
        cache_dir = str(tmp_path / "cache")
        args = ["analyze", str(dataset_path), "--cache-dir", cache_dir]
        assert main(args) == 0
        first = capsys.readouterr()
        assert "analysis cache: 0 hit(s), 10 recomputed" in first.err
        assert main(args) == 0
        second = capsys.readouterr()
        assert "analysis cache: 10 hit(s), 0 recomputed" in second.err
        # The report itself is byte-identical across cold and warm runs.
        assert first.out == second.out
        assert "TABLE 1" in first.out and "FIGURE 3" in first.out

    def test_report_out_writes_file(self, dataset_path, tmp_path, capsys):
        report = tmp_path / "report.txt"
        assert main(["analyze", str(dataset_path), "--no-cache",
                     "--report-out", str(report)]) == 0
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "report written to" in captured.err
        assert "TABLE 5" in report.read_text(encoding="utf-8")

    def test_quiet_suppresses_cache_summary(self, dataset_path, tmp_path,
                                            capsys):
        assert main(["--quiet", "analyze", str(dataset_path),
                     "--cache-dir", str(tmp_path / "cache")]) == 0
        assert "analysis cache" not in capsys.readouterr().err

    def test_json_emits_artifacts(self, dataset_path, capsys):
        import json

        assert main(["analyze", str(dataset_path), "--no-cache",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["dataset"]) == 64
        assert sorted(payload["computed"]) == sorted(payload["artifacts"])
        assert payload["artifacts"]["overall"]["total_sockets"] > 0

    def test_missing_dataset_is_exit_2(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read dataset" in capsys.readouterr().err

    def test_legacy_v1_records_file_is_exit_2(self, tiny_study, tmp_path,
                                              capsys):
        from repro.crawler.persistence import save_socket_records

        path = tmp_path / "legacy.jsonl"
        save_socket_records(path, tiny_study.dataset.socket_records[:3])
        assert main(["analyze", str(path)]) == 2
        assert "cannot read dataset" in capsys.readouterr().err


class TestPerfCommands:
    """`repro perf flame|diff|check` and the obs --json/--top flags."""

    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("perf") / "smoke.trace.jsonl"
        assert main(["--quiet", "study", "--preset", "smoke",
                     "--trace", str(path)]) == 0
        return path

    def test_obs_json_schema(self, trace_path, capsys):
        import json

        assert main(["obs", str(trace_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["meta"]["preset"] == "smoke"
        assert {"ticks", "stages", "crawls", "counters",
                "histograms"} <= set(payload)

    def test_obs_top_limits_stage_rows(self, trace_path, capsys):
        import json

        assert main(["obs", str(trace_path), "--json", "--top", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["stages"]) == 2
        capsys.readouterr()
        assert main(["obs", str(trace_path), "--top", "2"]) == 0
        assert "PER-STAGE TIMING" in capsys.readouterr().out

    def test_flame_text_and_json(self, trace_path, capsys):
        import json

        assert main(["perf", "flame", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "HOT PATHS" in out and "CRITICAL PATH" in out
        assert "% attributed to self times" in out
        assert main(["perf", "flame", str(trace_path), "--json",
                     "--top", "5"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["attribution"] >= 0.95
        assert len(payload["paths"]) <= 5
        assert payload["critical_path"][0]["path"] == ["study"]

    def test_flame_missing_trace_is_exit_2(self, tmp_path, capsys):
        assert main(["perf", "flame", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_diff_of_identical_traces_is_empty(self, trace_path, capsys):
        import json

        assert main(["perf", "diff", str(trace_path),
                     str(trace_path)]) == 0
        assert "no differences" in capsys.readouterr().out
        assert main(["perf", "diff", str(trace_path), str(trace_path),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["empty"] is True
        assert payload["paths"] == [] and payload["counters"] == []

    def test_diff_missing_side_is_exit_2(self, trace_path, tmp_path,
                                         capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["perf", "diff", str(trace_path),
                     str(missing)]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_check_missing_history_is_exit_2(self, tmp_path, capsys):
        assert main(["perf", "check", "--history",
                     str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read history" in capsys.readouterr().err

    def test_check_passes_then_gates_on_2x_slowdown(self, tmp_path,
                                                    capsys):
        import json

        from repro.obs.history import append_history, records_for_payload

        history = tmp_path / "history.jsonl"
        for _ in range(5):
            append_history(history, records_for_payload(
                "parallel", {"workers_4_seconds": 1.0}, hardware="hw"))
        assert main(["perf", "check", "--history", str(history)]) == 0
        assert "no regressions" in capsys.readouterr().out

        append_history(history, records_for_payload(
            "parallel", {"workers_4_seconds": 2.0}, hardware="hw"))
        assert main(["perf", "check", "--history", str(history)]) == 5
        assert "REGRESSION" in capsys.readouterr().out
        assert main(["perf", "check", "--history", str(history),
                     "--json"]) == 5
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["regressions"][0]["ratio"] == 2.0
        # A wide-open tolerance un-gates the same history.
        assert main(["perf", "check", "--history", str(history),
                     "--tolerance", "2.0"]) == 0
        capsys.readouterr()

    def test_check_counts_corrupt_lines(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        history.write_text('{"bench": "b"}\nnot json\n')
        assert main(["perf", "check", "--history", str(history)]) == 0
        assert "2 corrupt line(s) skipped" in capsys.readouterr().out

    def test_perf_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["perf"])


class TestServeCli:
    def test_snapshot_human_summary(self, capsys):
        assert main(["serve", "snapshot"]) == 0
        out = capsys.readouterr().out
        assert "fingerprint=" in out
        assert "rules[live]   : 10000" in out

    def test_snapshot_json_envelope(self, capsys):
        import json

        assert main(["serve", "snapshot", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["endpoint"] == "snapshot"
        assert payload["body"]["rule_counts"] == {"live": 10_000}

    def test_queries_emits_decodable_envelopes(self, tmp_path, capsys):
        import json

        from repro.serve import decode_request

        out = tmp_path / "queries.jsonl"
        assert main(["serve", "queries", "--count", "25",
                     "-o", str(out)]) == 0
        lines = out.read_text().splitlines()
        assert len(lines) == 25
        for line in lines:
            decode_request(json.loads(line))  # raises on a bad envelope

    def test_script_transcript_is_stable_across_worker_counts(
        self, tmp_path, capsys
    ):
        first = tmp_path / "w1.jsonl"
        second = tmp_path / "w4.jsonl"
        assert main(["serve", "script", "--count", "60",
                     "--transcript", str(first)]) == 0
        assert main(["serve", "script", "--count", "60", "--workers", "4",
                     "--transcript", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        assert "errors=0" in capsys.readouterr().err

    def test_script_replays_a_saved_query_file(self, tmp_path, capsys):
        queries = tmp_path / "queries.jsonl"
        transcript = tmp_path / "transcript.jsonl"
        assert main(["serve", "queries", "--count", "20",
                     "-o", str(queries)]) == 0
        assert main(["serve", "script", "--queries", str(queries),
                     "--transcript", str(transcript)]) == 0
        assert len(transcript.read_text().splitlines()) == 20

    def test_script_error_envelope_exits_7(self, tmp_path, capsys):
        import json

        queries = tmp_path / "queries.jsonl"
        queries.write_text(json.dumps({
            "endpoint": "check", "v": 1,
            "body": {"url": "https://x.example/a.js", "phase": "bogus"},
        }) + "\n")
        assert main(["serve", "script", "--queries", str(queries),
                     "--transcript", str(tmp_path / "t.jsonl")]) == 7

    def test_script_malformed_query_file_is_exit_2(self, tmp_path, capsys):
        queries = tmp_path / "queries.jsonl"
        queries.write_text('{"endpoint": "frobnicate", "v": 1}\n')
        assert main(["serve", "script", "--queries", str(queries)]) == 2
        assert "bad query envelope" in capsys.readouterr().err

    def test_serve_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])
