"""Tests for the WebSocket protocol model."""

from hypothesis import given
from hypothesis import strategies as st

from repro.net.websocket import (
    FrameDirection,
    OpCode,
    WebSocketConnection,
    WebSocketFrame,
    WebSocketHandshake,
    accept_key,
    make_client_key,
)


def test_accept_key_rfc6455_vector():
    # The published test vector from RFC 6455 §1.3/§4.2.2.
    assert (
        accept_key("dGhlIHNhbXBsZSBub25jZQ==")
        == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
    )


def test_make_client_key_is_16_bytes_base64():
    key = make_client_key(b"seed")
    import base64

    assert len(base64.b64decode(key)) == 16


def test_make_client_key_deterministic():
    assert make_client_key(b"a") == make_client_key(b"a")
    assert make_client_key(b"a") != make_client_key(b"b")


def test_handshake_headers_shape():
    handshake = WebSocketHandshake(
        url="wss://ws.example.com/socket",
        client_key=make_client_key(b"x"),
        origin="https://pub.example.org",
    )
    request = handshake.request_headers()
    assert request["Upgrade"] == "websocket"
    assert request["Sec-WebSocket-Version"] == "13"
    assert request["Origin"] == "https://pub.example.org"
    response = handshake.response_headers()
    assert response["Sec-WebSocket-Accept"] == accept_key(handshake.client_key)


def test_handshake_subprotocol_propagates():
    handshake = WebSocketHandshake(
        url="wss://x/s", client_key=make_client_key(b"x"), protocol="v1.chat"
    )
    assert handshake.request_headers()["Sec-WebSocket-Protocol"] == "v1.chat"
    assert handshake.response_headers()["Sec-WebSocket-Protocol"] == "v1.chat"


def test_frame_properties():
    frame = WebSocketFrame(FrameDirection.SENT, OpCode.TEXT, "hello")
    assert frame.is_text
    assert frame.size == 5
    binary = WebSocketFrame(FrameDirection.RECEIVED, OpCode.BINARY, "\x00\x01")
    assert not binary.is_text


def test_connection_splits_directions():
    handshake = WebSocketHandshake(url="wss://x/s", client_key=make_client_key(b"k"))
    conn = WebSocketConnection(
        handshake=handshake,
        frames=[
            WebSocketFrame(FrameDirection.SENT, OpCode.TEXT, "a"),
            WebSocketFrame(FrameDirection.RECEIVED, OpCode.TEXT, "b"),
            WebSocketFrame(FrameDirection.SENT, OpCode.BINARY, "c"),
        ],
    )
    assert [f.payload for f in conn.sent_frames] == ["a", "c"]
    assert [f.payload for f in conn.received_frames] == ["b"]


@given(st.binary(min_size=1, max_size=64))
def test_accept_key_always_28_chars(data):
    key = make_client_key(data)
    assert len(accept_key(key)) == 28
