"""Tests for user-agent / device profiles."""

from repro.net.useragent import DeviceProfile, chrome_user_agent, default_profile


def test_chrome_ua_contains_version():
    ua = chrome_user_agent(57)
    assert "Chrome/57." in ua
    assert ua.startswith("Mozilla/5.0")


def test_default_profile_geometry_strings():
    profile = default_profile(58)
    assert profile.screen == "1920x1080"
    assert profile.viewport == "1920x948"
    assert profile.resolution == "1920x1080x24"
    assert "Chrome/58." in profile.user_agent


def test_profile_is_frozen():
    profile = DeviceProfile(user_agent="x")
    import dataclasses
    import pytest

    with pytest.raises(dataclasses.FrozenInstanceError):
        profile.language = "de-DE"
