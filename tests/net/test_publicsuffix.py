"""Tests for the public-suffix extractor."""

from hypothesis import given
from hypothesis import strategies as st

from repro.net.publicsuffix import public_suffix, registrable_domain


class TestPublicSuffix:
    def test_simple_tld(self):
        assert public_suffix("example.com") == "com"

    def test_multi_label_suffix(self):
        assert public_suffix("bbc.co.uk") == "co.uk"

    def test_unknown_tld_falls_back_to_last_label(self):
        assert public_suffix("thing.veryunknowntld") == "veryunknowntld"

    def test_wildcard_rule(self):
        # *.ck makes <label>.ck a public suffix…
        assert public_suffix("shop.foo.ck") == "foo.ck"

    def test_exception_rule(self):
        # …but !www.ck is an exception: its suffix is just "ck".
        assert public_suffix("www.ck") == "ck"

    def test_case_and_trailing_dot(self):
        assert public_suffix("Example.COM.") == "com"


class TestRegistrableDomain:
    def test_paper_example(self):
        # §3.2: x.doubleclick.net and y.doubleclick.net share a 2LD.
        assert registrable_domain("x.doubleclick.net") == "doubleclick.net"
        assert registrable_domain("y.doubleclick.net") == "doubleclick.net"

    def test_deep_subdomains(self):
        assert registrable_domain("a.b.c.example.org") == "example.org"

    def test_cc_tld(self):
        assert registrable_domain("news.bbc.co.uk") == "bbc.co.uk"

    def test_bare_suffix_returned_unchanged(self):
        assert registrable_domain("co.uk") == "co.uk"
        assert registrable_domain("com") == "com"

    def test_cloudfront_is_one_registrable_domain(self):
        # This is why the paper needed the manual Cloudfront mapping.
        assert (
            registrable_domain("d10lpsik1i8c69.cloudfront.net")
            == "cloudfront.net"
        )

    def test_registrable_of_registrable_is_fixed_point(self):
        domain = registrable_domain("deep.sub.example.com")
        assert registrable_domain(domain) == domain


@given(
    st.from_regex(r"([a-z]{1,8}\.){1,4}(com|org|net|co\.uk|io)", fullmatch=True)
)
def test_registrable_domain_properties(host):
    domain = registrable_domain(host)
    # The registrable domain is a suffix of the host…
    assert host == domain or host.endswith("." + domain)
    # …and idempotent.
    assert registrable_domain(domain) == domain
    # It has exactly one label more than its public suffix.
    suffix = public_suffix(host)
    assert domain == host or domain.count(".") == suffix.count(".") + 1
