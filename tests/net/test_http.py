"""Tests for HTTP message models."""

from repro.net.http import HttpRequest, HttpResponse, ResourceType


def test_request_host_and_query():
    request = HttpRequest(url="https://px.t.com/sync?uid=1&x=2")
    assert request.host == "px.t.com"
    assert request.query == "uid=1&x=2"


def test_request_header_case_insensitive():
    request = HttpRequest(url="https://a.b/", headers={"User-Agent": "UA"})
    assert request.header("user-agent") == "UA"
    assert request.header("missing", "dflt") == "dflt"


def test_response_ok_range():
    assert HttpResponse(url="https://a.b/", status=204).ok
    assert not HttpResponse(url="https://a.b/", status=404).ok
    assert not HttpResponse(url="https://a.b/", status=301).ok


def test_response_header_lookup():
    response = HttpResponse(url="https://a.b/", headers={"Set-Cookie": "x=1"})
    assert response.header("set-cookie") == "x=1"


def test_resource_type_values_match_webrequest_api():
    assert ResourceType.XHR.value == "xmlhttprequest"
    assert ResourceType.MAIN_FRAME.value == "main_frame"
    assert ResourceType.WEBSOCKET.value == "websocket"
