"""Tests for the RFC 6455 frame wire codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.websocket import FrameDirection, OpCode, WebSocketFrame
from repro.net.wire import WireError, decode_frame, decode_stream, encode_frame

MASK = b"\x12\x34\x56\x78"


def _sent(payload, opcode=OpCode.TEXT):
    return WebSocketFrame(FrameDirection.SENT, opcode, payload)


def _received(payload, opcode=OpCode.TEXT):
    return WebSocketFrame(FrameDirection.RECEIVED, opcode, payload)


class TestEncode:
    def test_rfc_example_unmasked_hello(self):
        # RFC 6455 §5.7: single-frame unmasked text "Hello".
        wire = encode_frame(_received("Hello"))
        assert wire == bytes([0x81, 0x05]) + b"Hello"

    def test_rfc_example_masked_hello(self):
        # RFC 6455 §5.7: masked "Hello" with key 0x37fa213d.
        wire = encode_frame(_sent("Hello"), mask_key=b"\x37\xfa\x21\x3d")
        assert wire == bytes([0x81, 0x85, 0x37, 0xfa, 0x21, 0x3d,
                              0x7f, 0x9f, 0x4d, 0x51, 0x58])

    def test_16_bit_length(self):
        wire = encode_frame(_received("a" * 300))
        assert wire[1] == 126
        assert int.from_bytes(wire[2:4], "big") == 300

    def test_64_bit_length(self):
        wire = encode_frame(_received("a" * 70_000))
        assert wire[1] == 127
        assert int.from_bytes(wire[2:10], "big") == 70_000

    def test_client_frame_requires_mask(self):
        with pytest.raises(WireError):
            encode_frame(_sent("x"))
        with pytest.raises(WireError):
            encode_frame(_sent("x"), mask_key=b"\x01\x02")

    def test_server_frame_must_not_mask(self):
        with pytest.raises(WireError):
            encode_frame(_received("x"), mask_key=MASK)

    def test_binary_opcode(self):
        wire = encode_frame(_received("\x00\x01\xff", OpCode.BINARY))
        assert wire[0] & 0x0F == 0x2


class TestDecode:
    def test_round_trip_masked(self):
        frame = _sent('{"event":"subscribe"}')
        decoded = decode_frame(encode_frame(frame, mask_key=MASK))
        assert decoded.frame == frame
        assert decoded.fin

    def test_round_trip_unmasked_binary(self):
        frame = _received("\x00\x80\xff\x10", OpCode.BINARY)
        decoded = decode_frame(encode_frame(frame))
        assert decoded.frame == frame

    def test_direction_inferred_from_mask_bit(self):
        wire = encode_frame(_sent("x"), mask_key=MASK)
        assert decode_frame(wire).frame.direction == FrameDirection.SENT
        wire = encode_frame(_received("x"))
        assert decode_frame(wire).frame.direction == FrameDirection.RECEIVED

    def test_truncated_raises(self):
        wire = encode_frame(_received("Hello"))
        with pytest.raises(WireError):
            decode_frame(wire[:3])
        with pytest.raises(WireError):
            decode_frame(b"\x81")

    def test_unknown_opcode(self):
        with pytest.raises(WireError):
            decode_frame(bytes([0x83, 0x00]))  # reserved opcode 0x3

    def test_stream_of_frames(self):
        frames = [_sent("a"), _received("bb"), _sent("ccc")]
        wire = b"".join(
            encode_frame(f, mask_key=MASK if f.direction == FrameDirection.SENT
                         else None)
            for f in frames
        )
        assert decode_stream(wire) == frames


@given(
    st.text(max_size=400),
    st.sampled_from([FrameDirection.SENT, FrameDirection.RECEIVED]),
    st.binary(min_size=4, max_size=4),
)
@settings(max_examples=200)
def test_codec_round_trip_property(payload, direction, mask):
    frame = WebSocketFrame(direction, OpCode.TEXT, payload)
    key = mask if direction == FrameDirection.SENT else None
    decoded = decode_frame(encode_frame(frame, mask_key=key))
    assert decoded.frame == frame
    assert decoded.consumed > 0
