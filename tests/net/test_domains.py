"""Tests for domain identity helpers."""

from repro.net.domains import (
    display_name,
    is_third_party,
    second_level_domain,
    second_level_of_url,
)


def test_second_level_domain_alias():
    assert second_level_domain("x.doubleclick.net") == "doubleclick.net"


def test_second_level_of_url():
    assert second_level_of_url("wss://widget-mediator.zopim.com/s") == "zopim.com"


def test_third_party_cross_site():
    assert is_third_party(
        "https://cdn.tracker.com/px.gif", "https://news.example.com/"
    )


def test_first_party_subdomain_not_third_party():
    assert not is_third_party(
        "https://static.example.com/app.js", "https://www.example.com/"
    )


def test_third_party_websocket():
    assert is_third_party(
        "wss://rt.33across.com/socket", "https://publisher.com/"
    )


def test_display_name_strips_suffix():
    assert display_name("x.doubleclick.net") == "doubleclick"
    assert display_name("33across.com") == "33across"
    assert display_name("plymouthart.ac.uk") == "plymouthart"
