"""Tests for the cookie jar."""

from repro.net.cookies import CookieJar


def test_set_and_render_header():
    jar = CookieJar("p1")
    jar.set_cookie("x.tracker.com", "uid", "abc", now=10.0)
    assert jar.header_for("y.tracker.com") == "uid=abc"


def test_subdomains_share_parent_cookies():
    jar = CookieJar("p1")
    jar.set_cookie("a.example.com", "sid", "1", now=0.0)
    assert jar.cookies_for("b.example.com")[0].value == "1"
    assert jar.cookies_for("other.com") == []


def test_refresh_keeps_creation_date():
    jar = CookieJar("p1")
    jar.set_cookie("t.com", "uid", "v1", now=100.0)
    cookie = jar.set_cookie("t.com", "uid", "v2", now=200.0)
    assert cookie.value == "v2"
    assert cookie.created_at == 100.0


def test_tracking_id_stable_per_profile_and_domain():
    jar = CookieJar("profileA")
    first = jar.ensure_tracking_id("x.tracker.com", "uid", now=1.0)
    second = jar.ensure_tracking_id("y.tracker.com", "uid", now=2.0)
    assert first.value == second.value  # same registrable domain
    assert first.created_at == 1.0  # creation date preserved


def test_tracking_id_differs_across_profiles():
    a = CookieJar("profileA").ensure_tracking_id("t.com", "uid", 0.0)
    b = CookieJar("profileB").ensure_tracking_id("t.com", "uid", 0.0)
    assert a.value != b.value


def test_tracking_id_deterministic_across_jars():
    a = CookieJar("same").ensure_tracking_id("t.com", "uid", 0.0)
    b = CookieJar("same").ensure_tracking_id("t.com", "uid", 5.0)
    assert a.value == b.value  # the property trackers exploit


def test_first_seen():
    jar = CookieJar("p")
    assert jar.first_seen("t.com", "uid") is None
    jar.ensure_tracking_id("t.com", "uid", 42.0)
    assert jar.first_seen("t.com", "uid") == 42.0


def test_multiple_cookies_joined():
    jar = CookieJar("p")
    jar.set_cookie("t.com", "a", "1", 0.0)
    jar.set_cookie("t.com", "b", "2", 0.0)
    assert jar.header_for("t.com") == "a=1; b=2"


def test_clear_and_len():
    jar = CookieJar("p")
    jar.set_cookie("a.com", "x", "1", 0.0)
    jar.set_cookie("b.com", "y", "2", 0.0)
    assert len(jar) == 2
    jar.clear()
    assert len(jar) == 0
    assert jar.header_for("a.com") == ""
