"""The parallel engine's core contract: ``--workers N`` ≡ ``--workers 1``.

Every artifact a study emits — dataset socket records, run summaries,
the obs trace, the metrics snapshot — must be byte-identical no matter
how many processes executed the shards. These tests run the same tiny
two-crawl study at different worker counts and compare the serialized
bytes of everything.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.crawler.persistence import save_socket_records
from repro.experiments.runner import run_crawls
from repro.obs import Obs, write_metrics, write_trace
from tests.conftest import TINY_STUDY_CONFIG

CONFIG = dataclasses.replace(TINY_STUDY_CONFIG, crawls=(0, 1))


def _artifacts(tiny_web, tmp_path, workers, faults):
    """Run the study and serialize every artifact it produces."""
    config = CONFIG.with_faults(faults)
    obs = Obs()
    dataset, summaries = run_crawls(tiny_web, config, obs=obs,
                                    workers=workers)
    records = tmp_path / f"records-{faults}-{workers}.jsonl"
    trace = tmp_path / f"trace-{faults}-{workers}.jsonl"
    metrics = tmp_path / f"metrics-{faults}-{workers}.json"
    save_socket_records(records, dataset.socket_records)
    summary = obs.summary(preset=config.name, seed=config.seed)
    write_trace(trace, summary)
    write_metrics(metrics, summary)
    return {
        "records": records.read_bytes(),
        "trace": trace.read_bytes(),
        "metrics": metrics.read_bytes(),
        "summaries": [dataclasses.asdict(s) for s in summaries],
        "obs": summary,
    }


@pytest.fixture(scope="module")
def baseline(tiny_web, tmp_path_factory):
    """The sequential reference run (fault-free)."""
    tmp = tmp_path_factory.mktemp("parallel-baseline")
    return _artifacts(tiny_web, tmp, workers=1, faults="none")


def test_two_workers_byte_identical(tiny_web, tmp_path, baseline):
    parallel = _artifacts(tiny_web, tmp_path, workers=2, faults="none")
    assert parallel["summaries"] == baseline["summaries"]
    assert parallel["records"] == baseline["records"]
    assert parallel["trace"] == baseline["trace"]
    assert parallel["metrics"] == baseline["metrics"]


def test_four_workers_byte_identical_under_faults(tiny_web, tmp_path):
    sequential = _artifacts(tiny_web, tmp_path, workers=1, faults="flaky")
    parallel = _artifacts(tiny_web, tmp_path, workers=4, faults="flaky")
    assert parallel["summaries"] == sequential["summaries"]
    assert parallel["records"] == sequential["records"]
    assert parallel["trace"] == sequential["trace"]
    assert parallel["metrics"] == sequential["metrics"]
    # Faults actually fired — the comparison was not vacuous.
    assert any(s["page_retries"] or s["errors"]
               for s in sequential["summaries"])


def test_filters_attributed_per_crawl(baseline):
    """Satellite: per-crawl ``filters.by_crawl.N.*`` counters sum to the
    additive ``filters.*`` totals."""
    obs = baseline["obs"]
    totals = {
        name: value
        for name, value in obs.counters_with_prefix("filters").items()
        if not name.startswith("by_crawl.")
    }
    assert totals  # the engine matched something
    per_crawl = [
        obs.counters_with_prefix(f"filters.by_crawl.{index}")
        for index in CONFIG.crawls
    ]
    assert all(per_crawl)  # every crawl got its own attribution
    for name, value in totals.items():
        assert sum(c.get(name, 0) for c in per_crawl) == value
