"""Checkpoint resume at the study level: kill mid-crawl, resume, compare.

The resume bug this pins: restored sites must replay their journaled
observations into the dataset observers, or a resumed study silently
loses every socket the pre-kill crawl observed and each derived table
under-counts. The tests kill a run partway through (after at least one
full shard so restoration actually happens), resume it, and compare
the resumed artifacts byte-for-byte against an uninterrupted run.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.classify import classify_sockets
from repro.analysis.report import render_table1
from repro.analysis.table1 import compute_table1
from repro.crawler.crawler import CrawlAccountant
from repro.crawler.persistence import CrawlCheckpoint, save_socket_records
from repro.experiments.runner import run_crawls
from repro.obs import Obs
from tests.conftest import TINY_STUDY_CONFIG

CONFIG = dataclasses.replace(TINY_STUDY_CONFIG, crawls=(0,),
                             faults="flaky")
KILL_AFTER = 100  # > one full shard, < the seed list


def _record_bytes(tmp_path, name, dataset):
    path = tmp_path / f"{name}.jsonl"
    save_socket_records(path, dataset.socket_records)
    return path.read_bytes()


def _table1_text(dataset) -> str:
    labeler = dataset.derive_labeler()
    resolver = dataset.derive_resolver(labeler)
    views = classify_sockets(dataset, labeler, resolver)
    return render_table1(compute_table1(views, dataset.meta))


class _Killed(RuntimeError):
    pass


@pytest.fixture(scope="module")
def resumed(tiny_web, tmp_path_factory):
    """Kill a checkpointed run mid-crawl, then resume it."""
    tmp = tmp_path_factory.mktemp("resume")
    journal = tmp / "ckpt.jsonl"
    real = CrawlAccountant.record_site
    done = 0

    def dying(self, outcome):
        nonlocal done
        if done >= KILL_AFTER:
            raise _Killed(outcome.domain)
        done += 1
        real(self, outcome)

    CrawlAccountant.record_site = dying
    try:
        with pytest.raises(_Killed):
            run_crawls(tiny_web, CONFIG,
                       checkpoint=CrawlCheckpoint(journal))
    finally:
        CrawlAccountant.record_site = real
    assert KILL_AFTER <= len(CrawlCheckpoint(journal)) < len(
        tiny_web.seed_list.sites
    )
    dataset, summaries = run_crawls(tiny_web, CONFIG,
                                    checkpoint=CrawlCheckpoint(journal))
    return {"journal": journal, "dataset": dataset,
            "summaries": summaries, "tmp": tmp}


def test_resumed_run_matches_uninterrupted(tiny_web, resumed):
    dataset, summaries = run_crawls(tiny_web, CONFIG)
    assert ([dataclasses.asdict(s) for s in resumed["summaries"]]
            == [dataclasses.asdict(s) for s in summaries])
    assert (_record_bytes(resumed["tmp"], "resumed", resumed["dataset"])
            == _record_bytes(resumed["tmp"], "reference", dataset))
    assert _table1_text(dataset) == _table1_text(resumed["dataset"])


def test_fully_restored_run_emits_final_progress(tiny_web, resumed):
    """Satellite: the end-of-crawl ``crawl.progress`` event fires even
    when every site came from the journal and the in-loop modulo never
    ran."""
    obs = Obs()
    dataset, summaries = run_crawls(
        tiny_web, CONFIG, obs=obs,
        checkpoint=CrawlCheckpoint(resumed["journal"]),
    )
    assert summaries[0].sites_visited == len(tiny_web.seed_list.sites)
    progress = [e for e in obs.summary().events
                if e.name == "crawl.progress"]
    # Restoration opens no site spans and emits no in-loop progress;
    # the unconditional final event is the only one — and it reports
    # the complete crawl.
    assert len(progress) == 1
    assert progress[0].attrs["sites_done"] == len(tiny_web.seed_list.sites)
    assert progress[0].attrs["sites_total"] == len(tiny_web.seed_list.sites)
    assert (_record_bytes(resumed["tmp"], "restored", dataset)
            == _record_bytes(resumed["tmp"], "resumed2", resumed["dataset"]))
