"""Shard-partitioning invariants (DESIGN §10), as Hypothesis properties.

The byte-identity contract rests on the shard plan being a pure
function of the seed list: every site in exactly one shard, shard
order rank-stable, and — crucially — the same plan no matter how many
workers will execute it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import DEFAULT_SHARD_SIZE, plan_shards
from repro.web.alexa import Site


def _site_list(n: int) -> list[Site]:
    return [
        Site(domain=f"site-{rank}.example", rank=rank, category="News")
        for rank in range(1, n + 1)
    ]


sizes = st.integers(min_value=0, max_value=500)
shard_sizes = st.integers(min_value=1, max_value=97)


@given(n=sizes, shard_size=shard_sizes)
@settings(max_examples=200, deadline=None)
def test_every_site_in_exactly_one_shard(n, shard_size):
    sites = _site_list(n)
    shards = plan_shards(sites, shard_size)
    flattened = [site for shard in shards for site in shard.sites]
    assert flattened == sites  # coverage, uniqueness, and rank order
    assert [shard.index for shard in shards] == list(range(len(shards)))


@given(n=sizes, shard_size=shard_sizes)
@settings(max_examples=200, deadline=None)
def test_shard_sizes_are_contiguous_chunks(n, shard_size):
    shards = plan_shards(_site_list(n), shard_size)
    assert all(len(s.sites) == shard_size for s in shards[:-1])
    if n:
        assert 1 <= len(shards[-1].sites) <= shard_size
    else:
        assert shards == []


@given(n=sizes, shard_size=shard_sizes,
       workers=st.sampled_from([1, 2, 4]))
@settings(max_examples=100, deadline=None)
def test_assignment_is_worker_count_independent(n, shard_size, workers):
    """The plan never consults the worker count: same seed list, same
    shard → site assignment for workers=1/2/4 (it is the same call)."""
    sites = _site_list(n)
    reference = plan_shards(sites, shard_size)
    del workers  # the API has no worker parameter — by design
    assert plan_shards(sites, shard_size) == reference


def test_default_shard_size_plans_real_seed_list(tiny_web):
    sites = tiny_web.seed_list.sites
    shards = plan_shards(sites)
    assert len(shards) == -(-len(sites) // DEFAULT_SHARD_SIZE)
    assert [s for shard in shards for s in shard.sites] == list(sites)


def test_invalid_shard_size_rejected():
    with pytest.raises(ValueError):
        plan_shards(_site_list(3), 0)
