"""Ranged reads, torn-tail handling, and content addressing on the
saved dataset file — the reader-side half of the spool's incremental
analysis contract."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.crawler.persistence import (
    DatasetError,
    DatasetReader,
    save_dataset,
    socket_record_to_json,
)
from repro.util.serialization import dumps


@pytest.fixture(scope="module")
def dataset_file(tiny_study, tmp_path_factory):
    path = tmp_path_factory.mktemp("ranges") / "dataset.jsonl"
    save_dataset(path, tiny_study.dataset)
    return path


@pytest.fixture()
def mutable_copy(dataset_file, tmp_path):
    copy = tmp_path / "dataset.jsonl"
    copy.write_bytes(dataset_file.read_bytes())
    return copy


def manual_sha(records) -> str:
    hasher = hashlib.sha256()
    for record in records:
        line = dumps(socket_record_to_json(record)) + "\n"
        hasher.update(line.encode("utf-8"))
    return hasher.hexdigest()


class TestRangedReads:
    def test_range_equals_full_slice(self, tiny_study, dataset_file):
        reader = DatasetReader(dataset_file)
        expected = tiny_study.dataset.socket_records
        total = len(expected)
        for start, stop in [(0, None), (0, 5), (7, 31), (total - 3, None),
                            (total, None), (5, 5)]:
            got = list(reader.iter_records(start, stop))
            assert dumps([socket_record_to_json(r) for r in got]) == dumps(
                [socket_record_to_json(r)
                 for r in expected[start:stop]]
            ), (start, stop)

    def test_record_range_sha_matches_manual_hash(
        self, tiny_study, dataset_file
    ):
        reader = DatasetReader(dataset_file)
        records = tiny_study.dataset.socket_records
        for start, stop in [(0, None), (0, 9), (13, 40)]:
            count, sha = reader.record_range_sha(start, stop)
            expected = records[start:stop]
            assert count == len(expected)
            assert sha == manual_sha(expected)

    def test_record_range_sha_empty_range(self, dataset_file):
        reader = DatasetReader(dataset_file)
        count, sha = reader.record_range_sha(3, 3)
        assert count == 0
        assert sha == hashlib.sha256().hexdigest()

    def test_record_range_sha_clamps_past_eof(self, tiny_study,
                                              dataset_file):
        reader = DatasetReader(dataset_file)
        total = len(tiny_study.dataset.socket_records)
        count, _sha = reader.record_range_sha(total - 2, total + 50)
        assert count == 2


class TestTornTail:
    def test_torn_final_line_is_skipped_and_counted(
        self, tiny_study, mutable_copy
    ):
        with open(mutable_copy, "a", encoding="utf-8") as handle:
            handle.write('{"url": "ws://torn.example", "ho')  # no newline
        reader = DatasetReader(mutable_copy)
        records = list(reader.iter_records())
        assert reader.torn_tail_skipped == 1
        assert len(records) == len(tiny_study.dataset.socket_records)

    def test_torn_final_line_excluded_from_range_sha(
        self, dataset_file, mutable_copy
    ):
        clean_count, clean_sha = DatasetReader(
            dataset_file
        ).record_range_sha()
        with open(mutable_copy, "a", encoding="utf-8") as handle:
            handle.write('{"url": "ws://torn.example"')
        count, sha = DatasetReader(mutable_copy).record_range_sha()
        assert (count, sha) == (clean_count, clean_sha)


class TestInteriorCorruption:
    def corrupt_interior_record(self, path, offset_from_end=3):
        lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
        index = len(lines) - offset_from_end
        lines[index] = lines[index][:20] + "garbage}{\n"
        path.write_text("".join(lines), encoding="utf-8")
        return index + 1  # 1-based line number

    def test_interior_corruption_names_the_line(self, mutable_copy):
        number = self.corrupt_interior_record(mutable_copy)
        reader = DatasetReader(mutable_copy)
        with pytest.raises(DatasetError) as excinfo:
            list(reader.iter_records())
        assert f"{mutable_copy}:{number}:" in str(excinfo.value)
        assert reader.torn_tail_skipped == 0

    def test_corruption_before_range_is_not_validated(
        self, tiny_study, mutable_copy
    ):
        # Ranged reads skip the prefix undecoded by design; corruption
        # there surfaces on full sweeps, not tail folds.
        self.corrupt_interior_record(mutable_copy, 10)
        total = len(tiny_study.dataset.socket_records)
        reader = DatasetReader(mutable_copy)
        # The bad record sits at index total-10; start past it.
        tail = list(reader.iter_records(total - 9))
        assert len(tail) == 9  # decodes cleanly past the corruption
        with pytest.raises(DatasetError):
            list(reader.iter_records())  # ...but full sweeps still stop
