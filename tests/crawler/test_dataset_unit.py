"""Unit tests for dataset internals (chain signatures, tagging)."""

from repro.crawler.dataset import ChainSignature, StudyDataset
from repro.crawler.observation import PageObservation, ResourceObservation
from repro.filters import FilterEngine, parse_filter_list
from repro.net.http import ResourceType


def _dataset():
    engine = FilterEngine([parse_filter_list("t", "||ads.example^")])
    return StudyDataset(engine=engine)


def _resource(url, host, chain_hosts, rtype=ResourceType.SCRIPT,
              mime="application/javascript"):
    return ResourceObservation(
        url=url, host=host, resource_type=rtype, mime_type=mime,
        has_cookie=False, sent_items=frozenset(),
        chain_hosts=chain_hosts, chain_script_urls=(url,),
    )


def _page(resources):
    return PageObservation(
        site_domain="pub.example", rank=1, category="News", crawl=0,
        page_url="https://www.pub.example/", resources=resources,
    )


def test_first_party_chains_skipped_in_signatures():
    dataset = _dataset()
    dataset.observe(_page([
        _resource("https://www.pub.example/app.js", "www.pub.example",
                  ("www.pub.example", "www.pub.example")),
    ]))
    assert not dataset.chain_signatures


def test_third_party_chains_counted():
    dataset = _dataset()
    resource = _resource(
        "https://cdn.ads.example/tag.js", "cdn.ads.example",
        ("www.pub.example", "cdn.ads.example"),
    )
    dataset.observe(_page([resource]))
    dataset.observe(_page([resource]))
    assert sum(dataset.chain_signatures.values()) == 2
    assert len(dataset.chain_signatures) == 1
    signature = next(iter(dataset.chain_signatures))
    assert isinstance(signature, ChainSignature)
    assert signature.leaf_host == "cdn.ads.example"
    assert signature.leaf_is_script


def test_tagging_counts_match_engine():
    dataset = _dataset()
    dataset.observe(_page([
        _resource("https://cdn.ads.example/tag.js", "cdn.ads.example",
                  ("www.pub.example", "cdn.ads.example")),
        _resource("https://cdn.benign.example/lib.js", "cdn.benign.example",
                  ("www.pub.example", "cdn.benign.example")),
    ]))
    assert dataset.tag_counter.counts("ads.example") == (1, 0)
    assert dataset.tag_counter.counts("benign.example") == (0, 1)


def test_http_counters_exclude_first_party():
    dataset = _dataset()
    dataset.observe(_page([
        _resource("https://www.pub.example/app.js", "www.pub.example",
                  ("www.pub.example",)),
        _resource("https://cdn.ads.example/tag.js", "cdn.ads.example",
                  ("www.pub.example", "cdn.ads.example")),
    ]))
    assert "www.pub.example" not in dataset.http_requests_by_host
    assert dataset.http_requests_by_host["cdn.ads.example"] == 1


def test_crawl_page_counter():
    dataset = _dataset()
    for _ in range(3):
        dataset.observe(_page([]))
    assert dataset.crawl_pages[0] == 3
    assert dataset.crawl_indices == [0]
