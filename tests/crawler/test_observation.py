"""Tests for page observation extraction."""

from repro.cdp.events import (
    FrameNavigated,
    Initiator,
    RequestWillBeSent,
    ResponseReceived,
    ScriptParsed,
    WebSocketCreated,
    WebSocketFrameReceived,
    WebSocketFrameSent,
    WebSocketWillSendHandshakeRequest,
)
from repro.content.items import ReceivedClass, SentItem
from repro.inclusion.builder import InclusionTreeBuilder
from repro.crawler.observation import observe_page

PAGE = "https://pub.example.com/"
SCRIPT = "https://cdn.fptracker.net/fp.js"
WS = "wss://rt.fptracker.net/collect"


def _build_tree():
    builder = InclusionTreeBuilder()
    builder.handle(RequestWillBeSent(
        timestamp=0.0, request_id="r0", document_url=PAGE, url=PAGE,
        resource_type="Document", frame_id="F1",
        initiator=Initiator(type="other"),
        headers={"User-Agent": "UA"},
    ))
    builder.handle(FrameNavigated(timestamp=0.1, frame_id="F1", url=PAGE))
    builder.handle(RequestWillBeSent(
        timestamp=1.0, request_id="r1", document_url=PAGE, url=SCRIPT,
        resource_type="Script", frame_id="F1",
        initiator=Initiator(type="parser", url=PAGE),
        headers={"User-Agent": "UA", "Cookie": "uid=deadbeef012345"},
    ))
    builder.handle(ResponseReceived(
        timestamp=1.1, request_id="r1", url=SCRIPT, status=200,
        mime_type="application/javascript", resource_type="Script",
        frame_id="F1",
    ))
    builder.handle(ScriptParsed(timestamp=1.2, script_id="1", url=SCRIPT,
                                frame_id="F1"))
    builder.handle(WebSocketCreated(
        timestamp=2.0, request_id="ws1", url=WS,
        initiator=Initiator(type="script", url=SCRIPT, script_id="1",
                            stack_urls=(SCRIPT,)),
        frame_id="F1",
    ))
    builder.handle(WebSocketWillSendHandshakeRequest(
        timestamp=2.1, request_id="ws1",
        headers={"User-Agent": "UA", "Cookie": "uid=deadbeef012345"},
    ))
    builder.handle(WebSocketFrameSent(
        timestamp=2.2, request_id="ws1", opcode=1,
        payload_data='{"screen":"1920x1080","viewport":"1280x720",'
                     '"orientation":"landscape-primary"}',
    ))
    builder.handle(WebSocketFrameReceived(
        timestamp=2.3, request_id="ws1", opcode=1,
        payload_data='{"type":"ack"}',
    ))
    return builder.result()


def test_socket_observation_fields():
    obs = observe_page(_build_tree(), "pub.example.com", 123, "News", 2)
    assert len(obs.sockets) == 1
    socket = obs.sockets[0]
    assert socket.host == "rt.fptracker.net"
    assert socket.initiator_host == "cdn.fptracker.net"
    assert socket.chain_hosts == (
        "pub.example.com", "cdn.fptracker.net", "rt.fptracker.net"
    )
    assert socket.chain_script_urls == (SCRIPT,)
    assert socket.cross_origin
    assert socket.handshake_cookie


def test_socket_content_analysis():
    obs = observe_page(_build_tree(), "pub.example.com", 123, "News", 2)
    socket = obs.sockets[0]
    assert {SentItem.SCREEN, SentItem.VIEWPORT, SentItem.ORIENTATION,
            SentItem.USER_AGENT, SentItem.COOKIE} <= socket.sent_items
    assert socket.received_classes == {ReceivedClass.JSON}
    assert not socket.sent_nothing
    assert not socket.received_nothing


def test_resources_observed():
    obs = observe_page(_build_tree(), "pub.example.com", 123, "News", 2)
    # The root document is excluded; the script is a resource.
    assert len(obs.resources) == 1
    resource = obs.resources[0]
    assert resource.host == "cdn.fptracker.net"
    assert resource.mime_type == "application/javascript"
    assert resource.has_cookie
    assert SentItem.COOKIE in resource.sent_items


def test_metadata_flows_through():
    obs = observe_page(_build_tree(), "pub.example.com", 123, "News", 2)
    assert (obs.site_domain, obs.rank, obs.category, obs.crawl) == (
        "pub.example.com", 123, "News", 2
    )
    assert obs.page_url == PAGE
