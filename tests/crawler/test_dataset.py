"""Tests for the streaming study dataset."""

import pytest

from repro.crawler.crawler import CrawlConfig, Crawler
from repro.crawler.dataset import StudyDataset
from repro.web.filterlists import build_filter_engine


@pytest.fixture(scope="module")
def dataset(tiny_web):
    engine = build_filter_engine(tiny_web.registry)
    ds = StudyDataset(engine=engine)
    config = CrawlConfig(index=0, label="Apr 02-05, 2017", chrome_major=57,
                         start_date="2017-04-02", pages_per_site=5)
    crawler = Crawler(tiny_web, config, observers=[ds.observe])
    # Crawl socket-hosting sites plus some plain ones.
    sites = list(tiny_web.plan.placed_sites[:60]) + list(
        tiny_web.seed_list.sites[:30]
    )
    summary = crawler.run(list({s.domain: s for s in sites}.values()))
    ds.record_crawl(summary)
    return ds


def test_socket_records_accumulated(dataset):
    assert dataset.socket_records
    record = dataset.socket_records[0]
    assert record.chain_hosts[-1] == record.socket_host
    assert record.crawl == 0


def test_tag_counter_covers_aa_and_benign(dataset):
    domains = dataset.tag_counter.domains()
    assert "doubleclick.net" in domains or "criteo.com" in domains
    aa, non = dataset.tag_counter.counts("doubleclick.net")
    assert aa > 0  # every doubleclick resource matches EasyList


def test_http_counters_keyed_by_host(dataset):
    assert dataset.http_requests_by_host
    for host in list(dataset.http_requests_by_host)[:20]:
        assert "/" not in host


def test_first_party_requests_excluded_from_http_counters(dataset):
    crawled = {domain for domain, _ in dataset.crawl_sites[0]}
    for host in dataset.http_requests_by_host:
        from repro.net.domains import registrable_domain

        assert registrable_domain(host) not in crawled


def test_chain_signatures_deduplicate(dataset):
    total_weight = sum(dataset.chain_signatures.values())
    assert total_weight > len(dataset.chain_signatures)


def test_labeler_finds_aa_domains(dataset):
    labeler = dataset.derive_labeler()
    assert labeler.is_aa("doubleclick.net")
    assert labeler.is_aa("intercom.io")
    assert not labeler.is_aa("gstatic.com")


def test_crawl_bookkeeping(dataset):
    assert dataset.crawl_indices == [0]
    assert dataset.crawl_labels[0] == "Apr 02-05, 2017"
    assert dataset.crawl_pages[0] > 0
    assert dataset.crawl_sites[0]
