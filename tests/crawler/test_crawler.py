"""Tests for the crawl driver."""

import pytest

from repro.crawler.crawler import CrawlConfig, Crawler
from repro.crawler.observation import PageObservation


@pytest.fixture(scope="module")
def crawl_output(tiny_web):
    config = CrawlConfig(index=0, label="Apr 02-05, 2017", chrome_major=57,
                         start_date="2017-04-02", pages_per_site=4)
    observations = []
    crawler = Crawler(tiny_web, config, observers=[observations.append])
    summary = crawler.run(tiny_web.seed_list.sites[:40])
    return summary, observations


def test_summary_counts(crawl_output):
    summary, observations = crawl_output
    assert summary.sites_visited == 40
    assert summary.pages_visited == 40 * 4
    assert len(observations) == summary.pages_visited
    assert summary.events_published > summary.pages_visited * 5


def test_observations_are_page_observations(crawl_output):
    _, observations = crawl_output
    assert all(isinstance(o, PageObservation) for o in observations)
    assert all(o.crawl == 0 for o in observations)


def test_homepage_visited_first_per_site(crawl_output):
    _, observations = crawl_output
    by_site = {}
    for obs in observations:
        by_site.setdefault(obs.site_domain, []).append(obs.page_url)
    for domain, urls in by_site.items():
        assert urls[0].rstrip("/").endswith(domain)


def test_sites_recorded_with_ranks(crawl_output, tiny_web):
    summary, _ = crawl_output
    assert len(summary.sites) == 40
    for domain, rank in summary.sites:
        assert tiny_web.site(domain).rank == rank


def test_socket_counts_match(crawl_output):
    summary, observations = crawl_output
    assert summary.sockets_observed == sum(
        len(o.sockets) for o in observations
    )


def test_crawl_is_deterministic(tiny_web):
    def run_once():
        config = CrawlConfig(index=1, label="x", chrome_major=57,
                             start_date="2017-04-11", pages_per_site=3)
        observations = []
        Crawler(tiny_web, config, observers=[observations.append]).run(
            tiny_web.seed_list.sites[:10]
        )
        return [
            (o.page_url, len(o.resources), len(o.sockets))
            for o in observations
        ]

    assert run_once() == run_once()
