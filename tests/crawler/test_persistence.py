"""Tests for socket-record archiving and the checkpoint journal."""

from repro.content.items import ReceivedClass, SentItem
from repro.crawler.crawler import CrawlConfig, CrawlRunSummary
from repro.crawler.dataset import SocketRecord
from repro.crawler.persistence import (
    CrawlCheckpoint,
    SiteCheckpoint,
    load_socket_records,
    save_socket_records,
    socket_record_from_json,
    socket_record_to_json,
)


def _record(crawl=0, partial=False):
    return SocketRecord(
        crawl=crawl, site_domain="pub.com", rank=42,
        page_url="https://www.pub.com/",
        socket_host="rt.33across.com",
        initiator_host="cdn.helper.net",
        initiator_url="https://cdn.helper.net/x.js",
        chain_hosts=("www.pub.com", "cdn.helper.net", "rt.33across.com"),
        chain_script_urls=("https://cdn.helper.net/x.js",),
        first_party_host="www.pub.com", cross_origin=True,
        handshake_cookie=True,
        sent_items=frozenset({SentItem.USER_AGENT, SentItem.SCREEN}),
        received_classes=frozenset({ReceivedClass.JSON}),
        sent_nothing=False, received_nothing=False,
        partial=partial,
    )


def test_json_round_trip():
    record = _record()
    assert socket_record_from_json(socket_record_to_json(record)) == record


def test_partial_flag_round_trips():
    record = _record(partial=True)
    payload = socket_record_to_json(record)
    assert payload["partial"] is True
    assert socket_record_from_json(payload) == record
    assert socket_record_from_json(payload).partial is True


def test_partial_defaults_false_for_legacy_payloads():
    payload = socket_record_to_json(_record())
    del payload["partial"]  # records written before the flag existed
    assert socket_record_from_json(payload).partial is False


def test_partial_file_round_trip(tmp_path):
    records = [_record(c, partial=bool(c % 2)) for c in range(4)]
    path = tmp_path / "partial.jsonl"
    assert save_socket_records(path, records) == 4
    loaded = load_socket_records(path)
    assert loaded == records
    assert [r.partial for r in loaded] == [False, True, False, True]


def test_file_round_trip(tmp_path):
    records = [_record(c) for c in range(4)]
    path = tmp_path / "sockets.jsonl"
    assert save_socket_records(path, records) == 4
    assert load_socket_records(path) == records


def test_gzip_round_trip(tmp_path):
    path = tmp_path / "sockets.jsonl.gz"
    save_socket_records(path, [_record()])
    assert load_socket_records(path) == [_record()]


def test_real_dataset_round_trips(tiny_study, tmp_path):
    path = tmp_path / "study.jsonl.gz"
    records = tiny_study.dataset.socket_records[:200]
    save_socket_records(path, records)
    assert load_socket_records(path) == records


# -- checkpoint journal ---------------------------------------------------


def test_checkpoint_journal_round_trips(tmp_path):
    path = tmp_path / "ckpt.jsonl"
    journal = CrawlCheckpoint(path)
    assert len(journal) == 0
    entry = SiteCheckpoint(crawl=1, domain="pub.com", rank=42,
                           status="ok", pages=15, sockets=3)
    journal.record(entry)
    reopened = CrawlCheckpoint(path)
    assert len(reopened) == 1
    assert reopened.get(1, "pub.com") == entry
    assert reopened.get(0, "pub.com") is None


def test_checkpoint_appends_across_opens(tmp_path):
    path = tmp_path / "ckpt.jsonl"
    first = CrawlCheckpoint(path)
    first.record(SiteCheckpoint(crawl=0, domain="a.com", rank=1,
                                status="ok", pages=2, sockets=0))
    second = CrawlCheckpoint(path)
    second.record(SiteCheckpoint(crawl=0, domain="b.com", rank=2,
                                 status="quarantined", pages=1, sockets=0))
    third = CrawlCheckpoint(path)
    assert len(third) == 2
    assert third.get(0, "b.com").status == "quarantined"


def test_checkpoint_restore_folds_into_summary(tmp_path):
    summary = CrawlRunSummary(config=CrawlConfig(
        index=0, label="x", chrome_major=57, start_date="2017-04-02"
    ))
    SiteCheckpoint(crawl=0, domain="a.com", rank=1, status="ok",
                   pages=15, sockets=4).restore_into(summary)
    SiteCheckpoint(crawl=0, domain="b.com", rank=2, status="quarantined",
                   pages=3, sockets=0).restore_into(summary)
    assert summary.sites_visited == 2
    assert summary.pages_visited == 18
    assert summary.sockets_observed == 4
    assert summary.sites_quarantined == 1
    assert summary.sites == [("a.com", 1), ("b.com", 2)]
