"""Tests for socket-record archiving."""

from repro.content.items import ReceivedClass, SentItem
from repro.crawler.dataset import SocketRecord
from repro.crawler.persistence import (
    load_socket_records,
    save_socket_records,
    socket_record_from_json,
    socket_record_to_json,
)


def _record(crawl=0):
    return SocketRecord(
        crawl=crawl, site_domain="pub.com", rank=42,
        page_url="https://www.pub.com/",
        socket_host="rt.33across.com",
        initiator_host="cdn.helper.net",
        initiator_url="https://cdn.helper.net/x.js",
        chain_hosts=("www.pub.com", "cdn.helper.net", "rt.33across.com"),
        chain_script_urls=("https://cdn.helper.net/x.js",),
        first_party_host="www.pub.com", cross_origin=True,
        handshake_cookie=True,
        sent_items=frozenset({SentItem.USER_AGENT, SentItem.SCREEN}),
        received_classes=frozenset({ReceivedClass.JSON}),
        sent_nothing=False, received_nothing=False,
    )


def test_json_round_trip():
    record = _record()
    assert socket_record_from_json(socket_record_to_json(record)) == record


def test_file_round_trip(tmp_path):
    records = [_record(c) for c in range(4)]
    path = tmp_path / "sockets.jsonl"
    assert save_socket_records(path, records) == 4
    assert load_socket_records(path) == records


def test_gzip_round_trip(tmp_path):
    path = tmp_path / "sockets.jsonl.gz"
    save_socket_records(path, [_record()])
    assert load_socket_records(path) == [_record()]


def test_real_dataset_round_trips(tiny_study, tmp_path):
    path = tmp_path / "study.jsonl.gz"
    records = tiny_study.dataset.socket_records[:200]
    save_socket_records(path, records)
    assert load_socket_records(path) == records
