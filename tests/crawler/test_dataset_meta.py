"""Tests for the typed ``DatasetMeta`` and its mapping constructors."""

import pytest

from repro.analysis.figure3 import compute_figure3
from repro.analysis.table1 import compute_table1
from repro.crawler.dataset import CrawlMeta, DatasetMeta
from repro.util.serialization import dumps

SITES = {0: [("a.example", 1), ("b.example", 2)], 1: [("a.example", 1)]}
LABELS = {0: "first", 1: "second"}


class TestDatasetMeta:
    def test_from_mappings_round_trips(self):
        meta = DatasetMeta.from_mappings(SITES, LABELS)
        assert meta.crawl_sites == {
            0: [("a.example", 1), ("b.example", 2)],
            1: [("a.example", 1)],
        }
        assert meta.crawl_labels == LABELS
        assert meta.crawl_indices == (0, 1)

    def test_labels_default_to_crawl_index(self):
        meta = DatasetMeta.from_mappings(SITES)
        assert meta.crawl_labels == {0: "crawl 0", 1: "crawl 1"}

    def test_is_frozen_and_hashable(self):
        meta = DatasetMeta.from_mappings(SITES, LABELS)
        with pytest.raises(AttributeError):
            meta.crawls = ()
        assert hash(meta) == hash(DatasetMeta.from_mappings(SITES, LABELS))

    def test_crawls_carry_pages(self):
        meta = DatasetMeta(crawls=(
            CrawlMeta(index=0, label="x", sites=(("a.example", 1),),
                      pages=12),
        ))
        assert meta.crawls[0].pages == 12

    def test_live_dataset_meta_property(self, tiny_study):
        meta = tiny_study.dataset.meta
        assert meta.crawl_indices == (0, 1, 2, 3)
        assert meta.crawl_sites == tiny_study.dataset.crawl_sites
        assert meta.crawl_labels == tiny_study.dataset.crawl_labels


class TestFromMappingsEquivalence:
    """``DatasetMeta.from_mappings`` is the one sanctioned bridge from
    raw mapping data (the deprecated positional-mapping arguments to
    ``compute_table1``/``compute_figure3`` were removed in PR 10)."""

    def test_table1_from_mappings_agrees_with_live_meta(self, tiny_study):
        meta = tiny_study.dataset.meta
        views = tiny_study.views
        modern = compute_table1(views, meta)
        bridged = compute_table1(views, DatasetMeta.from_mappings(
            meta.crawl_sites, meta.crawl_labels
        ))
        assert dumps(bridged) == dumps(modern)

    def test_figure3_from_mappings_agrees_with_live_meta(self, tiny_study):
        meta = tiny_study.dataset.meta
        views = tiny_study.views
        modern = compute_figure3(views, meta)
        bridged = compute_figure3(
            views, DatasetMeta.from_mappings(meta.crawl_sites)
        )
        assert dumps(bridged) == dumps(modern)

    def test_mapping_positional_args_are_rejected(self, tiny_study):
        with pytest.raises(AttributeError):
            compute_table1(
                tiny_study.views, tiny_study.dataset.meta.crawl_sites
            )
