"""Tests for the visit policy."""

from repro.crawler.policy import VisitPolicy, page_index_for_link
from repro.util.rng import RngStream

HOME = "https://www.pub.example.com/"


def test_selects_up_to_budget():
    policy = VisitPolicy(pages_per_site=15)
    links = [f"{HOME}article/{i}" for i in range(1, 30)]
    chosen = policy.select_links(HOME, links, RngStream(1, "p"))
    assert len(chosen) == 14  # homepage takes one slot


def test_fewer_links_than_budget():
    policy = VisitPolicy(pages_per_site=15)
    links = [f"{HOME}article/{i}" for i in range(1, 5)]
    chosen = policy.select_links(HOME, links, RngStream(1, "p"))
    assert len(chosen) == 4


def test_cross_site_links_excluded():
    policy = VisitPolicy(pages_per_site=15)
    links = [f"{HOME}article/1", "https://other.example/x", "garbage"]
    chosen = policy.select_links(HOME, links, RngStream(1, "p"))
    assert chosen == [f"{HOME}article/1"]


def test_selection_deterministic():
    policy = VisitPolicy(pages_per_site=10)
    links = [f"{HOME}article/{i}" for i in range(1, 25)]
    a = policy.select_links(HOME, links, RngStream(5, "x"))
    b = policy.select_links(HOME, links, RngStream(5, "x"))
    assert a == b


def test_page_index_for_link():
    assert page_index_for_link(f"{HOME}article/7") == 7
    assert page_index_for_link(f"{HOME}article/7/") == 7
    assert page_index_for_link(f"{HOME}about") == 1
